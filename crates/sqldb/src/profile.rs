//! Engine profiles emulating the three RDBMSs of the paper's evaluation.
//!
//! The profiles differ *architecturally*, the way PostgreSQL 9.6, MySQL 5.7
//! and MariaDB 10.2 actually did:
//!
//! * join algorithms ([`JoinStrategy`]): PostgreSQL builds hash joins;
//!   MySQL 5.7 only had (index) nested-loop joins with a block join buffer;
//!   MariaDB 10.2 had a larger block-nested-loop buffer and batched key
//!   access, landing between the two.
//! * SQL dialect ([`EngineProfile::dialect`]): identifier quoting, the
//!   join-update syntax, `||` vs `CONCAT`, `Infinity` literals, and
//!   recursive-CTE support differ per engine. The SQLoop translation module
//!   rewrites statements so the same user query runs everywhere; the engine
//!   *validates* incoming statements against its profile, so forgetting to
//!   translate fails loudly (as it would against the real engine).

use std::fmt;

/// Which real-world engine this database emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineProfile {
    /// PostgreSQL 9.6-era behaviour (hash joins, `UPDATE … FROM`).
    #[default]
    Postgres,
    /// Oracle MySQL 5.7-era behaviour (nested-loop joins only, no recursive
    /// CTEs, `UPDATE … JOIN`).
    MySql,
    /// MariaDB 10.2-era behaviour (nested-loop with large join buffer).
    MariaDb,
}

impl EngineProfile {
    /// All profiles, in the order the paper's figures present them.
    pub const ALL: [EngineProfile; 3] = [
        EngineProfile::Postgres,
        EngineProfile::MySql,
        EngineProfile::MariaDb,
    ];

    /// Human-readable engine name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            EngineProfile::Postgres => "PostgreSQL",
            EngineProfile::MySql => "MySQL",
            EngineProfile::MariaDb => "MariaDB",
        }
    }

    /// Parses a profile name (case-insensitive, several aliases).
    pub fn parse(s: &str) -> Option<EngineProfile> {
        match s.to_ascii_lowercase().as_str() {
            "postgres" | "postgresql" | "pg" => Some(EngineProfile::Postgres),
            "mysql" => Some(EngineProfile::MySql),
            "mariadb" | "maria" => Some(EngineProfile::MariaDb),
            _ => None,
        }
    }

    /// The dialect rules for this engine.
    pub fn dialect(&self) -> Dialect {
        match self {
            EngineProfile::Postgres => Dialect {
                profile: *self,
                ident_quote: '"',
                supports_update_from: true,
                supports_update_join: false,
                supports_concat_operator: true,
                supports_infinity_literal: true,
                supports_recursive_cte: true,
                supports_unlogged: true,
                float_type_name: "DOUBLE PRECISION",
            },
            EngineProfile::MySql => Dialect {
                profile: *self,
                ident_quote: '`',
                supports_update_from: false,
                supports_update_join: true,
                supports_concat_operator: false,
                supports_infinity_literal: false,
                supports_recursive_cte: false,
                supports_unlogged: false,
                float_type_name: "DOUBLE",
            },
            EngineProfile::MariaDb => Dialect {
                profile: *self,
                ident_quote: '`',
                supports_update_from: false,
                supports_update_join: true,
                supports_concat_operator: true,
                supports_infinity_literal: false,
                supports_recursive_cte: true,
                supports_unlogged: false,
                float_type_name: "DOUBLE",
            },
        }
    }

    /// The join algorithm family the executor uses for equi-joins.
    pub fn join_strategy(&self) -> JoinStrategy {
        match self {
            EngineProfile::Postgres => JoinStrategy::Hash,
            EngineProfile::MySql => JoinStrategy::BlockNestedLoop { buffer_rows: 256 },
            EngineProfile::MariaDb => JoinStrategy::BlockNestedLoop { buffer_rows: 4096 },
        }
    }

    /// Rows per column batch in the vectorized executor. The three profiles
    /// use deliberately different sizes (small / default / large, echoing
    /// their join-buffer spread) so they stay architecturally distinct.
    pub fn batch_size(&self) -> usize {
        match self {
            EngineProfile::MySql => 256,
            EngineProfile::Postgres => 1024,
            EngineProfile::MariaDb => 4096,
        }
    }
}

impl fmt::Display for EngineProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Equi-join execution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Build a hash table on the inner side (PostgreSQL).
    Hash,
    /// Nested loop joining `buffer_rows` outer rows per inner pass
    /// (MySQL/MariaDB block-nested-loop; an index on the inner join column
    /// upgrades this to an index nested-loop join on any profile).
    BlockNestedLoop {
        /// Outer rows buffered per inner scan.
        buffer_rows: usize,
    },
}

/// Dialect capabilities and spellings for one engine profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dialect {
    /// Which profile these rules belong to.
    pub profile: EngineProfile,
    /// Identifier quote character (`"` or `` ` ``).
    pub ident_quote: char,
    /// `UPDATE t SET … FROM f WHERE …` accepted.
    pub supports_update_from: bool,
    /// `UPDATE t JOIN f ON … SET …` accepted.
    pub supports_update_join: bool,
    /// `||` string concatenation accepted (`CONCAT(…)` otherwise).
    pub supports_concat_operator: bool,
    /// The `Infinity` float literal accepted.
    pub supports_infinity_literal: bool,
    /// Native recursive CTE evaluation available.
    pub supports_recursive_cte: bool,
    /// `CREATE UNLOGGED TABLE` accepted.
    pub supports_unlogged: bool,
    /// Spelling of the 64-bit float type.
    pub float_type_name: &'static str,
}

impl Dialect {
    /// Quotes an identifier with the dialect's quote character.
    pub fn quote(&self, ident: &str) -> String {
        let q = self.ident_quote;
        let escaped = ident.replace(q, &format!("{q}{q}"));
        format!("{q}{escaped}{q}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_parsing() {
        assert_eq!(EngineProfile::parse("pg"), Some(EngineProfile::Postgres));
        assert_eq!(EngineProfile::parse("MySQL"), Some(EngineProfile::MySql));
        assert_eq!(EngineProfile::parse("maria"), Some(EngineProfile::MariaDb));
        assert_eq!(EngineProfile::parse("oracle"), None);
    }

    #[test]
    fn dialect_capabilities_differ() {
        let pg = EngineProfile::Postgres.dialect();
        let my = EngineProfile::MySql.dialect();
        assert!(pg.supports_update_from && !my.supports_update_from);
        assert!(!pg.supports_update_join && my.supports_update_join);
        assert!(pg.supports_recursive_cte && !my.supports_recursive_cte);
        assert!(pg.supports_infinity_literal && !my.supports_infinity_literal);
    }

    #[test]
    fn quoting() {
        assert_eq!(
            EngineProfile::Postgres.dialect().quote("a\"b"),
            "\"a\"\"b\""
        );
        assert_eq!(EngineProfile::MySql.dialect().quote("col"), "`col`");
    }

    #[test]
    fn batch_sizes_are_distinct_per_profile() {
        let sizes: Vec<usize> = EngineProfile::ALL.iter().map(|p| p.batch_size()).collect();
        assert!(sizes.iter().all(|&s| s >= 1));
        let mut uniq = sizes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 3, "profiles must use distinct batch sizes");
    }

    #[test]
    fn join_strategies() {
        assert_eq!(EngineProfile::Postgres.join_strategy(), JoinStrategy::Hash);
        assert!(matches!(
            EngineProfile::MySql.join_strategy(),
            JoinStrategy::BlockNestedLoop { buffer_rows: 256 }
        ));
        let maria = EngineProfile::MariaDb.join_strategy();
        let mysql = EngineProfile::MySql.join_strategy();
        match (maria, mysql) {
            (
                JoinStrategy::BlockNestedLoop { buffer_rows: a },
                JoinStrategy::BlockNestedLoop { buffer_rows: b },
            ) => assert!(a > b, "MariaDB's join buffer should exceed MySQL's"),
            _ => panic!(),
        }
    }
}
