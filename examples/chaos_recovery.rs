//! Chaos testing: run PageRank through the parallel scheduler while a
//! seeded [`dbcp::ChaosDriver`] injects faults, and watch the recovery
//! layer keep the run alive (the README's fault-tolerance example,
//! runnable).
//!
//! Run with: `cargo run --example chaos_recovery`

use dbcp::{with_chaos, ChaosConfig, Driver, LocalDriver};
use sqldb::{Database, EngineProfile};
use sqloop::{ExecutionMode, SQLoop, SqloopConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::new(EngineProfile::Postgres);
    let clean: Arc<dyn Driver> = Arc::new(LocalDriver::new(db));

    // load a small ring-with-chords graph over the clean driver
    let mut conn = clean.connect()?;
    conn.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")?;
    let n = 30;
    for i in 0..n {
        // each node has two out-edges, so weight = 1/2
        let stmt = format!(
            "INSERT INTO edges VALUES ({i},{},0.5),({i},{},0.5)",
            (i + 1) % n,
            (i + 7) % n
        );
        conn.execute(&stmt)?;
    }

    // 8% of operations fault (refused connects, statement errors, latency,
    // mid-session drops), reproducibly for a given seed; the first
    // connection (the run's control connection) is shielded so faults land
    // on the workers, where recovery lives
    let (chaotic, stats) = with_chaos(
        clean,
        ChaosConfig {
            skip_connections: 1,
            ..ChaosConfig::seeded(42, 0.08)
        },
    );

    let config = SqloopConfig {
        mode: ExecutionMode::Sync,
        threads: 3,
        partitions: 8,
        // a sustained 8% storm can exhaust the default budget of 3 on an
        // unlucky partition; give the replay layer room to absorb it
        task_retries: 6,
        retry_backoff: Duration::from_millis(1),
        ..SqloopConfig::default()
    };
    let report = SQLoop::new(chaotic).with_config(config).execute_detailed(
        "WITH ITERATIVE PageRank(Node, Rank, Delta) AS (
           SELECT src, 0, 0.15
           FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges
           GROUP BY src
           ITERATE
           SELECT PageRank.Node,
                  COALESCE(PageRank.Rank + PageRank.Delta, 0.15),
                  COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
           FROM PageRank
           LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst
           LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
           GROUP BY PageRank.Node
           UNTIL 10 ITERATIONS)
         SELECT Node, Rank FROM PageRank ORDER BY Rank DESC",
    )?;

    println!(
        "strategy: {:?}, {} iterations in {:?}",
        report.strategy, report.iterations, report.elapsed
    );
    println!(
        "injected {} faults ({} refused connects, {} statement errors, \
         {} delays, {} drops)",
        stats.faults(),
        stats.connects_refused(),
        stats.stmt_errors(),
        stats.latencies(),
        stats.drops()
    );
    println!("recovery: {}", report.recovery);
    let total: f64 = report
        .result
        .rows
        .iter()
        .map(|r| r[1].as_f64().unwrap())
        .sum();
    println!("total rank mass: {total:.6} over {} nodes", n);
    Ok(())
}
