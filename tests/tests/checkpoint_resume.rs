//! Crash/resume and cancellation integration tests: runs are interrupted
//! (iteration-cap "crash", chaos storms, deadlines, programmatic cancel)
//! with durable checkpointing on, then resumed against a *fresh* database
//! — the fixpoint must match the oracle of an uninterrupted run in every
//! execution mode, checkpoint artifacts must be atomic and validated, and
//! scratch tables must never leak past a failed run.

use dbcp::{with_chaos, ChaosConfig, Driver, FaultWeights, LocalDriver};
use sqldb::{Database, EngineProfile};
use sqloop::{
    CheckpointConfig, ExecutionMode, PrioritySpec, SQLoop, SqloopConfig, SqloopError, Strategy,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// A process-unique scratch directory for checkpoint files.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqloop-ckpt-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A fresh engine with `graph` loaded — called once per "process life":
/// resuming always starts from a new database that holds only the base
/// `edges` table, exactly like a restart after a crash.
fn fresh_driver(graph: &graphgen::Graph) -> (Arc<dyn Driver>, Database) {
    let db = Database::new(EngineProfile::Postgres);
    let driver: Arc<dyn Driver> = Arc::new(LocalDriver::new(db.clone()));
    let mut conn = driver.connect().unwrap();
    workloads::load_edges(conn.as_mut(), graph).unwrap();
    (driver, db)
}

/// Checkpoint-enabled config: snapshot after every round so even a short
/// crashed run leaves something to resume from.
fn durable(mode: ExecutionMode, dir: &Path) -> SqloopConfig {
    let mut config = SqloopConfig {
        mode,
        threads: 3,
        partitions: 8,
        retry_backoff: Duration::ZERO,
        downgrade_on_failure: false,
        checkpoint: Some(CheckpointConfig::new(dir).every(1)),
        ..SqloopConfig::default()
    };
    if mode == ExecutionMode::AsyncPrio {
        config.priority = Some(PrioritySpec::lowest("SELECT MIN(delta) FROM {}"));
    }
    config
}

/// All fault kinds, weighted like a misbehaving network.
fn storm(seed: u64, fault_rate: f64) -> ChaosConfig {
    ChaosConfig {
        weights: FaultWeights {
            connect_refused: 1,
            stmt_error: 4,
            latency: 2,
            drop: 1,
            ..FaultWeights::default()
        },
        latency: Duration::from_millis(1),
        skip_connections: 1,
        ..ChaosConfig::seeded(seed, fault_rate)
    }
}

fn assert_sssp_matches(
    rows: &[Vec<sqldb::Value>],
    oracle: &std::collections::HashMap<u64, f64>,
    label: &str,
) {
    for row in rows {
        let node = row[0].as_i64().unwrap() as u64;
        let d = row[1].as_f64().unwrap();
        match oracle.get(&node) {
            Some(&expected) => assert!(
                (d - expected).abs() < 1e-9,
                "{label}: node {node} distance {d} vs {expected}"
            ),
            None => assert!(
                d.is_infinite(),
                "{label}: node {node} should be unreachable, got {d}"
            ),
        }
    }
}

/// The crash harness: run SSSP for a few rounds, "crash" (the run errors
/// out on a low iteration cap after checkpoints were written), then resume
/// on a fresh database and check the fixpoint against Dijkstra — in all
/// three parallel modes.
#[test]
fn crash_and_resume_matches_oracle_in_every_mode() {
    // a chain has diameter 24: SSSP needs ~25 rounds, so a cap of 6 is a
    // genuine mid-run crash in every mode
    let graph = graphgen::chain(24);
    let oracle = workloads::oracle::sssp(&graph, 0);
    for mode in [
        ExecutionMode::Sync,
        ExecutionMode::Async,
        ExecutionMode::AsyncPrio,
    ] {
        let dir = scratch(&format!("crash-{mode}"));

        // phase 1: crash after a few rounds (cap is below convergence;
        // AsyncP's prioritized waves propagate several hops per round, so
        // its cap sits lower)
        let (driver, _db) = fresh_driver(&graph);
        let mut config = durable(mode, &dir);
        config.max_iterations = if mode == ExecutionMode::AsyncPrio {
            2
        } else {
            6
        };
        let err = SQLoop::new(driver)
            .with_config(config)
            .execute(&workloads::queries::sssp_all(0))
            .unwrap_err();
        assert!(
            matches!(err, SqloopError::Semantic(_)),
            "{mode}: expected the iteration-cap crash, got {err}"
        );
        assert!(
            dir.join("MANIFEST.json").is_file(),
            "{mode}: the crashed run must leave a manifest"
        );

        // phase 2: fresh database (only `edges` survives the "crash"),
        // resume from the manifest and run to the fixpoint
        let (driver, _db) = fresh_driver(&graph);
        let mut config = durable(mode, &dir);
        config.resume_from = Some(dir.clone());
        let report = SQLoop::new(driver)
            .with_config(config)
            .execute_detailed(&workloads::queries::sssp_all(0))
            .unwrap();
        assert!(
            matches!(report.strategy, Strategy::IterativeParallel { .. }),
            "{mode}: resume should stay parallel, got {:?}",
            report.strategy
        );
        assert!(!report.cancelled, "{mode}: a resumed run is not cancelled");
        assert_eq!(report.result.rows.len(), graph.node_count() as usize);
        assert_sssp_matches(&report.result.rows, &oracle, &format!("{mode} resume"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Same harness under a seeded fault storm on both sides of the crash:
/// retry/replay plus resume still land on the oracle fixpoint.
#[test]
fn chaos_crash_and_resume_matches_oracle() {
    let graph = graphgen::chain(24);
    let oracle = workloads::oracle::sssp(&graph, 0);
    for (i, mode) in [
        ExecutionMode::Sync,
        ExecutionMode::Async,
        ExecutionMode::AsyncPrio,
    ]
    .into_iter()
    .enumerate()
    {
        let dir = scratch(&format!("chaos-{mode}"));

        let (driver, _db) = fresh_driver(&graph);
        let (driver, _stats) = with_chaos(driver, storm(200 + i as u64, 0.06));
        let mut config = durable(mode, &dir);
        config.task_retries = 6;
        config.max_iterations = if mode == ExecutionMode::AsyncPrio {
            2
        } else {
            6
        };
        let err = SQLoop::new(driver)
            .with_config(config)
            .execute(&workloads::queries::sssp_all(0))
            .unwrap_err();
        assert!(
            matches!(err, SqloopError::Semantic(_)),
            "{mode}: expected the iteration-cap crash, got {err}"
        );
        assert!(dir.join("MANIFEST.json").is_file());

        let (driver, _db) = fresh_driver(&graph);
        let (driver, stats) = with_chaos(driver, storm(300 + i as u64, 0.06));
        let mut config = durable(mode, &dir);
        config.task_retries = 6;
        config.resume_from = Some(dir.clone());
        let report = SQLoop::new(driver)
            .with_config(config)
            .execute_detailed(&workloads::queries::sssp_all(0))
            .unwrap();
        assert_sssp_matches(
            &report.result.rows,
            &oracle,
            &format!("{mode} chaos resume ({stats:?})"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Single-executor crash/resume: the oracle equality holds for the
/// non-parallel path too.
#[test]
fn single_mode_crash_and_resume_matches_oracle() {
    let graph = graphgen::web_graph(60, 3, 7);
    let oracle = workloads::oracle::pagerank(&graph, 10);
    let dir = scratch("single");

    let (driver, _db) = fresh_driver(&graph);
    let mut config = durable(ExecutionMode::Single, &dir);
    config.max_iterations = 4;
    let err = SQLoop::new(driver)
        .with_config(config)
        .execute(&workloads::queries::pagerank(10))
        .unwrap_err();
    assert!(matches!(err, SqloopError::Semantic(_)), "got {err}");
    assert!(dir.join("MANIFEST.json").is_file());

    let (driver, _db) = fresh_driver(&graph);
    let mut config = durable(ExecutionMode::Single, &dir);
    config.resume_from = Some(dir.clone());
    let report = SQLoop::new(driver)
        .with_config(config)
        .execute_detailed(&workloads::queries::pagerank(10))
        .unwrap();
    assert!(matches!(report.strategy, Strategy::IterativeSingle { .. }));
    assert_eq!(report.result.rows.len(), oracle.len());
    for row in &report.result.rows {
        let node = row[0].as_i64().unwrap() as u64;
        let rank = row[1].as_f64().unwrap();
        let expected = oracle[&node];
        assert!(
            (rank - expected).abs() < 1e-9,
            "node {node}: {rank} vs {expected}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A 200 ms deadline on a run that would otherwise take far longer: the
/// report comes back `cancelled` with partial results and a final
/// checkpoint, well under the uninterrupted run time.
#[test]
fn deadline_returns_cancelled_report_with_partial_results() {
    let graph = graphgen::web_graph(100, 3, 7);
    let dir = scratch("deadline");
    let (driver, _db) = fresh_driver(&graph);
    // latency-only chaos makes each worker statement slow enough that
    // 100 000 nominal iterations would run for hours
    let slow = ChaosConfig {
        weights: FaultWeights {
            connect_refused: 0,
            stmt_error: 0,
            latency: 1,
            drop: 0,
            ..FaultWeights::default()
        },
        latency: Duration::from_millis(2),
        skip_connections: 1,
        ..ChaosConfig::seeded(9, 0.9)
    };
    let (driver, _stats) = with_chaos(driver, slow);
    let mut config = durable(ExecutionMode::Sync, &dir);
    config.max_iterations = 200_000;
    config.deadline = Some(Duration::from_millis(200));
    let started = std::time::Instant::now();
    let report = SQLoop::new(driver)
        .with_config(config)
        .execute_detailed(&workloads::queries::pagerank(100_000))
        .unwrap();
    let elapsed = started.elapsed();
    assert!(report.cancelled, "the deadline must cancel the run");
    assert!(
        report.iterations < 100_000,
        "cancelled after {} iterations?",
        report.iterations
    );
    assert!(
        !report.result.rows.is_empty(),
        "a cancelled run still reports the partial state"
    );
    assert!(
        report.checkpoint.is_some(),
        "cancellation must leave a final checkpoint"
    );
    assert!(report.checkpoint.as_ref().unwrap().is_file());
    // "well under" the uninterrupted run: generous CI margin, still orders
    // of magnitude below 100k slow rounds
    assert!(
        elapsed < Duration::from_secs(10),
        "cancellation took {elapsed:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cancelling from another thread mid-run (the CLI Ctrl-C path) stops the
/// loop at its next quiesce point.
#[test]
fn programmatic_cancel_stops_the_run() {
    let graph = graphgen::web_graph(100, 3, 7);
    let (driver, _db) = fresh_driver(&graph);
    let slow = ChaosConfig {
        weights: FaultWeights {
            connect_refused: 0,
            stmt_error: 0,
            latency: 1,
            drop: 0,
            ..FaultWeights::default()
        },
        latency: Duration::from_millis(2),
        skip_connections: 1,
        ..ChaosConfig::seeded(11, 0.9)
    };
    let (driver, _stats) = with_chaos(driver, slow);
    let mut config = SqloopConfig {
        mode: ExecutionMode::Async,
        threads: 3,
        partitions: 8,
        max_iterations: 200_000,
        downgrade_on_failure: false,
        ..SqloopConfig::default()
    };
    config.retry_backoff = Duration::ZERO;
    let cancel = config.cancel.clone();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(120));
        cancel.cancel();
    });
    let report = SQLoop::new(driver)
        .with_config(config)
        .execute_detailed(&workloads::queries::pagerank(100_000))
        .unwrap();
    killer.join().unwrap();
    assert!(report.cancelled, "the cancel() call must stop the run");
    assert!(report.iterations < 100_000);
}

/// Resuming with a different query, or a different partition layout, is a
/// typed `Checkpoint` error — never a silent wrong answer.
#[test]
fn mismatched_resume_is_a_typed_error() {
    let graph = graphgen::web_graph(40, 3, 3);
    let dir = scratch("mismatch");
    let (driver, _db) = fresh_driver(&graph);
    SQLoop::new(driver)
        .with_config(durable(ExecutionMode::Sync, &dir))
        .execute(&workloads::queries::pagerank(5))
        .unwrap();
    assert!(dir.join("MANIFEST.json").is_file());

    // different query, same layout
    let (driver, _db) = fresh_driver(&graph);
    let mut config = durable(ExecutionMode::Sync, &dir);
    config.resume_from = Some(dir.clone());
    let err = SQLoop::new(driver)
        .with_config(config)
        .execute(&workloads::queries::sssp_all(0))
        .unwrap_err();
    assert!(
        matches!(err, SqloopError::Checkpoint(_)),
        "wrong query: {err}"
    );

    // same query, different partition count
    let (driver, _db) = fresh_driver(&graph);
    let mut config = durable(ExecutionMode::Sync, &dir);
    config.partitions = 4;
    config.resume_from = Some(dir.clone());
    let err = SQLoop::new(driver)
        .with_config(config)
        .execute(&workloads::queries::pagerank(5))
        .unwrap_err();
    assert!(
        matches!(err, SqloopError::Checkpoint(_)),
        "wrong layout: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn or bit-flipped snapshot fails the checksum and surfaces as a
/// typed `Checkpoint` error on resume.
#[test]
fn corrupt_checkpoint_is_rejected() {
    let graph = graphgen::web_graph(40, 3, 3);
    let dir = scratch("corrupt");
    let (driver, _db) = fresh_driver(&graph);
    SQLoop::new(driver)
        .with_config(durable(ExecutionMode::Sync, &dir))
        .execute(&workloads::queries::pagerank(5))
        .unwrap();

    // truncate every snapshot: simulates a torn write that bypassed the
    // tmp+rename protocol (e.g. disk corruption)
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "sqloop") {
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::write(&path, &text[..text.len() / 2]).unwrap();
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "the run must have written snapshots");

    let (driver, _db) = fresh_driver(&graph);
    let mut config = durable(ExecutionMode::Sync, &dir);
    config.resume_from = Some(dir.clone());
    let err = SQLoop::new(driver)
        .with_config(config)
        .execute(&workloads::queries::pagerank(5))
        .unwrap_err();
    assert!(
        matches!(err, SqloopError::Checkpoint(_)),
        "corruption must be typed: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: after a chaos-failed run (no downgrade, no retries), the
/// catalog holds exactly the tables it held before the run — every scratch
/// partition, message table, view and join cache was dropped on the error
/// path.
#[test]
fn failed_run_leaves_no_scratch_tables() {
    let graph = graphgen::web_graph(50, 3, 3);
    let (driver, db) = fresh_driver(&graph);
    let baseline = db.table_names();
    // a short, fatal outage: enough statement faults to kill the run with
    // retries off, healed by the time the cleanup statements execute
    let chaos = ChaosConfig {
        weights: FaultWeights {
            connect_refused: 0,
            stmt_error: 1,
            latency: 0,
            drop: 0,
            ..FaultWeights::default()
        },
        max_faults: Some(2),
        skip_connections: 1,
        ..ChaosConfig::seeded(21, 0.4)
    };
    let (driver, stats) = with_chaos(driver, chaos);
    let mut config = durable(ExecutionMode::Sync, &scratch("cleanup"));
    config.task_retries = 0;
    config.checkpoint = None;
    let err = SQLoop::new(driver)
        .with_config(config)
        .execute(&workloads::queries::pagerank(8))
        .unwrap_err();
    assert!(stats.faults() > 0, "chaos must have fired");
    assert!(
        err.is_retryable(),
        "chaos failure should be transient: {err}"
    );
    assert_eq!(
        db.table_names(),
        baseline,
        "a failed run must drop all scratch tables"
    );
    assert!(
        db.catalog().view_names().is_empty(),
        "a failed run must drop its views"
    );
}

/// Cancellation also cleans up scratch tables (keep_artifacts not set)
/// while still writing the final checkpoint.
#[test]
fn cancelled_run_cleans_up_but_keeps_the_checkpoint() {
    let graph = graphgen::web_graph(60, 3, 7);
    let dir = scratch("cancel-cleanup");
    let (driver, db) = fresh_driver(&graph);
    let baseline = db.table_names();
    let mut config = durable(ExecutionMode::Sync, &dir);
    config.max_iterations = 200_000;
    config.deadline = Some(Duration::from_millis(100));
    let slow = ChaosConfig {
        weights: FaultWeights {
            connect_refused: 0,
            stmt_error: 0,
            latency: 1,
            drop: 0,
            ..FaultWeights::default()
        },
        latency: Duration::from_millis(2),
        skip_connections: 1,
        ..ChaosConfig::seeded(13, 0.9)
    };
    let (driver, _stats) = with_chaos(driver, slow);
    let report = SQLoop::new(driver)
        .with_config(config)
        .execute_detailed(&workloads::queries::pagerank(100_000))
        .unwrap();
    assert!(report.cancelled);
    assert_eq!(
        db.table_names(),
        baseline,
        "a cancelled run must drop its scratch tables"
    );
    assert!(
        report.checkpoint.is_some() && report.checkpoint.as_ref().unwrap().is_file(),
        "…but the final checkpoint survives for a later resume"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
