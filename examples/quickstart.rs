//! Quickstart: connect SQLoop to an in-process engine, run the paper's
//! Example 1 (recursive Fibonacci CTE) and a small iterative CTE.
//!
//! Run with: `cargo run --example quickstart`

use sqloop::SQLoop;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. connect by URL, exactly like the paper's middleware (§IV-A)
    let sqloop = SQLoop::connect("local://postgres")?;

    // 2. regular SQL passes straight through
    sqloop.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")?;
    sqloop.execute("INSERT INTO edges VALUES (1,2,0.5),(1,3,0.5),(2,3,1.0),(3,1,1.0)")?;

    // 3. the paper's Example 1: a recursive CTE summing Fibonacci numbers
    let fib = sqloop.execute(
        "WITH RECURSIVE Fibonacci(n, pn) AS (
           VALUES (0, 1)
           UNION ALL
           SELECT n + pn, n FROM Fibonacci WHERE n < 1000
         )
         SELECT SUM(n) FROM Fibonacci",
    )?;
    println!(
        "sum of Fibonacci rows below the 1000 guard: {}",
        fib.rows[0][0]
    );

    // 4. an iterative CTE: PageRank for 20 iterations (the paper's Example 2)
    let report = sqloop.execute_detailed(
        "WITH ITERATIVE PageRank(Node, Rank, Delta) AS (
           SELECT src, 0, 0.15
           FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges
           GROUP BY src
           ITERATE
           SELECT PageRank.Node,
                  COALESCE(PageRank.Rank + PageRank.Delta, 0.15),
                  COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
           FROM PageRank
           LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst
           LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
           GROUP BY PageRank.Node
           UNTIL 20 ITERATIONS)
         SELECT Node, Rank FROM PageRank ORDER BY Rank DESC",
    )?;
    println!(
        "PageRank ran as {:?} in {:?} ({} iterations)",
        report.strategy, report.elapsed, report.iterations
    );
    for row in &report.result.rows {
        println!("  node {:>3}  rank {:.4}", row[0], row[1].as_f64().unwrap());
    }
    Ok(())
}
