//! SQLoop against a *remote* database engine over the TCP wire protocol —
//! the paper's claim that the middleware "can also work with remote database
//! systems" (§I) made concrete.
//!
//! Run with: `cargo run --release --example remote_engine`

use dbcp::Server;
use sqldb::{Database, EngineProfile};
use sqloop::{ExecutionMode, SQLoop, SqloopConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // the "remote" engine: a MariaDB-profile server on an ephemeral port
    let server = Server::bind(Database::new(EngineProfile::MariaDb), "127.0.0.1:0")?;
    let url = format!("tcp://{}", server.addr());
    println!("engine listening on {url}");

    // SQLoop connects by URL; every worker thread opens its own socket
    let sqloop = SQLoop::connect(&url)?.with_config(SqloopConfig {
        mode: ExecutionMode::Async,
        threads: 4,
        partitions: 16,
        ..SqloopConfig::default()
    });

    let graph = graphgen::ego_network(12, 20, 4, 7);
    println!("loading {graph} over the wire…");
    let mut conn = sqloop.driver().connect()?;
    workloads::load_edges(conn.as_mut(), &graph)?;
    drop(conn);

    let (dest, hops) = graph.node_at_distance(0, 1_000).expect("connected");
    let report = sqloop.execute_detailed(&workloads::queries::sssp(0, dest))?;
    println!(
        "shortest path 0 → {dest} ({hops} hops): distance {:?} in {:.2?} via {:?}",
        report.result.rows.first().map(|r| r[0].clone()),
        report.elapsed,
        report.strategy,
    );
    server.shutdown();
    Ok(())
}
