//! Deterministic crash-matrix harness (DESIGN.md §15): enumerate **every**
//! crash point of the checkpoint write → manifest → rotate sequence, plus
//! the torn-write / failed-rename / duplicated-rename / bit-flip storage
//! faults, in all four execution modes — and prove that every resume either
//! reaches the identical oracle fixpoint or fails with a typed
//! [`SqloopError::Checkpoint`]. Never a wrong answer.
//!
//! The harness replays *real* snapshot generations (captured from a genuine
//! crashed run) through a [`Checkpointer`] whose I/O is routed through the
//! [`TornFs`] fault injector, then resumes from the post-power-cut disk
//! image on a fresh database.

use dbcp::Driver;
use sqldb::Database;
use sqloop::checkpoint::load_latest;
use sqloop::{
    CheckpointConfig, Checkpointer, ExecutionMode, LoopSnapshot, PrioritySpec, SQLoop,
    SqloopConfig, SqloopError, StorageFault, TornFs,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqloop-cmx-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fresh_driver(graph: &graphgen::Graph) -> Arc<dyn Driver> {
    let db = Database::new(sqldb::EngineProfile::Postgres);
    let driver: Arc<dyn Driver> = Arc::new(dbcp::LocalDriver::new(db));
    let mut conn = driver.connect().unwrap();
    workloads::load_edges(conn.as_mut(), graph).unwrap();
    driver
}

/// The run configuration shared by the crashing run and every resume — the
/// snapshot fingerprint binds query + mode + partitions, so these must not
/// drift between phases.
fn config_for(mode: ExecutionMode, dir: &Path) -> SqloopConfig {
    let mut config = SqloopConfig {
        mode,
        threads: 2,
        partitions: 4,
        retry_backoff: Duration::ZERO,
        downgrade_on_failure: false,
        checkpoint: Some(CheckpointConfig::new(dir).every(1)),
        ..SqloopConfig::default()
    };
    if mode == ExecutionMode::AsyncPrio {
        config.priority = Some(PrioritySpec::lowest("SELECT MIN(delta) FROM {}"));
    }
    config
}

fn assert_sssp_matches(
    rows: &[Vec<sqldb::Value>],
    oracle: &std::collections::HashMap<u64, f64>,
    label: &str,
) {
    for row in rows {
        let node = row[0].as_i64().unwrap() as u64;
        let d = row[1].as_f64().unwrap();
        match oracle.get(&node) {
            Some(&expected) => assert!(
                (d - expected).abs() < 1e-9,
                "{label}: node {node} distance {d} vs {expected}"
            ),
            None => assert!(
                d.is_infinite(),
                "{label}: node {node} should be unreachable, got {d}"
            ),
        }
    }
}

/// Phase A: crash a real checkpointing run on a low iteration cap and
/// capture its two newest snapshot generations (oldest first).
fn capture_generations(mode: ExecutionMode, graph: &graphgen::Graph) -> Vec<LoopSnapshot> {
    let dir = scratch(&format!("capture-{mode}"));
    let mut config = config_for(mode, &dir);
    config.max_iterations = if mode == ExecutionMode::AsyncPrio {
        2
    } else {
        4
    };
    let err = SQLoop::new(fresh_driver(graph))
        .with_config(config)
        .execute(&workloads::queries::sssp_all(0))
        .unwrap_err();
    assert!(
        matches!(err, SqloopError::Semantic(_)),
        "{mode}: expected the iteration-cap crash, got {err}"
    );
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .filter(|n| n.ends_with(".sqloop"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 2,
        "{mode}: need two generations to replay, have {names:?}"
    );
    let gens: Vec<LoopSnapshot> = names
        .iter()
        .map(|n| load_latest(&dir.join(n)).unwrap())
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    gens
}

/// Replays one checkpoint sequence against a fresh directory: `old` is
/// written durably first (the prior generation a real run would have), then
/// `new` is saved through a [`TornFs`] armed with `fault`. Returns the
/// injector (for op counting) and the save outcome.
///
/// `keep_last: 1` makes the sequence include the rotation delete of `old`,
/// so the op numbering covers write(1) sync(2) rename(3) dirsync(4) of the
/// snapshot, the same four (5–8) for the manifest, and the remove(9).
fn replay_save(
    dir: &Path,
    old: &LoopSnapshot,
    new: &LoopSnapshot,
    keep_last: usize,
    fault: Option<StorageFault>,
) -> (Arc<TornFs>, Result<PathBuf, SqloopError>) {
    let cfg = CheckpointConfig {
        dir: dir.to_path_buf(),
        interval: 1,
        keep_last,
    };
    Checkpointer::new(cfg.clone()).unwrap().save(old).unwrap();
    let io = Arc::new(TornFs::new(dir, fault));
    let mut ck = Checkpointer::with_io(cfg, io.clone()).unwrap();
    let outcome = ck.save(new);
    (io, outcome)
}

/// Phase B: resume from whatever the crash left in `dir` on a fresh
/// database. The only acceptable outcomes are the oracle fixpoint or a
/// typed `Checkpoint` error; anything else is a wrong answer. Returns
/// whether the resume succeeded.
fn resume_never_wrong(
    mode: ExecutionMode,
    dir: &Path,
    graph: &graphgen::Graph,
    oracle: &std::collections::HashMap<u64, f64>,
    label: &str,
) -> bool {
    let mut config = config_for(mode, dir);
    config.resume_from = Some(dir.to_path_buf());
    match SQLoop::new(fresh_driver(graph))
        .with_config(config)
        .execute_detailed(&workloads::queries::sssp_all(0))
    {
        Ok(report) => {
            assert_eq!(
                report.result.rows.len(),
                graph.node_count(),
                "{label}: wrong row count"
            );
            assert_sssp_matches(&report.result.rows, oracle, label);
            true
        }
        Err(SqloopError::Checkpoint(_)) => false,
        Err(other) => panic!("{label}: resume must fail typed, got {other}"),
    }
}

/// The matrix for one mode: a power cut before every single mutating
/// operation of the save sequence (and one past the end — the fault-free
/// sequence followed by a cut), each resumed and oracle-checked.
fn crash_matrix_for(mode: ExecutionMode) {
    let graph = graphgen::chain(12);
    let oracle = workloads::oracle::sssp(&graph, 0);
    let gens = capture_generations(mode, &graph);
    let (old, new) = (&gens[gens.len() - 2], &gens[gens.len() - 1]);

    // fault-free dry run enumerates the crash points
    let dry = scratch(&format!("dry-{mode}"));
    let (io, outcome) = replay_save(&dry, old, new, 1, None);
    outcome.unwrap();
    let total_ops = io.op_count();
    let _ = std::fs::remove_dir_all(&dry);
    assert!(
        total_ops >= 9,
        "{mode}: expected write+sync+rename+dirsync ×2 + rotate, saw {total_ops} ops"
    );

    let mut resumed_ok = 0u64;
    for op in 1..=total_ops + 1 {
        let dir = scratch(&format!("cut-{mode}-{op}"));
        let (io, outcome) = replay_save(&dir, old, new, 1, Some(StorageFault::Crash { op }));
        if op <= total_ops {
            // a cut during the best-effort rotation delete is deliberately
            // swallowed by save(); every earlier cut surfaces as an error
            assert!(
                io.crashed(),
                "{mode} op {op}: the injected cut must have fired"
            );
        } else {
            // one past the end: the full sequence completed, then the power
            // cut hit — full fsync discipline must make that loss-free
            outcome.unwrap();
            io.crash();
        }
        let label = format!("{mode} power cut before op {op}/{total_ops}");
        if resume_never_wrong(mode, &dir, &graph, &oracle, &label) {
            resumed_ok += 1;
        } else {
            panic!("{label}: the prior generation was durable, resume must succeed");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(resumed_ok, total_ops + 1);

    // storage-fault variants beyond the pure power cut: torn snapshot
    // write, torn manifest write, failed/duplicated renames of both files
    let encoded_len = new.encode().len();
    let variants: Vec<(&str, StorageFault)> = vec![
        (
            "torn snapshot write",
            StorageFault::TornWrite {
                op: 1,
                keep: encoded_len / 2,
            },
        ),
        (
            "torn manifest write",
            StorageFault::TornWrite { op: 5, keep: 10 },
        ),
        ("failed snapshot rename", StorageFault::FailRename { op: 3 }),
        ("failed manifest rename", StorageFault::FailRename { op: 7 }),
        (
            "duplicated snapshot rename",
            StorageFault::DuplicateRename { op: 3 },
        ),
    ];
    for (what, fault) in variants {
        let dir = scratch(&format!("var-{mode}-{}", fault.op()));
        let (io, outcome) = replay_save(&dir, old, new, 1, Some(fault));
        if io.crashed() {
            // torn writes end in a power cut: land on the durable image
            assert!(outcome.is_err(), "{mode} {what}: torn write must error");
        } else if matches!(fault, StorageFault::FailRename { .. }) {
            assert!(outcome.is_err(), "{mode} {what}: failed rename must error");
        } else {
            outcome.unwrap();
        }
        let label = format!("{mode} {what}");
        assert!(
            resume_never_wrong(mode, &dir, &graph, &oracle, &label),
            "{label}: a durable prior generation existed, resume must succeed"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // manifest torn *at rest* (out-of-protocol corruption, e.g. media
    // damage): the orphan directory scan must still find the snapshots
    let dir = scratch(&format!("manifest-{mode}"));
    let (_io, outcome) = replay_save(&dir, old, new, 2, None);
    outcome.unwrap();
    let manifest = dir.join("MANIFEST.json");
    let text = std::fs::read_to_string(&manifest).unwrap();
    std::fs::write(&manifest, &text[..text.len() / 3]).unwrap();
    let fallback_before = obs::global().counter("sqloop.ckpt.fallback_loads").get();
    assert!(
        resume_never_wrong(
            mode,
            &dir,
            &graph,
            &oracle,
            &format!("{mode} torn manifest")
        ),
        "{mode}: valid orphaned snapshots must carry a torn-manifest resume"
    );
    assert!(
        obs::global().counter("sqloop.ckpt.fallback_loads").get() > fallback_before,
        "{mode}: a torn-manifest recovery is a fallback load"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_matrix_single_mode() {
    crash_matrix_for(ExecutionMode::Single);
}

#[test]
fn crash_matrix_sync_mode() {
    crash_matrix_for(ExecutionMode::Sync);
}

#[test]
fn crash_matrix_async_mode() {
    crash_matrix_for(ExecutionMode::Async);
}

#[test]
fn crash_matrix_asyncprio_mode() {
    crash_matrix_for(ExecutionMode::AsyncPrio);
}

/// The demonstrable fallback: the newest snapshot is bit-flipped (a latent
/// media fault the fsync discipline cannot see), resume detects it, moves
/// it to `<name>.corrupt`, falls back to the previous generation, converges
/// to the oracle, and reports the whole story.
#[test]
fn corrupt_newest_generation_falls_back_quarantines_and_counts() {
    let mode = ExecutionMode::Sync;
    let graph = graphgen::chain(12);
    let oracle = workloads::oracle::sssp(&graph, 0);
    let gens = capture_generations(mode, &graph);
    let (old, new) = (&gens[gens.len() - 2], &gens[gens.len() - 1]);

    let dir = scratch("bitflip-fallback");
    // keep_last 2: the old generation survives rotation and is the net
    let (_io, outcome) = replay_save(
        &dir,
        old,
        new,
        2,
        Some(StorageFault::BitFlip { op: 1, bit: 2_000 }),
    );
    let new_path = outcome.unwrap();
    let new_name = new_path.file_name().unwrap().to_string_lossy().into_owned();

    let reg = obs::global();
    let corrupt_before = reg.counter("sqloop.ckpt.corrupt_detected").get();
    let fallback_before = reg.counter("sqloop.ckpt.fallback_loads").get();

    let mut config = config_for(mode, &dir);
    config.resume_from = Some(dir.clone());
    let report = SQLoop::new(fresh_driver(&graph))
        .with_config(config)
        .execute_detailed(&workloads::queries::sssp_all(0))
        .unwrap();
    assert_sssp_matches(&report.result.rows, &oracle, "bit-flip fallback resume");

    // the story is told: counters, quarantine file, and the report note
    assert!(
        reg.counter("sqloop.ckpt.corrupt_detected").get() > corrupt_before,
        "the flipped snapshot must be detected as corrupt"
    );
    assert!(
        reg.counter("sqloop.ckpt.fallback_loads").get() > fallback_before,
        "loading the older generation is a fallback load"
    );
    assert!(
        dir.join(format!("{new_name}.corrupt")).is_file(),
        "the corrupt newest snapshot must be quarantined to .corrupt"
    );
    assert!(
        !new_path.is_file(),
        "the corrupt file must be moved, not copied"
    );
    let note = report
        .recovery_note
        .expect("a fallback resume carries a recovery note");
    assert!(
        note.contains("recovered from") && note.contains("quarantined"),
        "note should describe the fallback, got: {note}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// When *every* generation is gone or corrupt, resume is a typed
/// [`SqloopError::Checkpoint`] — it must never invent an answer.
#[test]
fn all_generations_corrupt_is_a_typed_error() {
    let mode = ExecutionMode::Sync;
    let graph = graphgen::chain(12);
    let oracle = workloads::oracle::sssp(&graph, 0);
    let gens = capture_generations(mode, &graph);
    let (old, new) = (&gens[gens.len() - 2], &gens[gens.len() - 1]);

    let dir = scratch("all-corrupt");
    // keep_last 1 rotates the old generation away; the bit flip leaves the
    // only surviving snapshot corrupt — the worst reachable on-disk state
    let (_io, outcome) = replay_save(
        &dir,
        old,
        new,
        1,
        Some(StorageFault::BitFlip { op: 1, bit: 999 }),
    );
    outcome.unwrap();

    assert!(
        !resume_never_wrong(mode, &dir, &graph, &oracle, "all-corrupt resume"),
        "no valid generation exists: resume must fail typed, not answer"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
