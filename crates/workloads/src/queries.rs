//! Iterative-CTE query builders for the paper's three workloads (§VI-A)
//! plus two extension workloads (weakly-connected components, reachability
//! counting).
//!
//! All queries assume an `edges(src INT, dst INT, weight FLOAT)` table with
//! `weight = 1/outdegree(src)` (the paper's convention). One deliberate
//! deviation from the paper's Example 3 is documented in DESIGN.md §8: the
//! printed SSSP query propagates `Neighbor.Distance`, which never makes
//! progress from an all-`Infinity` start; following the Maiter (DAIC)
//! semantics the paper builds on, these builders propagate `Neighbor.Delta`
//! and gate messages on improvement.

use graphgen::NodeId;

/// The edge-table DDL every workload expects (canonical dialect).
pub const EDGES_DDL: &str = "CREATE TABLE edges (src INT, dst INT, weight FLOAT)";

/// PageRank over the whole graph for `iterations` rounds — the paper's
/// Example 2 verbatim (a *bulk iteration*: every node computes every round).
pub fn pagerank(iterations: u64) -> String {
    format!(
        "\
WITH ITERATIVE PageRank(Node, Rank, Delta) AS (
  SELECT src, 0, 0.15
  FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT PageRank.Node,
         COALESCE(PageRank.Rank + PageRank.Delta, 0.15),
         COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
  FROM PageRank
  LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst
  LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
  GROUP BY PageRank.Node
  UNTIL {iterations} ITERATIONS)
SELECT Node, Rank FROM PageRank ORDER BY Node"
    )
}

/// PageRank that stops when the total rank moves less than `epsilon`
/// between iterations (a `DELTA` termination condition, Table I).
pub fn pagerank_until_converged(epsilon: f64) -> String {
    format!(
        "\
WITH ITERATIVE PageRank(Node, Rank, Delta) AS (
  SELECT src, 0, 0.15
  FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT PageRank.Node,
         COALESCE(PageRank.Rank + PageRank.Delta, 0.15),
         COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
  FROM PageRank
  LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst
  LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
  GROUP BY PageRank.Node
  UNTIL DELTA SELECT SUM(PageRank.Rank) - SUM(PageRankdelta.Rank) FROM PageRank, PageRankdelta < {epsilon})
SELECT Node, Rank FROM PageRank ORDER BY Node"
    )
}

/// Single-source shortest path from `source`, returning the distance to
/// `destination` (the paper's Example 3, delta-corrected — see module docs).
pub fn sssp(source: NodeId, destination: NodeId) -> String {
    format!(
        "\
WITH ITERATIVE sssp(Node, Distance, Delta) AS (
  SELECT src, Infinity, CASE WHEN src = {source} THEN 0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT sssp.Node,
         LEAST(sssp.Distance, sssp.Delta),
         COALESCE(MIN(Neighbor.Delta + IncomingEdges.weight), Infinity)
  FROM sssp
  LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst
  LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src
  WHERE Neighbor.Delta < Neighbor.Distance OR sssp.Delta < sssp.Distance
  GROUP BY sssp.Node
  UNTIL 0 UPDATES)
SELECT sssp.Distance FROM sssp WHERE sssp.Node = {destination}"
    )
}

/// Single-source shortest path returning every node's distance (used to
/// diff against the native oracle).
pub fn sssp_all(source: NodeId) -> String {
    let q = sssp(source, 0);
    let cut = q
        .rfind("SELECT sssp.Distance")
        .expect("final query present");
    format!("{}SELECT Node, Distance FROM sssp ORDER BY Node", &q[..cut])
}

/// Descendant query (paper §VI-A): which pages are within `max_hops` clicks
/// of `source`, and how many clicks each takes. Hop counting uses `MIN`
/// (a traversal / *incremental iteration*).
///
/// `Hops` starts at `Infinity` for everything but the source; the iteration
/// relaxes hop counts exactly like SSSP with unit weights, never expands
/// past the hop budget (`Neighbor.Delta < max_hops` in the source filter),
/// and runs to quiescence — so every execution mode explores the same
/// ≤ `max_hops` page set.
pub fn descendant_query(source: NodeId, max_hops: u64) -> String {
    format!(
        "\
WITH ITERATIVE dq(Node, Hops, Delta) AS (
  SELECT src, Infinity, CASE WHEN src = {source} THEN 0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT dq.Node,
         LEAST(dq.Hops, dq.Delta),
         COALESCE(MIN(Neighbor.Delta + 1.0), Infinity)
  FROM dq
  LEFT JOIN edges AS IncomingEdges ON dq.Node = IncomingEdges.dst
  LEFT JOIN dq AS Neighbor ON Neighbor.Node = IncomingEdges.src
  WHERE (Neighbor.Delta < Neighbor.Hops AND Neighbor.Delta < {max_hops}) OR dq.Delta < dq.Hops
  GROUP BY dq.Node
  UNTIL 0 UPDATES)
SELECT Node, Hops FROM dq WHERE Hops <= {max_hops} ORDER BY Hops, Node"
    )
}

/// Descendant query variant that answers the paper's Fig. 6 question: how
/// many clicks separate `source` from `target` (runs to quiescence with an
/// unbounded hop budget).
pub fn descendant_clicks(source: NodeId, target: NodeId) -> String {
    let q = descendant_query(source, u64::MAX / 2);
    let cut = q.rfind("SELECT Node, Hops").expect("final query present");
    format!("{}SELECT Hops FROM dq WHERE Node = {target}", &q[..cut])
}

/// Weakly-connected components via label propagation with `MIN` (extension
/// workload; the paper cites Connected Components as an aggregation-based
/// task CTEs cannot express).
pub fn connected_components(max_rounds: u64) -> String {
    format!(
        "\
WITH ITERATIVE wcc(Node, Component, Delta) AS (
  SELECT src, src, src
  FROM (SELECT src FROM edges UNION SELECT dst FROM edges
        UNION SELECT dst AS src FROM edges UNION SELECT src AS dst FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT wcc.Node,
         LEAST(wcc.Component, wcc.Delta),
         COALESCE(MIN(Neighbor.Delta), Infinity)
  FROM wcc
  LEFT JOIN both_edges AS IncomingEdges ON wcc.Node = IncomingEdges.dst
  LEFT JOIN wcc AS Neighbor ON Neighbor.Node = IncomingEdges.src
  GROUP BY wcc.Node
  UNTIL {max_rounds} ITERATIONS)
SELECT Node, Component FROM wcc ORDER BY Node"
    )
}

/// The symmetrized edge view WCC needs (labels flow both directions).
pub const BOTH_EDGES_DDL: &str = "CREATE VIEW both_edges AS \
  SELECT src, dst, weight FROM edges UNION ALL SELECT dst AS src, src AS dst, weight FROM edges";

/// A HITS-flavored authority/hub iteration (the paper's §II-B lists HITS
/// among the algorithms recursive CTEs cannot express). Deliberately uses
/// *two* aggregated columns, which is outside SQLoop's parallelizable class
/// — it exercises the automatic fallback to the single-threaded executor
/// (paper §V-A: unsupported queries use the baseline method).
pub fn hits_like(iterations: u64) -> String {
    format!(
        "\
WITH ITERATIVE hits(Node, Auth, Hub) AS (
  SELECT src, 1.0, 1.0
  FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT hits.Node, COALESCE(a.s, 0.0), COALESCE(h.s, 0.0)
  FROM hits
  LEFT JOIN (SELECT ie.dst AS n, SUM(inn.Hub) AS s
             FROM edges AS ie JOIN hits AS inn ON inn.Node = ie.src
             GROUP BY ie.dst) AS a ON hits.Node = a.n
  LEFT JOIN (SELECT oe.src AS n, SUM(outn.Auth) AS s
             FROM edges AS oe JOIN hits AS outn ON outn.Node = oe.dst
             GROUP BY oe.src) AS h ON hits.Node = h.n
  UNTIL {iterations} ITERATIONS)
SELECT Node, Auth, Hub FROM hits ORDER BY Auth DESC, Node LIMIT 20"
    )
}

/// In-degree counting via `COUNT` — exercises the COUNT accumulation
/// correction of paper §V-D (partial counts must be summed, not re-counted).
pub fn indegree_count() -> String {
    "\
WITH ITERATIVE deg(Node, Total, Delta) AS (
  SELECT src, 0.0, 1.0
  FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT deg.Node, deg.Delta, COALESCE(COUNT(s.Node), 0.0)
  FROM deg
  LEFT JOIN edges AS e ON deg.Node = e.dst
  LEFT JOIN deg AS s ON s.Node = e.src
  GROUP BY deg.Node
  UNTIL 2 ITERATIONS)
SELECT Node, Total FROM deg ORDER BY Node"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqloop::{parse, SqloopQuery, Termination};

    #[test]
    fn all_builders_parse() {
        for q in [
            pagerank(100),
            pagerank_until_converged(0.001),
            sssp(1, 100),
            sssp_all(1),
            descendant_query(0, 10),
            hits_like(4),
            descendant_clicks(0, 99),
            connected_components(50),
            indegree_count(),
        ] {
            match parse(&q).unwrap_or_else(|e| panic!("{e}\n{q}")) {
                SqloopQuery::Iterative(_) => {}
                other => panic!("expected iterative: {other:?}"),
            }
        }
    }

    #[test]
    fn terminations_match_the_paper() {
        let pr = parse(&pagerank(100)).unwrap();
        if let SqloopQuery::Iterative(c) = pr {
            assert_eq!(c.termination, Termination::Iterations(100));
        }
        let ss = parse(&sssp(1, 100)).unwrap();
        if let SqloopQuery::Iterative(c) = ss {
            assert_eq!(c.termination, Termination::Updates(0));
        }
        let dq = parse(&descendant_clicks(0, 9)).unwrap();
        if let SqloopQuery::Iterative(c) = dq {
            assert_eq!(c.termination, Termination::Updates(0));
        }
    }

    #[test]
    fn sssp_all_rewrites_only_the_final_query() {
        let q = sssp_all(3);
        assert!(q.contains("UNTIL 0 UPDATES"));
        assert!(q.ends_with("ORDER BY Node"));
        assert!(q.contains("WHEN src = 3"));
    }
}
