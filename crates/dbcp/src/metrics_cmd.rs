//! Server-side evaluation of [`MetricsCmd`] requests.
//!
//! Shared by the TCP server and the in-process [`LocalConnection`]
//! (crate::LocalConnection) so both transports answer a metrics command
//! identically: read commands come back as ordinary result sets, setters
//! as `Done`. The Prometheus dump stitches the process-wide
//! [`obs::MetricsRegistry`] together with the engine's statement-digest
//! table and slow-log state, giving one scrape endpoint for the whole
//! stack.

use crate::wire::MetricsCmd;
use sqldb::{Database, DigestEntry, QueryResult, SlowStatement, StmtOutput, Value};
use std::fmt::Write as _;

/// Digest families embedded as labelled series in the Prometheus dump.
/// Keeps the scrape payload bounded no matter how many statement families
/// the engine has seen; the full table stays reachable via
/// [`MetricsCmd::DigestTop`].
pub const PROMETHEUS_DIGEST_TOP_K: usize = 10;

/// Evaluates one metrics command against `db`. Read commands return
/// [`StmtOutput::Rows`]; setters return [`StmtOutput::Done`]. Infallible:
/// every command is answerable from in-memory state.
pub(crate) fn eval_metrics_cmd(db: &Database, cmd: &MetricsCmd) -> StmtOutput {
    match cmd {
        MetricsCmd::Prometheus => StmtOutput::Rows(QueryResult {
            columns: vec!["metrics".to_string()],
            rows: vec![vec![Value::Text(prometheus_dump(db))]],
        }),
        MetricsCmd::DigestTop(k) => digest_rows(db.digest_stats(), *k as usize),
        MetricsCmd::DigestTopMisses(k) => {
            digest_rows(db.digest_top_misses(*k as usize), *k as usize)
        }
        MetricsCmd::SlowLog => slow_rows(db.slow_log()),
        MetricsCmd::SetProfiling(on) => {
            db.set_profiling(*on);
            StmtOutput::Done
        }
        MetricsCmd::SetSlowLog {
            threshold_us,
            sample_every,
        } => {
            db.set_slow_log(*threshold_us, *sample_every);
            StmtOutput::Done
        }
        MetricsCmd::ResetStats => {
            db.reset_digests();
            db.reset_slow_log();
            StmtOutput::Done
        }
    }
}

/// Column order of the result sets [`MetricsCmd::DigestTop`] and
/// [`MetricsCmd::DigestTopMisses`] return.
pub const DIGEST_COLUMNS: [&str; 10] = [
    "digest",
    "calls",
    "errors",
    "total_us",
    "mean_us",
    "max_us",
    "rows",
    "plan_hits",
    "plan_misses",
    "sample",
];

/// Column order of the result set [`MetricsCmd::SlowLog`] returns.
pub const SLOW_LOG_COLUMNS: [&str; 4] = ["seq", "sql", "elapsed_us", "rows"];

fn int(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn digest_rows(entries: Vec<DigestEntry>, k: usize) -> StmtOutput {
    let rows = entries
        .into_iter()
        .take(k)
        .map(|e| {
            vec![
                Value::Text(e.digest.clone()),
                int(e.calls),
                int(e.errors),
                int(e.total_us),
                int(e.mean_us()),
                int(e.max_us),
                int(e.rows),
                int(e.plan_hits),
                int(e.plan_misses),
                Value::Text(e.sample),
            ]
        })
        .collect();
    StmtOutput::Rows(QueryResult {
        columns: DIGEST_COLUMNS.iter().map(|c| (*c).to_string()).collect(),
        rows,
    })
}

fn slow_rows(entries: Vec<SlowStatement>) -> StmtOutput {
    let rows = entries
        .into_iter()
        .map(|s| {
            vec![
                int(s.seq),
                Value::Text(s.sql),
                int(s.elapsed_us),
                int(s.rows),
            ]
        })
        .collect();
    StmtOutput::Rows(QueryResult {
        columns: SLOW_LOG_COLUMNS.iter().map(|c| (*c).to_string()).collect(),
        rows,
    })
}

/// Renders the full Prometheus text scrape for `db`: every series of the
/// process-wide [`obs::MetricsRegistry`], then the top
/// [`PROMETHEUS_DIGEST_TOP_K`] statement digests as labelled counter
/// series, then slow-log gauges. The output passes
/// [`obs::validate_prometheus_text`] — metric names are legal, digests are
/// label-escaped, and no series repeats.
pub fn prometheus_dump(db: &Database) -> String {
    let mut out = obs::prometheus_text(&obs::global().snapshot());
    let all = db.digest_stats();
    let families = all.len();
    let top: Vec<DigestEntry> = all.into_iter().take(PROMETHEUS_DIGEST_TOP_K).collect();
    // one TYPE line per family, then all of that family's digest series
    type Field = fn(&DigestEntry) -> u64;
    let series: [(&str, Field); 6] = [
        ("calls", |e| e.calls),
        ("errors", |e| e.errors),
        ("time_us", |e| e.total_us),
        ("rows", |e| e.rows),
        ("plan_hits", |e| e.plan_hits),
        ("plan_misses", |e| e.plan_misses),
    ];
    for (name, get) in series {
        if top.is_empty() {
            break;
        }
        let _ = writeln!(out, "# TYPE sqldb_digest_{name}_total counter");
        for e in &top {
            let _ = writeln!(
                out,
                "sqldb_digest_{name}_total{{digest=\"{}\"}} {}",
                obs::prometheus_label_escape(&e.digest),
                get(e)
            );
        }
    }
    let _ = writeln!(out, "# TYPE sqldb_digest_families gauge");
    let _ = writeln!(out, "sqldb_digest_families {families}");
    let (threshold_us, _) = db.slow_log_config();
    let _ = writeln!(out, "# TYPE sqldb_slow_log_threshold_us gauge");
    let _ = writeln!(out, "sqldb_slow_log_threshold_us {threshold_us}");
    let _ = writeln!(out, "# TYPE sqldb_slow_log_over_threshold_total counter");
    let _ = writeln!(
        out,
        "sqldb_slow_log_over_threshold_total {}",
        db.slow_log_over_threshold()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqldb::EngineProfile;

    fn db_with_traffic() -> Database {
        let db = Database::new(EngineProfile::Postgres);
        let mut s = db.connect();
        s.execute("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
            .unwrap();
        s.execute("INSERT INTO t VALUES (1, 1.0), (2, 2.0)")
            .unwrap();
        for id in [1, 2, 1] {
            s.execute(&format!("SELECT v FROM t WHERE id = {id}"))
                .unwrap();
        }
        db
    }

    #[test]
    fn prometheus_dump_validates_with_digest_series() {
        let db = db_with_traffic();
        let text = prometheus_dump(&db);
        obs::validate_prometheus_text(&text).unwrap();
        assert!(
            text.contains("sqldb_digest_calls_total{digest=\"select v from t where id = ?\"} 3"),
            "{text}"
        );
        assert!(text.contains("sqldb_digest_families"), "{text}");
        assert!(text.contains("sqldb_slow_log_threshold_us 0"), "{text}");
    }

    #[test]
    fn prometheus_dump_carries_vectorized_exec_series() {
        let db = db_with_traffic();
        let mut s = db.connect();
        s.execute("SELECT v FROM t WHERE v > 0.5").unwrap();
        let text = prometheus_dump(&db);
        obs::validate_prometheus_text(&text).unwrap();
        // the registry is process-wide, so only presence (not exact counts)
        // is assertable here
        assert!(text.contains("sqloop_exec_batches_total"), "{text}");
        assert!(text.contains("sqloop_exec_rows_per_batch"), "{text}");
        assert!(text.contains("sqloop_exec_kernel_vector_total"), "{text}");
    }

    #[test]
    fn digest_label_with_quotes_stays_valid() {
        let db = Database::new(EngineProfile::Postgres);
        let mut s = db.connect();
        s.execute("CREATE TABLE \"q t\" (a INT)").unwrap();
        let _ = s.execute("SELECT a FROM \"q t\"");
        let text = prometheus_dump(&db);
        obs::validate_prometheus_text(&text).unwrap();
    }

    #[test]
    fn digest_top_rows_carry_the_schema() {
        let db = db_with_traffic();
        let out = eval_metrics_cmd(&db, &MetricsCmd::DigestTop(32));
        let StmtOutput::Rows(r) = out else {
            panic!("expected rows");
        };
        assert_eq!(r.columns, DIGEST_COLUMNS.to_vec());
        let family = r
            .rows
            .iter()
            .find(|row| row[0] == Value::Text("select v from t where id = ?".into()))
            .expect("select family present");
        assert_eq!(family[1], Value::Int(3)); // calls
        assert_eq!(family[8], Value::Int(2)); // plan_misses: distinct texts
    }

    #[test]
    fn setters_answer_done_and_take_effect() {
        let db = db_with_traffic();
        assert_eq!(
            eval_metrics_cmd(&db, &MetricsCmd::SetProfiling(true)),
            StmtOutput::Done
        );
        assert!(db.profiling());
        assert_eq!(
            eval_metrics_cmd(
                &db,
                &MetricsCmd::SetSlowLog {
                    threshold_us: 5,
                    sample_every: 2
                }
            ),
            StmtOutput::Done
        );
        assert_eq!(db.slow_log_config(), (5, 2));
        assert_eq!(
            eval_metrics_cmd(&db, &MetricsCmd::ResetStats),
            StmtOutput::Done
        );
        assert!(db.digest_stats().is_empty());
    }

    #[test]
    fn slow_log_rows_carry_the_schema() {
        let db = db_with_traffic();
        db.set_slow_log(1, 1); // 1 µs: everything qualifies
        let mut s = db.connect();
        s.execute("SELECT COUNT(*) FROM t").unwrap();
        let StmtOutput::Rows(r) = eval_metrics_cmd(&db, &MetricsCmd::SlowLog) else {
            panic!("expected rows");
        };
        assert_eq!(r.columns, SLOW_LOG_COLUMNS.to_vec());
        assert!(!r.rows.is_empty());
        assert!(matches!(&r.rows[0][1], Value::Text(t) if t.contains("COUNT")));
    }
}
