//! Error type shared by every layer of the engine.

use std::fmt;

/// Errors produced while parsing, planning or executing SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The SQL text could not be tokenized or parsed.
    Parse(String),
    /// A referenced catalog object (table, view, index, column) does not exist.
    NotFound(String),
    /// An object with the same name already exists.
    AlreadyExists(String),
    /// The statement is valid SQL but violates engine semantics
    /// (arity mismatch, duplicate primary key, type mismatch, ...).
    Invalid(String),
    /// Evaluation failed at runtime (division by zero, bad cast, ...).
    Eval(String),
    /// A lock could not be acquired before the deadlock-avoidance timeout.
    LockTimeout(String),
    /// The transaction was aborted and must be rolled back.
    TxnAborted(String),
    /// The engine profile does not support the requested feature
    /// (e.g. recursive CTEs on the MySQL 5.7 profile).
    Unsupported(String),
    /// A connectivity-layer failure (used by the `dbcp` crate).
    Connection(String),
    /// A memory or row-output budget was exhausted. Not retryable: the
    /// same statement against the same budget fails again.
    BudgetExceeded(String),
    /// The statement ran past its execution deadline.
    Timeout(String),
    /// The server is shedding load (admission control or statement
    /// high-water mark). Retryable: backing off and retrying is expected
    /// to succeed once in-flight work drains.
    Overloaded(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::NotFound(m) => write!(f, "not found: {m}"),
            DbError::AlreadyExists(m) => write!(f, "already exists: {m}"),
            DbError::Invalid(m) => write!(f, "invalid statement: {m}"),
            DbError::Eval(m) => write!(f, "evaluation error: {m}"),
            DbError::LockTimeout(m) => write!(f, "lock timeout: {m}"),
            DbError::TxnAborted(m) => write!(f, "transaction aborted: {m}"),
            DbError::Unsupported(m) => write!(f, "unsupported: {m}"),
            DbError::Connection(m) => write!(f, "connection error: {m}"),
            DbError::BudgetExceeded(m) => write!(f, "budget exceeded: {m}"),
            DbError::Timeout(m) => write!(f, "statement timeout: {m}"),
            DbError::Overloaded(m) => write!(f, "overloaded: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenient result alias used across the engine.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = DbError::NotFound("table t".into());
        assert_eq!(e.to_string(), "not found: table t");
        let e = DbError::Parse("unexpected token".into());
        assert!(e.to_string().starts_with("parse error"));
        let e = DbError::BudgetExceeded("memory limit 1024 bytes".into());
        assert_eq!(e.to_string(), "budget exceeded: memory limit 1024 bytes");
        let e = DbError::Timeout("deadline passed".into());
        assert!(e.to_string().starts_with("statement timeout"));
        let e = DbError::Overloaded("64 statements in flight".into());
        assert!(e.to_string().starts_with("overloaded"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DbError>();
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(DbError::Eval("division by zero".into()));
        assert!(e.to_string().contains("division by zero"));
    }
}
