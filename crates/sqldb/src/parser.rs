//! Recursive-descent SQL parser.
//!
//! The parser is intentionally reusable as a *component*: the `sqloop`
//! middleware drives it to parse the pieces (`R0`, `Ri`, `Qf`, termination
//! expressions) of its extended CTE grammar. For that reason sub-parses stop
//! gracefully at the first token they do not understand, leaving the cursor
//! in place; [`Parser::expect_eof`] enforces full consumption when a whole
//! statement is required.

use crate::ast::*;
use crate::error::{DbError, DbResult};
use crate::lexer::{tokenize, Sym, Token};
use crate::types::DataType;
use crate::value::Value;

/// Parses a single SQL statement (a trailing `;` is allowed).
///
/// # Errors
/// Returns [`DbError::Parse`] when the text is not a single valid statement.
///
/// # Examples
/// ```
/// let stmt = sqldb::parser::parse_statement("SELECT 1 + 1").unwrap();
/// assert!(matches!(stmt, sqldb::ast::Statement::Select(_)));
/// ```
pub fn parse_statement(sql: &str) -> DbResult<Statement> {
    let mut p = Parser::from_sql(sql)?;
    let stmt = p.parse_statement()?;
    p.skip_semicolons();
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses a `;`-separated script into statements (empty statements skipped).
///
/// # Errors
/// Returns [`DbError::Parse`] on the first malformed statement.
pub fn parse_script(sql: &str) -> DbResult<Vec<Statement>> {
    let mut p = Parser::from_sql(sql)?;
    let mut out = Vec::new();
    loop {
        p.skip_semicolons();
        if p.is_eof() {
            return Ok(out);
        }
        out.push(p.parse_statement()?);
    }
}

/// Parses a full query (`SELECT …` / `VALUES …` with optional set operators).
///
/// # Errors
/// Returns [`DbError::Parse`] when the text is not a valid query.
pub fn parse_query(sql: &str) -> DbResult<SelectStmt> {
    let mut p = Parser::from_sql(sql)?;
    let q = p.parse_query()?;
    p.skip_semicolons();
    p.expect_eof()?;
    Ok(q)
}

/// Parses a standalone scalar expression.
///
/// # Errors
/// Returns [`DbError::Parse`] when the text is not a valid expression.
pub fn parse_expression(sql: &str) -> DbResult<Expr> {
    let mut p = Parser::from_sql(sql)?;
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Token-stream parser with an explicit cursor.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// `?` placeholders seen so far; assigns each its 0-based index.
    params: usize,
}

impl Parser {
    /// Tokenizes `sql` and positions the cursor at the start.
    ///
    /// # Errors
    /// Returns [`DbError::Parse`] when tokenization fails.
    pub fn from_sql(sql: &str) -> DbResult<Parser> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
            params: 0,
        })
    }

    /// True when every token has been consumed.
    pub fn is_eof(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Fails unless the whole input was consumed.
    ///
    /// # Errors
    /// Returns [`DbError::Parse`] naming the dangling token.
    pub fn expect_eof(&self) -> DbResult<()> {
        if self.is_eof() {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "unexpected trailing input: {:?}",
                self.tokens[self.pos]
            )))
        }
    }

    /// Consumes any number of `;` tokens.
    pub fn skip_semicolons(&mut self) {
        while self.eat_sym(Sym::Semicolon) {}
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&Token> {
        self.tokens.get(self.pos + off)
    }

    fn next_token(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consumes the next token if it is the given keyword.
    pub fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.is_keyword(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// True when the next token is the given keyword (not consumed).
    pub fn peek_keyword(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_keyword(kw)).unwrap_or(false)
    }

    /// Consumes the next token, failing unless it is the given keyword.
    ///
    /// # Errors
    /// Returns [`DbError::Parse`] on mismatch.
    pub fn expect_keyword(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected {}, found {:?}",
                kw.to_uppercase(),
                self.peek()
            )))
        }
    }

    fn eat_sym(&mut self, sym: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_sym(&self, sym: Sym) -> bool {
        matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym)
    }

    fn expect_sym(&mut self, sym: Sym) -> DbResult<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected {sym:?}, found {:?}",
                self.peek()
            )))
        }
    }

    /// Consumes an identifier (quoted or not).
    ///
    /// # Errors
    /// Returns [`DbError::Parse`] when the next token is not an identifier.
    pub fn expect_ident(&mut self) -> DbResult<String> {
        match self.next_token() {
            Some(Token::Ident(s)) | Some(Token::QuotedIdent(s)) => Ok(s),
            other => Err(DbError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    // ------------------------------------------------------------------
    // Token helpers for embedding grammars (used by the SQLoop middleware)
    // ------------------------------------------------------------------

    /// Consumes a `,` if present.
    pub fn eat_symbol_comma(&mut self) -> bool {
        self.eat_sym(Sym::Comma)
    }

    /// Consumes a `(` if present.
    pub fn eat_symbol_lparen(&mut self) -> bool {
        self.eat_sym(Sym::LParen)
    }

    /// Consumes a `)` if present.
    pub fn eat_symbol_rparen(&mut self) -> bool {
        self.eat_sym(Sym::RParen)
    }

    /// Consumes a `<` if present.
    pub fn eat_symbol_lt(&mut self) -> bool {
        self.eat_sym(Sym::Lt)
    }

    /// Consumes a `=` if present.
    pub fn eat_symbol_eq(&mut self) -> bool {
        self.eat_sym(Sym::Eq)
    }

    /// Consumes a `>` if present.
    pub fn eat_symbol_gt(&mut self) -> bool {
        self.eat_sym(Sym::Gt)
    }

    /// True when the next tokens are `(` followed by an identifier that is
    /// not `SELECT`/`VALUES` — i.e. a column list, not a subquery. Consumes
    /// the `(` when it returns true.
    pub fn peek_lparen_ident(&mut self) -> bool {
        if !self.peek_sym(Sym::LParen) {
            return false;
        }
        match self.peek_at(1) {
            Some(t) if t.ident_text().is_some() => {
                if t.is_keyword("select") || t.is_keyword("values") {
                    false
                } else {
                    self.pos += 1;
                    true
                }
            }
            _ => false,
        }
    }

    /// Consumes a non-negative integer literal if present.
    pub fn eat_integer_token(&mut self) -> Option<u64> {
        match self.peek() {
            Some(Token::Int(n)) if *n >= 0 => {
                let n = *n as u64;
                self.pos += 1;
                Some(n)
            }
            _ => None,
        }
    }

    /// Consumes a literal value (number, string, boolean, NULL, Infinity)
    /// with optional leading minus, if present.
    pub fn eat_literal_token(&mut self) -> Option<Value> {
        let neg = matches!(self.peek(), Some(Token::Symbol(Sym::Minus)));
        let off = usize::from(neg);
        let v = match self.peek_at(off) {
            Some(Token::Int(n)) => Value::Int(*n),
            Some(Token::Float(f)) => Value::Float(*f),
            Some(Token::Str(s)) if !neg => Value::Text(s.clone()),
            Some(Token::Ident(w)) if !neg => match w.as_str() {
                "null" => Value::Null,
                "true" => Value::Bool(true),
                "false" => Value::Bool(false),
                "infinity" => Value::Float(f64::INFINITY),
                _ => return None,
            },
            Some(Token::Ident(w)) if neg && w == "infinity" => Value::Float(f64::INFINITY),
            _ => return None,
        };
        self.pos += off + 1;
        if neg {
            Some(v.neg().expect("numeric literal"))
        } else {
            Some(v)
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    /// Parses one statement, leaving the cursor after it.
    ///
    /// # Errors
    /// Returns [`DbError::Parse`] on malformed input.
    pub fn parse_statement(&mut self) -> DbResult<Statement> {
        if self.eat_keyword("explain") {
            let analyze = self.eat_keyword("analyze");
            let inner = self.parse_statement()?;
            return Ok(Statement::Explain {
                analyze,
                stmt: Box::new(inner),
            });
        }
        if self.peek_keyword("create") {
            return self.parse_create();
        }
        if self.peek_keyword("drop") {
            return self.parse_drop();
        }
        if self.eat_keyword("truncate") {
            self.eat_keyword("table");
            let name = self.expect_ident()?;
            return Ok(Statement::Truncate { name });
        }
        if self.eat_keyword("insert") {
            return self.parse_insert();
        }
        if self.eat_keyword("update") {
            return self.parse_update();
        }
        if self.eat_keyword("delete") {
            self.expect_keyword("from")?;
            let table = self.expect_ident()?;
            let selection = if self.eat_keyword("where") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, selection });
        }
        if self.eat_keyword("begin") {
            self.eat_keyword("transaction");
            self.eat_keyword("work");
            return Ok(Statement::Begin);
        }
        if self.eat_keyword("start") {
            self.expect_keyword("transaction")?;
            return Ok(Statement::Begin);
        }
        if self.eat_keyword("commit") {
            return Ok(Statement::Commit);
        }
        if self.eat_keyword("rollback") {
            return Ok(Statement::Rollback);
        }
        if self.peek_keyword("select") || self.peek_keyword("values") || self.peek_sym(Sym::LParen)
        {
            return Ok(Statement::Select(self.parse_query()?));
        }
        Err(DbError::Parse(format!(
            "unrecognized statement start: {:?}",
            self.peek()
        )))
    }

    fn parse_create(&mut self) -> DbResult<Statement> {
        self.expect_keyword("create")?;
        let unique = self.eat_keyword("unique");
        if self.eat_keyword("index") {
            let if_not_exists = self.eat_if_not_exists();
            let name = self.expect_ident()?;
            self.expect_keyword("on")?;
            let table = self.expect_ident()?;
            self.expect_sym(Sym::LParen)?;
            let column = self.expect_ident()?;
            self.expect_sym(Sym::RParen)?;
            return Ok(Statement::CreateIndex(CreateIndex {
                name,
                table,
                column,
                unique,
                if_not_exists,
            }));
        }
        if unique {
            return Err(DbError::Parse("UNIQUE only valid for CREATE INDEX".into()));
        }
        let or_replace = if self.eat_keyword("or") {
            self.expect_keyword("replace")?;
            true
        } else {
            false
        };
        if self.eat_keyword("view") {
            let name = self.expect_ident()?;
            self.expect_keyword("as")?;
            let query = Box::new(self.parse_query()?);
            return Ok(Statement::CreateView(CreateView {
                name,
                query,
                or_replace,
            }));
        }
        if or_replace {
            return Err(DbError::Parse(
                "OR REPLACE only valid for CREATE VIEW".into(),
            ));
        }
        let unlogged = self.eat_keyword("unlogged");
        self.eat_keyword("temporary");
        self.eat_keyword("temp");
        self.expect_keyword("table")?;
        let if_not_exists = self.eat_if_not_exists();
        let name = self.expect_ident()?;
        if self.eat_keyword("as") {
            let q = Box::new(self.parse_query()?);
            return Ok(Statement::CreateTable(CreateTable {
                name,
                columns: Vec::new(),
                if_not_exists,
                as_select: Some(q),
                unlogged,
            }));
        }
        self.expect_sym(Sym::LParen)?;
        let mut columns: Vec<ColumnDef> = Vec::new();
        let mut table_pk: Option<String> = None;
        loop {
            if self.eat_keyword("primary") {
                self.expect_keyword("key")?;
                self.expect_sym(Sym::LParen)?;
                table_pk = Some(self.expect_ident()?);
                self.expect_sym(Sym::RParen)?;
            } else {
                let col_name = self.expect_ident()?;
                let data_type = self.parse_data_type()?;
                let mut primary_key = false;
                loop {
                    if self.eat_keyword("primary") {
                        self.expect_keyword("key")?;
                        primary_key = true;
                    } else if self.eat_keyword("not") {
                        self.expect_keyword("null")?;
                    } else if self.eat_keyword("null") {
                        // nullable (default)
                    } else {
                        break;
                    }
                }
                columns.push(ColumnDef {
                    name: col_name,
                    data_type,
                    primary_key,
                });
            }
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_sym(Sym::RParen)?;
        // MySQL table options: ENGINE = MyISAM etc. — accepted and ignored.
        while self.peek_keyword("engine") || self.peek_keyword("charset") {
            self.pos += 1;
            self.eat_sym(Sym::Eq);
            let _ = self.expect_ident()?;
        }
        if let Some(pk) = table_pk {
            for c in &mut columns {
                if c.name == pk {
                    c.primary_key = true;
                }
            }
        }
        Ok(Statement::CreateTable(CreateTable {
            name,
            columns,
            if_not_exists,
            as_select: None,
            unlogged,
        }))
    }

    fn eat_if_not_exists(&mut self) -> bool {
        if self.peek_keyword("if") {
            self.pos += 1;
            let _ = self.eat_keyword("not");
            let _ = self.eat_keyword("exists");
            true
        } else {
            false
        }
    }

    fn parse_data_type(&mut self) -> DbResult<DataType> {
        let name = self.expect_ident()?;
        // `DOUBLE PRECISION`
        if name == "double" {
            self.eat_keyword("precision");
        }
        let dt = DataType::parse(&name)
            .ok_or_else(|| DbError::Parse(format!("unknown type '{name}'")))?;
        // length arguments: VARCHAR(255), NUMERIC(10, 2) — parsed, ignored
        if self.eat_sym(Sym::LParen) {
            while !self.eat_sym(Sym::RParen) {
                if self.next_token().is_none() {
                    return Err(DbError::Parse("unterminated type arguments".into()));
                }
            }
        }
        Ok(dt)
    }

    fn parse_drop(&mut self) -> DbResult<Statement> {
        self.expect_keyword("drop")?;
        let kind = self.expect_ident()?;
        let if_exists = if self.eat_keyword("if") {
            self.expect_keyword("exists")?;
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        match kind.as_str() {
            "table" => Ok(Statement::DropTable { name, if_exists }),
            "view" => Ok(Statement::DropView { name, if_exists }),
            "index" => Ok(Statement::DropIndex { name, if_exists }),
            other => Err(DbError::Parse(format!("cannot DROP {other}"))),
        }
    }

    fn parse_insert(&mut self) -> DbResult<Statement> {
        self.expect_keyword("into")?;
        let table = self.expect_ident()?;
        let columns = if self.peek_sym(Sym::LParen)
            && !matches!(self.peek_at(1), Some(t) if t.is_keyword("select") || t.is_keyword("values"))
        {
            self.expect_sym(Sym::LParen)?;
            let mut cols = vec![self.expect_ident()?];
            while self.eat_sym(Sym::Comma) {
                cols.push(self.expect_ident()?);
            }
            self.expect_sym(Sym::RParen)?;
            Some(cols)
        } else {
            None
        };
        let source = if self.peek_keyword("values") {
            self.pos += 1;
            InsertSource::Values(self.parse_values_rows()?)
        } else {
            InsertSource::Select(Box::new(self.parse_query()?))
        };
        Ok(Statement::Insert(Insert {
            table,
            columns,
            source,
        }))
    }

    fn parse_values_rows(&mut self) -> DbResult<Vec<Vec<Expr>>> {
        let mut rows = Vec::new();
        loop {
            self.expect_sym(Sym::LParen)?;
            let mut row = vec![self.parse_expr()?];
            while self.eat_sym(Sym::Comma) {
                row.push(self.parse_expr()?);
            }
            self.expect_sym(Sym::RParen)?;
            rows.push(row);
            if !self.eat_sym(Sym::Comma) {
                return Ok(rows);
            }
        }
    }

    fn parse_update(&mut self) -> DbResult<Statement> {
        let table = self.expect_ident()?;
        let alias = if self.eat_keyword("as")
            || matches!(self.peek(), Some(Token::Ident(s)) if !is_reserved_after_table(s))
        {
            Some(self.expect_ident()?)
        } else {
            None
        };
        // MySQL form: UPDATE t [alias] JOIN f ON cond SET ...
        let mut from = Vec::new();
        let mut join_on = None;
        if self.eat_keyword("join") || {
            if self.peek_keyword("inner")
                && self
                    .peek_at(1)
                    .map(|t| t.is_keyword("join"))
                    .unwrap_or(false)
            {
                self.pos += 2;
                true
            } else {
                false
            }
        } {
            let factor = self.parse_table_factor()?;
            self.expect_keyword("on")?;
            join_on = Some(self.parse_expr()?);
            from.push(TableRef {
                base: factor,
                joins: Vec::new(),
            });
        }
        self.expect_keyword("set")?;
        let mut assignments = Vec::new();
        loop {
            // allow optional target qualifier: SET t.col = …
            let first = self.expect_ident()?;
            let col = if self.eat_sym(Sym::Dot) {
                self.expect_ident()?
            } else {
                first
            };
            self.expect_sym(Sym::Eq)?;
            let e = self.parse_expr()?;
            assignments.push((col, e));
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        // PostgreSQL form: ... FROM table_refs
        if self.eat_keyword("from") {
            loop {
                from.push(self.parse_table_ref()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let selection = if self.eat_keyword("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            alias,
            assignments,
            from,
            join_on,
            selection,
        }))
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Parses a query, stopping gracefully at the first token that cannot
    /// continue it (so it can be embedded in larger grammars).
    ///
    /// # Errors
    /// Returns [`DbError::Parse`] on malformed input.
    pub fn parse_query(&mut self) -> DbResult<SelectStmt> {
        let mut body = self.parse_set_term()?;
        loop {
            if self.peek_keyword("union") {
                self.pos += 1;
                let op = if self.eat_keyword("all") {
                    SetOperator::UnionAll
                } else {
                    SetOperator::Union
                };
                let right = self.parse_set_term()?;
                body = SetExpr::SetOp {
                    op,
                    left: Box::new(body),
                    right: Box::new(right),
                };
            } else {
                break;
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let expr = self.parse_expr()?;
                let asc = if self.eat_keyword("desc") {
                    false
                } else {
                    self.eat_keyword("asc");
                    true
                };
                order_by.push(OrderByExpr { expr, asc });
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("limit") {
            match self.next_token() {
                Some(Token::Int(n)) if n >= 0 => Some(n as u64),
                other => {
                    return Err(DbError::Parse(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            body,
            order_by,
            limit,
        })
    }

    fn parse_set_term(&mut self) -> DbResult<SetExpr> {
        if self.eat_keyword("values") {
            return Ok(SetExpr::Values(self.parse_values_rows()?));
        }
        if self.peek_sym(Sym::LParen) {
            // parenthesized query as a set term
            self.expect_sym(Sym::LParen)?;
            let q = self.parse_query()?;
            self.expect_sym(Sym::RParen)?;
            // flatten: a parenthesized query without order/limit is just its body
            if q.order_by.is_empty() && q.limit.is_none() {
                return Ok(q.body);
            }
            // keep ordering/limit by wrapping as derived select
            return Ok(SetExpr::Select(Box::new(Select {
                distinct: false,
                projections: vec![SelectItem::Wildcard],
                from: vec![TableRef {
                    base: TableFactor::Derived {
                        subquery: Box::new(q),
                        alias: "__sub".into(),
                    },
                    joins: Vec::new(),
                }],
                selection: None,
                group_by: Vec::new(),
                having: None,
            })));
        }
        self.expect_keyword("select")?;
        let distinct = self.eat_keyword("distinct");
        self.eat_keyword("all");
        let mut projections = Vec::new();
        loop {
            projections.push(self.parse_select_item()?);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_keyword("from") {
            loop {
                from.push(self.parse_table_ref()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let selection = if self.eat_keyword("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_keyword("having") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(SetExpr::Select(Box::new(Select {
            distinct,
            projections,
            from,
            selection,
            group_by,
            having,
        })))
    }

    fn parse_select_item(&mut self) -> DbResult<SelectItem> {
        if self.eat_sym(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.*
        if let (
            Some(Token::Ident(t)),
            Some(Token::Symbol(Sym::Dot)),
            Some(Token::Symbol(Sym::Star)),
        ) = (self.peek(), self.peek_at(1), self.peek_at(2))
        {
            let t = t.clone();
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(t));
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword("as")
            || matches!(self.peek(), Some(Token::Ident(s)) if !is_reserved_projection_follower(s))
        {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    /// Parses one `FROM` item with its chain of joins.
    ///
    /// # Errors
    /// Returns [`DbError::Parse`] on malformed input.
    pub fn parse_table_ref(&mut self) -> DbResult<TableRef> {
        let base = self.parse_table_factor()?;
        let mut joins = Vec::new();
        loop {
            let join_type = if self.peek_keyword("join") || self.peek_keyword("inner") {
                self.eat_keyword("inner");
                self.expect_keyword("join")?;
                JoinType::Inner
            } else if self.peek_keyword("left") {
                self.pos += 1;
                self.eat_keyword("outer");
                self.expect_keyword("join")?;
                JoinType::Left
            } else if self.peek_keyword("cross") {
                self.pos += 1;
                self.expect_keyword("join")?;
                JoinType::Cross
            } else {
                break;
            };
            let factor = self.parse_table_factor()?;
            let on = if join_type != JoinType::Cross {
                self.expect_keyword("on")?;
                Some(self.parse_expr()?)
            } else {
                None
            };
            joins.push(Join {
                join_type,
                factor,
                on,
            });
        }
        Ok(TableRef { base, joins })
    }

    fn parse_table_factor(&mut self) -> DbResult<TableFactor> {
        if self.eat_sym(Sym::LParen) {
            let subquery = Box::new(self.parse_query()?);
            self.expect_sym(Sym::RParen)?;
            self.eat_keyword("as");
            let alias = self.expect_ident()?;
            return Ok(TableFactor::Derived { subquery, alias });
        }
        let name = self.expect_ident()?;
        let alias = if self.eat_keyword("as")
            || matches!(self.peek(), Some(Token::Ident(s)) if !is_reserved_after_table(s))
        {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(TableFactor::Table { name, alias })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    /// Parses a scalar expression.
    ///
    /// # Errors
    /// Returns [`DbError::Parse`] on malformed input.
    pub fn parse_expr(&mut self) -> DbResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> DbResult<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("or") {
            let right = self.parse_and()?;
            left = left.binary(BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> DbResult<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("and") {
            let right = self.parse_not()?;
            left = left.binary(BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> DbResult<Expr> {
        if self.eat_keyword("not") {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> DbResult<Expr> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.eat_keyword("is") {
            let negated = self.eat_keyword("not");
            self.expect_keyword("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN / [NOT] BETWEEN
        let negated = if self.peek_keyword("not")
            && matches!(self.peek_at(1), Some(t) if t.is_keyword("in") || t.is_keyword("between"))
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_keyword("in") {
            self.expect_sym(Sym::LParen)?;
            let mut list = vec![self.parse_expr()?];
            while self.eat_sym(Sym::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect_sym(Sym::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("between") {
            let low = self.parse_additive()?;
            self.expect_keyword("and")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(DbError::Parse("dangling NOT".into()));
        }
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(BinaryOp::Eq),
            Some(Token::Symbol(Sym::NotEq)) => Some(BinaryOp::NotEq),
            Some(Token::Symbol(Sym::Lt)) => Some(BinaryOp::Lt),
            Some(Token::Symbol(Sym::LtEq)) => Some(BinaryOp::LtEq),
            Some(Token::Symbol(Sym::Gt)) => Some(BinaryOp::Gt),
            Some(Token::Symbol(Sym::GtEq)) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(left.binary(op, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> DbResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Plus)) => BinaryOp::Add,
                Some(Token::Symbol(Sym::Minus)) => BinaryOp::Sub,
                Some(Token::Symbol(Sym::Concat)) => BinaryOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = left.binary(op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> DbResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Star)) => BinaryOp::Mul,
                Some(Token::Symbol(Sym::Slash)) => BinaryOp::Div,
                Some(Token::Symbol(Sym::Percent)) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = left.binary(op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> DbResult<Expr> {
        if self.eat_sym(Sym::Minus) {
            let inner = self.parse_unary()?;
            // fold numeric literals so `-5` parses as a literal, keeping
            // rendered SQL round-trippable
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) if i != i64::MIN => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat_sym(Sym::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> DbResult<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(v)))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(v)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Text(s)))
            }
            Some(Token::Symbol(Sym::LParen)) => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Symbol(Sym::Question)) => {
                self.pos += 1;
                let idx = self.params;
                self.params += 1;
                Ok(Expr::Param(idx))
            }
            Some(Token::Ident(word)) => self.parse_ident_expr(word),
            Some(Token::QuotedIdent(word)) => {
                self.pos += 1;
                self.finish_column_ref(word)
            }
            other => Err(DbError::Parse(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }

    fn parse_ident_expr(&mut self, word: String) -> DbResult<Expr> {
        // keyword literals
        match word.as_str() {
            "null" => {
                self.pos += 1;
                return Ok(Expr::Literal(Value::Null));
            }
            "true" => {
                self.pos += 1;
                return Ok(Expr::Literal(Value::Bool(true)));
            }
            "false" => {
                self.pos += 1;
                return Ok(Expr::Literal(Value::Bool(false)));
            }
            "infinity" => {
                self.pos += 1;
                return Ok(Expr::Literal(Value::Float(f64::INFINITY)));
            }
            "case" => {
                self.pos += 1;
                return self.parse_case();
            }
            "cast" => {
                self.pos += 1;
                self.expect_sym(Sym::LParen)?;
                let e = self.parse_expr()?;
                self.expect_keyword("as")?;
                let dt = self.parse_data_type()?;
                self.expect_sym(Sym::RParen)?;
                return Ok(Expr::Cast {
                    expr: Box::new(e),
                    data_type: dt,
                });
            }
            _ => {}
        }
        // function call?
        if matches!(self.peek_at(1), Some(Token::Symbol(Sym::LParen))) {
            self.pos += 2; // ident + lparen
            let mut args = Vec::new();
            // COUNT(*)
            if self.eat_sym(Sym::Star) {
                args.push(FunctionArg::Wildcard);
            } else if !self.peek_sym(Sym::RParen) {
                self.eat_keyword("distinct"); // accepted, treated as plain
                loop {
                    args.push(FunctionArg::Expr(self.parse_expr()?));
                    if !self.eat_sym(Sym::Comma) {
                        break;
                    }
                }
            }
            self.expect_sym(Sym::RParen)?;
            return Ok(Expr::Function { name: word, args });
        }
        self.pos += 1;
        self.finish_column_ref(word)
    }

    fn finish_column_ref(&mut self, first: String) -> DbResult<Expr> {
        if self.eat_sym(Sym::Dot) {
            let col = self.expect_ident()?;
            Ok(Expr::Column {
                table: Some(first),
                name: col,
            })
        } else {
            Ok(Expr::Column {
                table: None,
                name: first,
            })
        }
    }

    fn parse_case(&mut self) -> DbResult<Expr> {
        let mut branches = Vec::new();
        while self.eat_keyword("when") {
            let cond = self.parse_expr()?;
            self.expect_keyword("then")?;
            let result = self.parse_expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(DbError::Parse("CASE requires at least one WHEN".into()));
        }
        let else_result = if self.eat_keyword("else") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword("end")?;
        Ok(Expr::Case {
            branches,
            else_result,
        })
    }
}

/// Keywords that may directly follow a table name and therefore must not be
/// mistaken for an implicit alias.
fn is_reserved_after_table(word: &str) -> bool {
    matches!(
        word,
        "join"
            | "inner"
            | "left"
            | "right"
            | "cross"
            | "outer"
            | "on"
            | "where"
            | "group"
            | "having"
            | "order"
            | "limit"
            | "union"
            | "set"
            | "as"
            | "using"
            | "from"
            | "iterate"
            | "until"
    )
}

/// Keywords that may directly follow a projection and therefore must not be
/// mistaken for an implicit alias.
fn is_reserved_projection_follower(word: &str) -> bool {
    matches!(
        word,
        "from" | "where" | "group" | "having" | "order" | "limit" | "union" | "iterate" | "until"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_select() {
        let q =
            parse_query("SELECT a, b AS bee FROM t WHERE a > 1 ORDER BY a DESC LIMIT 10").unwrap();
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].asc);
        match q.body {
            SetExpr::Select(s) => {
                assert_eq!(s.projections.len(), 2);
                assert!(s.selection.is_some());
            }
            _ => panic!("expected select"),
        }
    }

    #[test]
    fn parse_left_join_with_alias() {
        let q = parse_query(
            "SELECT pr.node FROM pr LEFT JOIN edges AS e ON pr.node = e.dst GROUP BY pr.node",
        )
        .unwrap();
        match q.body {
            SetExpr::Select(s) => {
                assert_eq!(s.from.len(), 1);
                assert_eq!(s.from[0].joins.len(), 1);
                assert_eq!(s.from[0].joins[0].join_type, JoinType::Left);
                assert_eq!(s.group_by.len(), 1);
            }
            _ => panic!("expected select"),
        }
    }

    #[test]
    fn parse_union_all_tree() {
        let q =
            parse_query("SELECT src FROM e UNION SELECT dst FROM e UNION ALL VALUES (1)").unwrap();
        match q.body {
            SetExpr::SetOp { op, left, .. } => {
                assert_eq!(op, SetOperator::UnionAll);
                assert!(matches!(
                    *left,
                    SetExpr::SetOp {
                        op: SetOperator::Union,
                        ..
                    }
                ));
            }
            _ => panic!("expected set op"),
        }
    }

    #[test]
    fn parse_derived_table() {
        let q = parse_query(
            "SELECT src FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges GROUP BY src",
        )
        .unwrap();
        match q.body {
            SetExpr::Select(s) => match &s.from[0].base {
                TableFactor::Derived { alias, .. } => assert_eq!(alias, "alledges"),
                _ => panic!("expected derived"),
            },
            _ => panic!("expected select"),
        }
    }

    #[test]
    fn parse_pagerank_iterative_body() {
        // the iterative part of the paper's Example 2
        let q = parse_query(
            "SELECT PageRank.Node, \
             COALESCE(PageRank.Rank + PageRank.Delta, 0.15), \
             COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0) \
             FROM PageRank \
             LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst \
             LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src \
             GROUP BY PageRank.Node",
        )
        .unwrap();
        match q.body {
            SetExpr::Select(s) => {
                assert_eq!(s.projections.len(), 3);
                assert_eq!(s.from[0].joins.len(), 2);
                let agg_item = &s.projections[2];
                if let SelectItem::Expr { expr, .. } = agg_item {
                    assert!(expr.contains_aggregate());
                } else {
                    panic!("expected expr");
                }
            }
            _ => panic!("expected select"),
        }
    }

    #[test]
    fn parse_case_when_and_least() {
        let e = parse_expression("CASE WHEN src = 1 THEN 0 ELSE Infinity END").unwrap();
        assert!(matches!(e, Expr::Case { .. }));
        let e = parse_expression("LEAST(a.distance, a.delta)").unwrap();
        assert!(matches!(e, Expr::Function { .. }));
    }

    #[test]
    fn parse_create_table_with_pk() {
        let s = parse_statement(
            "CREATE TABLE pagerank (node INT PRIMARY KEY, rank FLOAT, delta FLOAT)",
        )
        .unwrap();
        match s {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.columns.len(), 3);
                assert!(ct.columns[0].primary_key);
            }
            _ => panic!("expected create table"),
        }
    }

    #[test]
    fn parse_create_table_mysql_options() {
        let s = parse_statement("CREATE TABLE t (a INT) ENGINE = MyISAM").unwrap();
        assert!(matches!(s, Statement::CreateTable(_)));
    }

    #[test]
    fn parse_insert_forms() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert(i) => {
                assert_eq!(i.columns.as_ref().unwrap().len(), 2);
                assert!(matches!(i.source, InsertSource::Values(ref v) if v.len() == 2));
            }
            _ => panic!(),
        }
        let s = parse_statement("INSERT INTO t SELECT * FROM u").unwrap();
        assert!(matches!(
            s,
            Statement::Insert(Insert {
                source: InsertSource::Select(_),
                ..
            })
        ));
    }

    #[test]
    fn parse_update_postgres_form() {
        let s =
            parse_statement("UPDATE r SET delta = m.v FROM msg AS m WHERE r.id = m.id").unwrap();
        match s {
            Statement::Update(u) => {
                assert_eq!(u.table, "r");
                assert_eq!(u.from.len(), 1);
                assert!(u.join_on.is_none());
                assert!(u.selection.is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_update_mysql_form() {
        let s =
            parse_statement("UPDATE r JOIN msg ON r.id = msg.id SET delta = msg.v WHERE msg.v > 0")
                .unwrap();
        match s {
            Statement::Update(u) => {
                assert!(u.join_on.is_some());
                assert_eq!(u.from.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_values_as_query() {
        let q = parse_query("VALUES (0, 1), (2, 3)").unwrap();
        assert!(matches!(q.body, SetExpr::Values(ref v) if v.len() == 2));
    }

    #[test]
    fn parse_between_and_in() {
        let e = parse_expression("x BETWEEN 1 AND 10").unwrap();
        assert!(matches!(e, Expr::Between { negated: false, .. }));
        let e = parse_expression("x NOT IN (1, 2, 3)").unwrap();
        assert!(matches!(e, Expr::InList { negated: true, .. }));
    }

    #[test]
    fn parse_is_null() {
        let e = parse_expression("a.b IS NOT NULL").unwrap();
        assert!(matches!(e, Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn parse_script_multiple_statements() {
        let stmts =
            parse_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn implicit_alias_not_confused_with_keywords() {
        let q = parse_query("SELECT t.a FROM tbl t WHERE t.a = 1").unwrap();
        match q.body {
            SetExpr::Select(s) => match &s.from[0].base {
                TableFactor::Table { name, alias } => {
                    assert_eq!(name, "tbl");
                    assert_eq!(alias.as_deref(), Some("t"));
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_statement("SELECT 1 extra garbage !!!").is_err());
    }

    #[test]
    fn count_star() {
        let e = parse_expression("COUNT(*)").unwrap();
        match e {
            Expr::Function { name, args } => {
                assert_eq!(name, "count");
                assert_eq!(args, vec![FunctionArg::Wildcard]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn operator_precedence() {
        // 1 + 2 * 3 = 7, not 9
        let e = parse_expression("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary {
                op: BinaryOp::Add,
                right,
                ..
            } => {
                assert!(matches!(
                    *right,
                    Expr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            _ => panic!(),
        }
        // NOT binds tighter than AND
        let e = parse_expression("NOT a AND b").unwrap();
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn transaction_statements() {
        assert!(matches!(
            parse_statement("BEGIN").unwrap(),
            Statement::Begin
        ));
        assert!(matches!(
            parse_statement("START TRANSACTION").unwrap(),
            Statement::Begin
        ));
        assert!(matches!(
            parse_statement("COMMIT").unwrap(),
            Statement::Commit
        ));
        assert!(matches!(
            parse_statement("ROLLBACK").unwrap(),
            Statement::Rollback
        ));
    }

    #[test]
    fn create_index_and_drop() {
        let s = parse_statement("CREATE UNIQUE INDEX idx_t_a ON t (a)").unwrap();
        match s {
            Statement::CreateIndex(ci) => {
                assert!(ci.unique);
                assert_eq!(ci.table, "t");
                assert_eq!(ci.column, "a");
            }
            _ => panic!(),
        }
        assert!(matches!(
            parse_statement("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable {
                if_exists: true,
                ..
            }
        ));
    }

    #[test]
    fn parse_query_stops_at_unknown_keyword() {
        let mut p = Parser::from_sql("SELECT a FROM t ITERATE SELECT b FROM t").unwrap();
        let q = p.parse_query().unwrap();
        assert!(matches!(q.body, SetExpr::Select(_)));
        assert!(p.eat_keyword("iterate"));
        let q2 = p.parse_query().unwrap();
        assert!(matches!(q2.body, SetExpr::Select(_)));
        assert!(p.is_eof());
    }
}
