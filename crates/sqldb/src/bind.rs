//! Name resolution and bound-expression evaluation.
//!
//! The binder turns AST expressions into [`BoundExpr`]s whose column
//! references are flat offsets into a concatenated row, resolved against a
//! [`Scope`] of visible relations. Aggregate calls are extracted into
//! [`AggSpec`]s and replaced with [`BoundExpr::AggRef`] placeholders that the
//! aggregation operator fills in per group.

use crate::ast::{AggregateFunction, BinaryOp, Expr, FunctionArg, UnaryOp};
use crate::error::{DbError, DbResult};
use crate::types::DataType;
use crate::value::{Row, Value};
use std::cmp::Ordering;

/// One relation visible in a `FROM` scope.
#[derive(Debug, Clone)]
pub struct ScopeRelation {
    /// Name the relation is visible as (alias wins over table name).
    pub qualifier: String,
    /// Output column names, in order.
    pub columns: Vec<String>,
}

/// The set of relations visible to an expression, with flat column offsets.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    relations: Vec<ScopeRelation>,
}

impl Scope {
    /// An empty scope (constant expressions only).
    pub fn new() -> Scope {
        Scope::default()
    }

    /// Appends a relation; returns the offset of its first column.
    pub fn push(&mut self, relation: ScopeRelation) -> usize {
        let base = self.arity();
        self.relations.push(relation);
        base
    }

    /// Total number of columns across all relations.
    pub fn arity(&self) -> usize {
        self.relations.iter().map(|r| r.columns.len()).sum()
    }

    /// The visible relations.
    pub fn relations(&self) -> &[ScopeRelation] {
        &self.relations
    }

    /// Flat output column names (used to derive result-set headers).
    pub fn flat_columns(&self) -> Vec<String> {
        self.relations
            .iter()
            .flat_map(|r| r.columns.iter().cloned())
            .collect()
    }

    /// Resolves a possibly-qualified column name to a flat offset.
    ///
    /// # Errors
    /// Returns [`DbError::NotFound`] for unknown columns and
    /// [`DbError::Invalid`] for ambiguous unqualified references.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> DbResult<usize> {
        let mut found: Option<usize> = None;
        let mut base = 0usize;
        for rel in &self.relations {
            if table.map(|t| t == rel.qualifier).unwrap_or(true) {
                if let Some(i) = rel.columns.iter().position(|c| c == name) {
                    if found.is_some() {
                        return Err(DbError::Invalid(format!(
                            "ambiguous column reference {name}"
                        )));
                    }
                    found = Some(base + i);
                }
            }
            base += rel.columns.len();
        }
        found.ok_or_else(|| {
            let full = match table {
                Some(t) => format!("{t}.{name}"),
                None => name.to_owned(),
            };
            DbError::NotFound(format!("column {full}"))
        })
    }

    /// Column offsets belonging to the relation named `qualifier`.
    ///
    /// # Errors
    /// Returns [`DbError::NotFound`] when no relation has that name.
    pub fn relation_offsets(&self, qualifier: &str) -> DbResult<std::ops::Range<usize>> {
        let mut base = 0usize;
        for rel in &self.relations {
            if rel.qualifier == qualifier {
                return Ok(base..base + rel.columns.len());
            }
            base += rel.columns.len();
        }
        Err(DbError::NotFound(format!("relation {qualifier}")))
    }
}

/// Scalar builtin functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// First non-NULL argument.
    Coalesce,
    /// Smallest argument (NULLs ignored, as in PostgreSQL).
    Least,
    /// Largest argument (NULLs ignored).
    Greatest,
    /// Absolute value.
    Abs,
    /// String concatenation (`CONCAT`).
    Concat,
    /// Uppercase.
    Upper,
    /// Lowercase.
    Lower,
    /// String length.
    Length,
    /// Round to nearest integer (one arg) — returns float.
    Round,
    /// Floor.
    Floor,
    /// Ceiling.
    Ceil,
    /// Square root.
    Sqrt,
    /// `POWER(base, exp)`.
    Power,
    /// `MOD(a, b)`.
    Mod,
    /// `SIGN(x)` → -1/0/1.
    Sign,
}

impl Builtin {
    fn parse(name: &str) -> Option<Builtin> {
        match name {
            "coalesce" => Some(Builtin::Coalesce),
            "least" => Some(Builtin::Least),
            "greatest" => Some(Builtin::Greatest),
            "abs" => Some(Builtin::Abs),
            "concat" => Some(Builtin::Concat),
            "upper" => Some(Builtin::Upper),
            "lower" => Some(Builtin::Lower),
            "length" => Some(Builtin::Length),
            "round" => Some(Builtin::Round),
            "floor" => Some(Builtin::Floor),
            "ceil" | "ceiling" => Some(Builtin::Ceil),
            "sqrt" => Some(Builtin::Sqrt),
            "power" | "pow" => Some(Builtin::Power),
            "mod" => Some(Builtin::Mod),
            "sign" => Some(Builtin::Sign),
            _ => None,
        }
    }
}

/// An aggregate call extracted during binding.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Which aggregate function.
    pub func: AggregateFunction,
    /// Bound argument; `None` encodes `COUNT(*)`.
    pub arg: Option<BoundExpr>,
}

/// A fully bound expression, ready to evaluate against a flat row.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// Constant.
    Literal(Value),
    /// Flat column offset.
    Column(usize),
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<BoundExpr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<BoundExpr>,
    },
    /// Builtin scalar function call.
    Func {
        /// Which builtin.
        builtin: Builtin,
        /// Bound arguments.
        args: Vec<BoundExpr>,
    },
    /// Searched CASE.
    Case {
        /// `(condition, result)` branches.
        branches: Vec<(BoundExpr, BoundExpr)>,
        /// ELSE result.
        else_result: Option<Box<BoundExpr>>,
    },
    /// `IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Negated form.
        negated: bool,
    },
    /// `[NOT] IN (list)`.
    InList {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Candidates.
        list: Vec<BoundExpr>,
        /// Negated form.
        negated: bool,
    },
    /// `[NOT] BETWEEN`.
    Between {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Lower bound.
        low: Box<BoundExpr>,
        /// Upper bound.
        high: Box<BoundExpr>,
        /// Negated form.
        negated: bool,
    },
    /// `CAST`.
    Cast {
        /// Source.
        expr: Box<BoundExpr>,
        /// Target type.
        data_type: DataType,
    },
    /// Placeholder for the i-th extracted aggregate's per-group result.
    AggRef(usize),
}

/// Binds `expr` against `scope`, rejecting aggregate calls.
///
/// # Errors
/// Returns a binder error for unknown/ambiguous columns or aggregate usage
/// where aggregates are not allowed.
pub fn bind_scalar(expr: &Expr, scope: &Scope) -> DbResult<BoundExpr> {
    bind_expr(expr, scope, &mut None)
}

/// Binds `expr` against `scope`, extracting aggregate calls into `aggs`.
///
/// # Errors
/// Returns a binder error for unknown/ambiguous columns or nested aggregates.
pub fn bind_with_aggregates(
    expr: &Expr,
    scope: &Scope,
    aggs: &mut Vec<AggSpec>,
) -> DbResult<BoundExpr> {
    let mut slot = Some(aggs);
    bind_expr(expr, scope, &mut slot)
}

fn bind_expr(
    expr: &Expr,
    scope: &Scope,
    aggs: &mut Option<&mut Vec<AggSpec>>,
) -> DbResult<BoundExpr> {
    match expr {
        Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
        Expr::Param(i) => Err(DbError::Invalid(format!(
            "unbound parameter ?{} — positional parameters are only valid in prepared statements",
            i + 1
        ))),
        Expr::Column { table, name } => {
            Ok(BoundExpr::Column(scope.resolve(table.as_deref(), name)?))
        }
        Expr::Binary { left, op, right } => Ok(BoundExpr::Binary {
            left: Box::new(bind_expr(left, scope, aggs)?),
            op: *op,
            right: Box::new(bind_expr(right, scope, aggs)?),
        }),
        Expr::Unary { op, expr } => Ok(BoundExpr::Unary {
            op: *op,
            expr: Box::new(bind_expr(expr, scope, aggs)?),
        }),
        Expr::Function { name, args } => {
            if let Some(func) = AggregateFunction::parse(name) {
                let aggs = aggs.as_deref_mut().ok_or_else(|| {
                    DbError::Invalid(format!("aggregate {name} not allowed here"))
                })?;
                let arg = match args.as_slice() {
                    [FunctionArg::Wildcard] => None,
                    [FunctionArg::Expr(e)] => {
                        // no nested aggregates inside an aggregate argument
                        Some(bind_expr(e, scope, &mut None)?)
                    }
                    _ => {
                        return Err(DbError::Invalid(format!(
                            "aggregate {name} takes exactly one argument"
                        )))
                    }
                };
                if arg.is_none() && func != AggregateFunction::Count {
                    return Err(DbError::Invalid(format!("{name}(*) is not valid")));
                }
                let idx = aggs.len();
                aggs.push(AggSpec { func, arg });
                return Ok(BoundExpr::AggRef(idx));
            }
            let builtin = Builtin::parse(name)
                .ok_or_else(|| DbError::NotFound(format!("function {name}")))?;
            let mut bound_args = Vec::with_capacity(args.len());
            for a in args {
                match a {
                    FunctionArg::Expr(e) => bound_args.push(bind_expr(e, scope, aggs)?),
                    FunctionArg::Wildcard => {
                        return Err(DbError::Invalid(format!("* not valid in {name}()")))
                    }
                }
            }
            check_builtin_arity(builtin, bound_args.len())?;
            Ok(BoundExpr::Func {
                builtin,
                args: bound_args,
            })
        }
        Expr::Case {
            branches,
            else_result,
        } => {
            let mut bound = Vec::with_capacity(branches.len());
            for (c, r) in branches {
                bound.push((bind_expr(c, scope, aggs)?, bind_expr(r, scope, aggs)?));
            }
            let else_result = match else_result {
                Some(e) => Some(Box::new(bind_expr(e, scope, aggs)?)),
                None => None,
            };
            Ok(BoundExpr::Case {
                branches: bound,
                else_result,
            })
        }
        Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
            expr: Box::new(bind_expr(expr, scope, aggs)?),
            negated: *negated,
        }),
        Expr::InList {
            expr,
            list,
            negated,
        } => Ok(BoundExpr::InList {
            expr: Box::new(bind_expr(expr, scope, aggs)?),
            list: list
                .iter()
                .map(|e| bind_expr(e, scope, aggs))
                .collect::<DbResult<_>>()?,
            negated: *negated,
        }),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Ok(BoundExpr::Between {
            expr: Box::new(bind_expr(expr, scope, aggs)?),
            low: Box::new(bind_expr(low, scope, aggs)?),
            high: Box::new(bind_expr(high, scope, aggs)?),
            negated: *negated,
        }),
        Expr::Cast { expr, data_type } => Ok(BoundExpr::Cast {
            expr: Box::new(bind_expr(expr, scope, aggs)?),
            data_type: *data_type,
        }),
    }
}

fn check_builtin_arity(builtin: Builtin, n: usize) -> DbResult<()> {
    let ok = match builtin {
        Builtin::Coalesce | Builtin::Least | Builtin::Greatest | Builtin::Concat => n >= 1,
        Builtin::Power | Builtin::Mod => n == 2,
        _ => n == 1,
    };
    if ok {
        Ok(())
    } else {
        Err(DbError::Invalid(format!(
            "wrong number of arguments ({n}) for {builtin:?}"
        )))
    }
}

impl BoundExpr {
    /// Evaluates against a flat row (aggregate placeholders resolve via
    /// `agg_values`; pass `&[]` when none were extracted).
    ///
    /// # Errors
    /// Returns [`DbError::Eval`] on type errors, division by zero, etc.
    pub fn eval(&self, row: &Row, agg_values: &[Value]) -> DbResult<Value> {
        match self {
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Column(i) => Ok(row
                .get(*i)
                .cloned()
                .ok_or_else(|| DbError::Eval(format!("row too short for column {i}")))?),
            BoundExpr::Binary { left, op, right } => eval_binary(left, *op, right, row, agg_values),
            BoundExpr::Unary { op, expr } => {
                let v = expr.eval(row, agg_values)?;
                match op {
                    UnaryOp::Neg => v.neg(),
                    UnaryOp::Not => Ok(match v {
                        Value::Null => Value::Null,
                        Value::Bool(b) => Value::Bool(!b),
                        other => {
                            return Err(DbError::Eval(format!(
                                "NOT requires boolean, got {}",
                                other.type_name()
                            )))
                        }
                    }),
                }
            }
            BoundExpr::Func { builtin, args } => eval_builtin(*builtin, args, row, agg_values),
            BoundExpr::Case {
                branches,
                else_result,
            } => {
                for (cond, result) in branches {
                    if cond.eval(row, agg_values)?.is_truthy() {
                        return result.eval(row, agg_values);
                    }
                }
                match else_result {
                    Some(e) => e.eval(row, agg_values),
                    None => Ok(Value::Null),
                }
            }
            BoundExpr::IsNull { expr, negated } => {
                let v = expr.eval(row, agg_values)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row, agg_values)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for cand in list {
                    let c = cand.eval(row, agg_values)?;
                    match v.sql_eq(&c) {
                        Some(true) => return Ok(Value::Bool(!negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(row, agg_values)?;
                let lo = low.eval(row, agg_values)?;
                let hi = high.eval(row, agg_values)?;
                match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                    (Some(a), Some(b)) => {
                        let inside = a != Ordering::Less && b != Ordering::Greater;
                        Ok(Value::Bool(inside != *negated))
                    }
                    _ => Ok(Value::Null),
                }
            }
            BoundExpr::Cast { expr, data_type } => {
                let v = expr.eval(row, agg_values)?;
                cast_value(v, *data_type)
            }
            BoundExpr::AggRef(i) => agg_values
                .get(*i)
                .cloned()
                .ok_or_else(|| DbError::Eval("aggregate value missing".into())),
        }
    }

    /// True when the expression references no columns (safe to evaluate once).
    pub fn is_constant(&self) -> bool {
        match self {
            BoundExpr::Literal(_) => true,
            BoundExpr::Column(_) | BoundExpr::AggRef(_) => false,
            BoundExpr::Binary { left, right, .. } => left.is_constant() && right.is_constant(),
            BoundExpr::Unary { expr, .. } => expr.is_constant(),
            BoundExpr::Func { args, .. } => args.iter().all(|a| a.is_constant()),
            BoundExpr::Case {
                branches,
                else_result,
            } => {
                branches
                    .iter()
                    .all(|(c, r)| c.is_constant() && r.is_constant())
                    && else_result
                        .as_ref()
                        .map(|e| e.is_constant())
                        .unwrap_or(true)
            }
            BoundExpr::IsNull { expr, .. } => expr.is_constant(),
            BoundExpr::InList { expr, list, .. } => {
                expr.is_constant() && list.iter().all(|e| e.is_constant())
            }
            BoundExpr::Between {
                expr, low, high, ..
            } => expr.is_constant() && low.is_constant() && high.is_constant(),
            BoundExpr::Cast { expr, .. } => expr.is_constant(),
        }
    }
}

fn eval_binary(
    left: &BoundExpr,
    op: BinaryOp,
    right: &BoundExpr,
    row: &Row,
    aggs: &[Value],
) -> DbResult<Value> {
    // short-circuit logic with SQL three-valued semantics
    if op == BinaryOp::And {
        let l = left.eval(row, aggs)?;
        if let Value::Bool(false) = l {
            return Ok(Value::Bool(false));
        }
        let r = right.eval(row, aggs)?;
        return Ok(match (l, r) {
            (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
            (_, Value::Bool(false)) => Value::Bool(false),
            _ => Value::Null,
        });
    }
    if op == BinaryOp::Or {
        let l = left.eval(row, aggs)?;
        if let Value::Bool(true) = l {
            return Ok(Value::Bool(true));
        }
        let r = right.eval(row, aggs)?;
        return Ok(match (l, r) {
            (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
            (_, Value::Bool(true)) => Value::Bool(true),
            _ => Value::Null,
        });
    }
    let l = left.eval(row, aggs)?;
    let r = right.eval(row, aggs)?;
    match op {
        BinaryOp::Add => l.add(&r),
        BinaryOp::Sub => l.sub(&r),
        BinaryOp::Mul => l.mul(&r),
        BinaryOp::Div => l.div(&r),
        BinaryOp::Mod => l.rem(&r),
        BinaryOp::Eq => Ok(bool3(l.sql_eq(&r))),
        BinaryOp::NotEq => Ok(bool3(l.sql_eq(&r).map(|b| !b))),
        BinaryOp::Lt => Ok(bool3(l.sql_cmp(&r).map(|o| o == Ordering::Less))),
        BinaryOp::LtEq => Ok(bool3(l.sql_cmp(&r).map(|o| o != Ordering::Greater))),
        BinaryOp::Gt => Ok(bool3(l.sql_cmp(&r).map(|o| o == Ordering::Greater))),
        BinaryOp::GtEq => Ok(bool3(l.sql_cmp(&r).map(|o| o != Ordering::Less))),
        BinaryOp::Concat => {
            if l.is_null() || r.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Text(format!("{l}{r}")))
            }
        }
        BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
    }
}

fn bool3(v: Option<bool>) -> Value {
    match v {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn eval_builtin(
    builtin: Builtin,
    args: &[BoundExpr],
    row: &Row,
    aggs: &[Value],
) -> DbResult<Value> {
    match builtin {
        Builtin::Coalesce => {
            for a in args {
                let v = a.eval(row, aggs)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        Builtin::Least | Builtin::Greatest => {
            let mut best: Option<Value> = None;
            for a in args {
                let v = a.eval(row, aggs)?;
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match builtin {
                            Builtin::Least => v.total_cmp(&b) == Ordering::Less,
                            _ => v.total_cmp(&b) == Ordering::Greater,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        Builtin::Abs => {
            let v = args[0].eval(row, aggs)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(DbError::Eval(format!("ABS of {}", other.type_name()))),
            }
        }
        Builtin::Concat => {
            let mut out = String::new();
            for a in args {
                let v = a.eval(row, aggs)?;
                if !v.is_null() {
                    out.push_str(&v.to_string());
                }
            }
            Ok(Value::Text(out))
        }
        Builtin::Upper | Builtin::Lower => {
            let v = args[0].eval(row, aggs)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Text(if builtin == Builtin::Upper {
                    s.to_uppercase()
                } else {
                    s.to_lowercase()
                })),
                other => Err(DbError::Eval(format!(
                    "{builtin:?} of {}",
                    other.type_name()
                ))),
            }
        }
        Builtin::Length => {
            let v = args[0].eval(row, aggs)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(DbError::Eval(format!("LENGTH of {}", other.type_name()))),
            }
        }
        Builtin::Round | Builtin::Floor | Builtin::Ceil | Builtin::Sqrt => {
            let v = args[0].eval(row, aggs)?;
            let f = match v {
                Value::Null => return Ok(Value::Null),
                ref v => v
                    .as_f64()
                    .ok_or_else(|| DbError::Eval(format!("{builtin:?} of {}", v.type_name())))?,
            };
            Ok(Value::Float(match builtin {
                Builtin::Round => f.round(),
                Builtin::Floor => f.floor(),
                Builtin::Ceil => f.ceil(),
                _ => f.sqrt(),
            }))
        }
        Builtin::Power => {
            let b = args[0].eval(row, aggs)?;
            let e = args[1].eval(row, aggs)?;
            match (b.as_f64(), e.as_f64()) {
                _ if b.is_null() || e.is_null() => Ok(Value::Null),
                (Some(b), Some(e)) => Ok(Value::Float(b.powf(e))),
                _ => Err(DbError::Eval("POWER requires numeric arguments".into())),
            }
        }
        Builtin::Mod => {
            let a = args[0].eval(row, aggs)?;
            let b = args[1].eval(row, aggs)?;
            a.rem(&b)
        }
        Builtin::Sign => {
            let v = args[0].eval(row, aggs)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.signum())),
                Value::Float(f) => Ok(Value::Int(if f > 0.0 {
                    1
                } else if f < 0.0 {
                    -1
                } else {
                    0
                })),
                other => Err(DbError::Eval(format!("SIGN of {}", other.type_name()))),
            }
        }
    }
}

fn cast_value(v: Value, data_type: DataType) -> DbResult<Value> {
    match (&v, data_type) {
        (Value::Null, _) => Ok(Value::Null),
        (Value::Int(_), DataType::Int) | (Value::Float(_), DataType::Float) => Ok(v),
        (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
        (Value::Float(f), DataType::Int) => Ok(Value::Int(*f as i64)),
        (Value::Int(i), DataType::Text) => Ok(Value::Text(i.to_string())),
        (Value::Float(f), DataType::Text) => Ok(Value::Text(f.to_string())),
        (Value::Bool(b), DataType::Text) => Ok(Value::Text(b.to_string())),
        (Value::Bool(b), DataType::Int) => Ok(Value::Int(i64::from(*b))),
        (Value::Text(s), DataType::Int) => s
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| DbError::Eval(format!("cannot cast '{s}' to INT"))),
        (Value::Text(s), DataType::Float) => s
            .trim()
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| DbError::Eval(format!("cannot cast '{s}' to FLOAT"))),
        (Value::Text(s), DataType::Bool) => match s.trim().to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Ok(Value::Bool(true)),
            "false" | "f" | "0" => Ok(Value::Bool(false)),
            _ => Err(DbError::Eval(format!("cannot cast '{s}' to BOOL"))),
        },
        (Value::Text(_), DataType::Text) => Ok(v),
        (other, t) => Err(DbError::Eval(format!(
            "cannot cast {} to {t}",
            other.type_name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;

    fn scope_ab() -> Scope {
        let mut s = Scope::new();
        s.push(ScopeRelation {
            qualifier: "t".into(),
            columns: vec!["a".into(), "b".into()],
        });
        s.push(ScopeRelation {
            qualifier: "u".into(),
            columns: vec!["a".into(), "c".into()],
        });
        s
    }

    fn eval(sql: &str, row: &[Value]) -> DbResult<Value> {
        let e = parse_expression(sql).unwrap();
        let b = bind_scalar(&e, &scope_ab())?;
        b.eval(&row.to_vec(), &[])
    }

    #[test]
    fn qualified_resolution() {
        let s = scope_ab();
        assert_eq!(s.resolve(Some("t"), "a").unwrap(), 0);
        assert_eq!(s.resolve(Some("u"), "a").unwrap(), 2);
        assert_eq!(s.resolve(None, "c").unwrap(), 3);
        assert!(matches!(s.resolve(None, "a"), Err(DbError::Invalid(_))));
        assert!(matches!(s.resolve(None, "zzz"), Err(DbError::NotFound(_))));
    }

    #[test]
    fn arithmetic_and_case() {
        let row = vec![Value::Int(3), Value::Int(4), Value::Int(0), Value::Int(0)];
        assert_eq!(eval("t.a + t.b * 2", &row).unwrap(), Value::Int(11));
        assert_eq!(
            eval("CASE WHEN t.a > 2 THEN 'big' ELSE 'small' END", &row).unwrap(),
            Value::Text("big".into())
        );
    }

    #[test]
    fn coalesce_and_least() {
        let row = vec![Value::Null, Value::Int(4), Value::Int(0), Value::Int(0)];
        assert_eq!(eval("COALESCE(t.a, 7)", &row).unwrap(), Value::Int(7));
        assert_eq!(eval("LEAST(t.b, 2, 9)", &row).unwrap(), Value::Int(2));
        assert_eq!(eval("GREATEST(t.b, 2, 9)", &row).unwrap(), Value::Int(9));
        // LEAST ignores NULLs like PostgreSQL
        assert_eq!(eval("LEAST(t.a, 5)", &row).unwrap(), Value::Int(5));
    }

    #[test]
    fn three_valued_logic() {
        let row = vec![Value::Null, Value::Bool(true), Value::Int(0), Value::Int(0)];
        assert_eq!(eval("t.a = 1 AND t.b", &row).unwrap(), Value::Null);
        assert_eq!(eval("t.a = 1 OR t.b", &row).unwrap(), Value::Bool(true));
        assert_eq!(eval("t.a = 1 AND FALSE", &row).unwrap(), Value::Bool(false));
        assert_eq!(eval("NOT (t.a = 1)", &row).unwrap(), Value::Null);
    }

    #[test]
    fn in_list_null_semantics() {
        let row = vec![Value::Int(5), Value::Null, Value::Int(0), Value::Int(0)];
        assert_eq!(eval("t.a IN (1, 5)", &row).unwrap(), Value::Bool(true));
        assert_eq!(eval("t.a IN (1, 2)", &row).unwrap(), Value::Bool(false));
        assert_eq!(eval("t.a IN (1, t.b)", &row).unwrap(), Value::Null);
        assert_eq!(eval("t.b IN (1)", &row).unwrap(), Value::Null);
    }

    #[test]
    fn aggregates_rejected_in_scalar_context() {
        let e = parse_expression("SUM(t.a)").unwrap();
        assert!(bind_scalar(&e, &scope_ab()).is_err());
    }

    #[test]
    fn aggregate_extraction() {
        let e = parse_expression("COALESCE(0.85 * SUM(t.a * t.b), 0.0)").unwrap();
        let mut aggs = Vec::new();
        let b = bind_with_aggregates(&e, &scope_ab(), &mut aggs).unwrap();
        assert_eq!(aggs.len(), 1);
        // evaluate with the aggregate result plugged in
        let v = b.eval(&vec![], &[Value::Float(2.0)]).unwrap();
        assert_eq!(v, Value::Float(1.7));
    }

    #[test]
    fn casts() {
        let row = vec![Value::Int(0); 4];
        assert_eq!(eval("CAST('42' AS INT)", &row).unwrap(), Value::Int(42));
        assert_eq!(eval("CAST(3.7 AS INT)", &row).unwrap(), Value::Int(3));
        assert!(eval("CAST('xyz' AS INT)", &row).is_err());
    }

    #[test]
    fn between() {
        let row = vec![Value::Int(5), Value::Int(0), Value::Int(0), Value::Int(0)];
        assert_eq!(
            eval("t.a BETWEEN 1 AND 10", &row).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval("t.a NOT BETWEEN 1 AND 10", &row).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn constant_detection() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        assert!(bind_scalar(&e, &Scope::new()).unwrap().is_constant());
        let e = parse_expression("t.a + 1").unwrap();
        assert!(!bind_scalar(&e, &scope_ab()).unwrap().is_constant());
    }
}
