//! `iters-overhead` — per-round statement overhead, prepared vs unprepared.
//!
//! A fixed small graph with a high round count isolates the *per-round
//! statement cost* (parse + plan + wire framing + round-trips) from actual
//! data movement: PageRank and SSSP at 1/4/8 partitions run once through
//! the prepared/pipelined stack and once through a baseline transport that
//! refuses to prepare (every handle splices literals and each statement is
//! its own round-trip, with the server's plan cache shrunk to one entry so
//! every statement re-parses) — the pre-prepared-statement world.
//!
//! Usage: `cargo run --release -p sqloop-bench --bin iters_overhead --
//!         [--rounds 50] [--scale 0.05] [--partitions 1,4,8] [--exp pr|sssp|all]`
//!
//! Emits `results/BENCH_5.json` with per-round latency, wire bytes and
//! plan-cache counters per configuration — including the top statement
//! families the plan cache misses on (digest text + parse counts, the
//! attribution for the parallel-mode hit rate) — plus a summary with the
//! overall overhead reduction and a profiling-overhead probe (the same
//! loop with per-operator profiling on must produce identical statement
//! counts). The run fails loudly when prepared and unprepared results
//! diverge — the speedup must not change answers.

use dbcp::{Connection, Driver, Server, TcpDriver};
use sqldb::{Database, DbResult, EngineProfile, IsolationLevel, StmtOutput, Value};
use sqloop::{ExecutionMode, ExecutionReport, SQLoop, SqloopConfig};
use sqloop_bench::write_file;
use std::fmt::Write as _;
use std::sync::Arc;

/// A driver that hides the transport's prepared/pipeline support: handles
/// degrade to literal splicing and every statement pays its own round-trip.
struct UnpreparedDriver {
    inner: Arc<dyn Driver>,
}

impl Driver for UnpreparedDriver {
    fn connect(&self) -> DbResult<Box<dyn Connection>> {
        Ok(Box::new(UnpreparedConnection {
            inner: self.inner.connect()?,
        }))
    }

    fn profile(&self) -> EngineProfile {
        self.inner.profile()
    }
}

/// Delegates plain statements; inherits the trait's `Unsupported` prepare,
/// epoch `0` (never prepares) and statement-at-a-time `run_pipeline`.
struct UnpreparedConnection {
    inner: Box<dyn Connection>,
}

impl Connection for UnpreparedConnection {
    fn execute(&mut self, sql: &str) -> DbResult<StmtOutput> {
        self.inner.execute(sql)
    }

    fn begin(&mut self) -> DbResult<()> {
        self.inner.begin()
    }

    fn commit(&mut self) -> DbResult<()> {
        self.inner.commit()
    }

    fn rollback(&mut self) -> DbResult<()> {
        self.inner.rollback()
    }

    fn set_isolation(&mut self, level: IsolationLevel) -> DbResult<()> {
        self.inner.set_isolation(level)
    }

    fn set_statement_timeout(&mut self, timeout: Option<std::time::Duration>) -> DbResult<bool> {
        self.inner.set_statement_timeout(timeout)
    }

    fn profile(&self) -> EngineProfile {
        self.inner.profile()
    }
}

/// Everything one measured run produces.
struct RunSample {
    iterations: u64,
    elapsed_ms: f64,
    /// Server-side parse+plan time (`sqldb.plan` histogram total).
    plan_ms: f64,
    /// Server-side parse+plan invocations (`sqldb.plan` histogram count).
    parses: u64,
    wire_bytes: u64,
    /// Client→server round trips (`dbcp.wire.round_trip` count).
    round_trips: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    /// Statement families ranked by plan-cache misses (server digest
    /// table): the exact texts the cache loses on, with parse counts.
    top_misses: Vec<sqldb::DigestEntry>,
    result: sqldb::QueryResult,
}

impl RunSample {
    fn per_round_ms(&self) -> f64 {
        self.elapsed_ms / self.iterations.max(1) as f64
    }

    fn plan_ms_per_round(&self) -> f64 {
        self.plan_ms / self.iterations.max(1) as f64
    }

    fn parses_per_round(&self) -> f64 {
        self.parses as f64 / self.iterations.max(1) as f64
    }

    fn wire_bytes_per_round(&self) -> f64 {
        self.wire_bytes as f64 / self.iterations.max(1) as f64
    }

    fn round_trips_per_round(&self) -> f64 {
        self.round_trips as f64 / self.iterations.max(1) as f64
    }

    fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One (workload, partitions) configuration, both ways.
struct Comparison {
    workload: &'static str,
    partitions: usize,
    mode: &'static str,
    prepared: RunSample,
    unprepared: RunSample,
    results_match: bool,
}

impl Comparison {
    /// Relative drop going prepared, `1 - prepared/unprepared`.
    fn latency_reduction(&self) -> f64 {
        reduction(self.prepared.per_round_ms(), self.unprepared.per_round_ms())
    }

    fn plan_time_reduction(&self) -> f64 {
        reduction(
            self.prepared.plan_ms_per_round(),
            self.unprepared.plan_ms_per_round(),
        )
    }

    fn parse_reduction(&self) -> f64 {
        reduction(
            self.prepared.parses_per_round(),
            self.unprepared.parses_per_round(),
        )
    }

    fn wire_reduction(&self) -> f64 {
        reduction(
            self.prepared.wire_bytes_per_round(),
            self.unprepared.wire_bytes_per_round(),
        )
    }

    fn rtt_reduction(&self) -> f64 {
        reduction(
            self.prepared.round_trips_per_round(),
            self.unprepared.round_trips_per_round(),
        )
    }

    /// Per-round *statement overhead*: the three components prepared and
    /// pipelined statements attack — parse+plan invocations, wire bytes
    /// and round trips — weighted equally. All three are deterministic
    /// counts, so the reduction is reproducible run to run; the measured
    /// parse+plan *time* rides along informationally (it tracks the parse
    /// count but is microsecond-scale and noisy under scheduler load).
    fn overhead_reduction(&self) -> f64 {
        (self.parse_reduction() + self.wire_reduction() + self.rtt_reduction()) / 3.0
    }
}

fn reduction(new: f64, old: f64) -> f64 {
    if old <= 0.0 {
        0.0
    } else {
        1.0 - new / old
    }
}

fn wire_counter(report: &ExecutionReport, name: &str) -> u64 {
    report.metrics.counters.get(name).copied().unwrap_or(0)
}

/// Runs `query` over a fresh TCP-served engine loaded with `graph`.
fn run_once(
    graph: &graphgen::Graph,
    query: &str,
    partitions: usize,
    rounds: u64,
    prepared: bool,
    profiling: bool,
) -> RunSample {
    let db = Database::new(EngineProfile::Postgres);
    db.set_profiling(profiling);
    let server = Server::bind(db.clone(), "127.0.0.1:0").expect("bind");
    let tcp: Arc<dyn Driver> =
        Arc::new(TcpDriver::connect(&server.addr().to_string()).expect("connect"));
    {
        let mut conn = tcp.connect().expect("load connection");
        workloads::load_edges(conn.as_mut(), graph).expect("load edges");
    }
    // attribute digests to the loop itself, not the data load
    db.reset_digests();
    let driver: Arc<dyn Driver> = if prepared {
        tcp
    } else {
        // the baseline also loses the server-side plan cache: one entry
        // means the cycling round body re-parses every statement
        db.set_plan_cache_capacity(1);
        Arc::new(UnpreparedDriver { inner: tcp })
    };
    let mode = if partitions == 1 {
        ExecutionMode::Single
    } else {
        ExecutionMode::Sync
    };
    let sq = SQLoop::new(driver).with_config(SqloopConfig {
        mode,
        threads: partitions.min(4),
        partitions,
        ..SqloopConfig::default()
    });
    let cache_before = db.plan_cache_stats();
    let report = sq.execute_detailed(query).expect("bench run");
    let cache_after = db.plan_cache_stats();
    server.shutdown();
    let _ = rounds; // round count is fixed by the query text
    RunSample {
        iterations: report.iterations,
        elapsed_ms: report.elapsed.as_secs_f64() * 1e3,
        plan_ms: report
            .metrics
            .histograms
            .get("sqldb.plan")
            .map_or(0.0, |h| h.total_us as f64 / 1e3),
        parses: report
            .metrics
            .histograms
            .get("sqldb.plan")
            .map_or(0, |h| h.count),
        wire_bytes: wire_counter(&report, "dbcp.wire.bytes_out")
            + wire_counter(&report, "dbcp.wire.bytes_in"),
        round_trips: report
            .metrics
            .histograms
            .get("dbcp.wire.round_trip")
            .map_or(0, |h| h.count),
        hits: cache_after.hits - cache_before.hits,
        misses: cache_after.misses - cache_before.misses,
        evictions: cache_after.evictions - cache_before.evictions,
        invalidations: cache_after.invalidations - cache_before.invalidations,
        top_misses: db.digest_top_misses(5),
        result: report.result,
    }
}

/// Same rows up to float rounding (order-insensitive).
fn results_match(a: &sqldb::QueryResult, b: &sqldb::QueryResult) -> bool {
    if a.rows.len() != b.rows.len() {
        return false;
    }
    let canon = |r: &sqldb::QueryResult| {
        let mut rows: Vec<Vec<String>> = r
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|v| match v {
                        Value::Float(f) => format!("{:.9}", f),
                        other => other.to_string(),
                    })
                    .collect()
            })
            .collect();
        rows.sort();
        rows
    };
    canon(a) == canon(b)
}

fn sample_json(s: &RunSample) -> String {
    let top_misses = s
        .top_misses
        .iter()
        .map(|e| {
            format!(
                "{{\"family\": \"{}\", \"parses\": {}, \"calls\": {}}}",
                obs::json::escape(&e.digest),
                e.plan_misses,
                e.calls,
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"iterations\": {}, \"elapsed_ms\": {:.3}, \"per_round_ms\": {:.4}, \
         \"plan_ms_per_round\": {:.4}, \"parses_per_round\": {:.2}, \
         \"wire_bytes\": {}, \"wire_bytes_per_round\": {:.1}, \
         \"round_trips_per_round\": {:.1}, \
         \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"invalidations\": {}, \"hit_rate\": {:.4}}}, \
         \"digest_top_misses\": [{}]}}",
        s.iterations,
        s.elapsed_ms,
        s.per_round_ms(),
        s.plan_ms_per_round(),
        s.parses_per_round(),
        s.wire_bytes,
        s.wire_bytes_per_round(),
        s.round_trips_per_round(),
        s.hits,
        s.misses,
        s.evictions,
        s.invalidations,
        s.hit_rate(),
        top_misses,
    )
}

fn main() {
    let mut rounds: u64 = 50;
    let mut scale: f64 = 0.05;
    let mut partitions: Vec<usize> = vec![1, 4, 8];
    let mut exp = "all".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--rounds" => rounds = value().parse().expect("bad --rounds"),
            "--scale" => scale = value().parse().expect("bad --scale"),
            "--exp" => exp = value(),
            "--partitions" => {
                partitions = value()
                    .split(',')
                    .map(|t| t.trim().parse().expect("bad --partitions"))
                    .collect();
            }
            other => panic!("unknown flag {other}"),
        }
    }

    println!("== iters-overhead: prepared vs unprepared per-round cost ==\n");
    let mut comparisons: Vec<Comparison> = Vec::new();

    if exp == "pr" || exp == "all" {
        let dataset = graphgen::datasets::google_web_like(scale);
        println!(
            "PageRank on {} ({}), {rounds} rounds",
            dataset.name, dataset.graph
        );
        let query = workloads::queries::pagerank(rounds);
        for &p in &partitions {
            comparisons.push(compare("pagerank", &dataset.graph, &query, p, rounds));
        }
    }
    if exp == "sssp" || exp == "all" {
        // a chain pushes the frontier one hop per round: `rounds` tiny
        // rounds whose cost is almost pure per-statement overhead
        let graph = graphgen::chain(rounds as usize + 1);
        println!("SSSP on chain-{} ({graph})", rounds + 1);
        let (dest, _) = graph.node_at_distance(0, u64::MAX).expect("connected");
        let query = workloads::queries::sssp(0, dest);
        for &p in &partitions {
            comparisons.push(compare("sssp", &graph, &query, p, rounds));
        }
    }

    // profiling overhead probe: the same prepared single-partition PageRank
    // loop with per-operator profiling on vs off. Every statement *count*
    // must be identical — instrumentation may cost time, never change
    // execution. (With profiling off the counters sit behind one relaxed
    // atomic load; the CI perf smoke gates the disabled path.)
    println!("\nprofiling overhead probe (prepared PageRank, p=1)");
    let probe_graph = graphgen::datasets::google_web_like(scale);
    let probe_query = workloads::queries::pagerank(rounds);
    let probe_off = run_once(&probe_graph.graph, &probe_query, 1, rounds, true, false);
    let probe_on = run_once(&probe_graph.graph, &probe_query, 1, rounds, true, true);
    let probe_counts_unchanged = probe_off.iterations == probe_on.iterations
        && probe_off.parses == probe_on.parses
        && probe_off.round_trips == probe_on.round_trips
        && probe_off.wire_bytes == probe_on.wire_bytes
        && probe_off.hits == probe_on.hits
        && probe_off.misses == probe_on.misses
        && results_match(&probe_off.result, &probe_on.result);
    let probe_overhead = if probe_off.per_round_ms() > 0.0 {
        probe_on.per_round_ms() / probe_off.per_round_ms() - 1.0
    } else {
        0.0
    };
    println!(
        "  profiling on: {:.2} ms/round vs off: {:.2} ms/round ({:+.1}%), counts {}",
        probe_on.per_round_ms(),
        probe_off.per_round_ms(),
        probe_overhead * 100.0,
        if probe_counts_unchanged {
            "unchanged"
        } else {
            "CHANGED"
        },
    );

    let mut json = String::from("{\n  \"bench\": \"iters-overhead\",\n");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"scale\": {scale},");
    json.push_str("  \"entries\": [\n");
    for (i, c) in comparisons.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"partitions\": {}, \"mode\": \"{}\",\n     \
             \"prepared\": {},\n     \"unprepared\": {},\n     \
             \"statement_overhead_reduction\": {:.4}, \"parse_reduction\": {:.4}, \
             \"plan_time_reduction\": {:.4}, \
             \"per_round_latency_reduction\": {:.4}, \"wire_bytes_reduction\": {:.4}, \
             \"round_trip_reduction\": {:.4}, \"results_match\": {}}}",
            c.workload,
            c.partitions,
            c.mode,
            sample_json(&c.prepared),
            sample_json(&c.unprepared),
            c.overhead_reduction(),
            c.parse_reduction(),
            c.plan_time_reduction(),
            c.latency_reduction(),
            c.wire_reduction(),
            c.rtt_reduction(),
            c.results_match,
        );
        json.push_str(if i + 1 < comparisons.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    let n = comparisons.len().max(1) as f64;
    let mean = |f: fn(&Comparison) -> f64| comparisons.iter().map(f).sum::<f64>() / n;
    let mean_overhead = mean(Comparison::overhead_reduction);
    let mean_parse = mean(Comparison::parse_reduction);
    let mean_plan = mean(Comparison::plan_time_reduction);
    let mean_latency = mean(Comparison::latency_reduction);
    let mean_wire = mean(Comparison::wire_reduction);
    let mean_rtt = mean(Comparison::rtt_reduction);
    let min_overhead = comparisons
        .iter()
        .map(Comparison::overhead_reduction)
        .fold(f64::INFINITY, f64::min);
    // the CI gate: hit rate of the prepared single-partition PageRank loop
    // (a pure correctness property of the plan cache, not a timing)
    let gate_hit_rate = comparisons
        .iter()
        .find(|c| c.workload == "pagerank" && c.partitions == 1)
        .or(comparisons.first())
        .map_or(0.0, |c| c.prepared.hit_rate());
    let all_match = comparisons.iter().all(|c| c.results_match);
    let _ = write!(
        json,
        "  \"summary\": {{\"mean_statement_overhead_reduction\": {:.4}, \
         \"min_statement_overhead_reduction\": {:.4}, \
         \"mean_parse_reduction\": {:.4}, \
         \"mean_plan_time_reduction\": {:.4}, \
         \"mean_per_round_latency_reduction\": {:.4}, \
         \"mean_wire_bytes_reduction\": {:.4}, \
         \"mean_round_trip_reduction\": {:.4}, \
         \"prepared_hit_rate\": {:.4}, \"all_results_match\": {}, \
         \"profiling_probe\": {{\"off_per_round_ms\": {:.4}, \
         \"on_per_round_ms\": {:.4}, \"enabled_overhead\": {:.4}, \
         \"counts_unchanged\": {}}}}}\n}}\n",
        mean_overhead,
        min_overhead,
        mean_parse,
        mean_plan,
        mean_latency,
        mean_wire,
        mean_rtt,
        gate_hit_rate,
        all_match,
        probe_off.per_round_ms(),
        probe_on.per_round_ms(),
        probe_overhead,
        probe_counts_unchanged,
    );

    println!(
        "\nsummary: statement overhead -{:.1}% (worst -{:.1}%; parses -{:.1}%, \
         wire bytes -{:.1}%, round trips -{:.1}%), per-round latency -{:.1}%, \
         prepared hit rate {:.1}%",
        mean_overhead * 100.0,
        min_overhead * 100.0,
        mean_parse * 100.0,
        mean_wire * 100.0,
        mean_rtt * 100.0,
        mean_latency * 100.0,
        gate_hit_rate * 100.0,
    );
    assert!(all_match, "prepared and unprepared runs disagreed");
    assert!(
        probe_counts_unchanged,
        "enabling profiling changed statement counts or results"
    );
    if let Some(p) = write_file("BENCH_5.json", &json) {
        println!("wrote {}", p.display());
    }
}

fn compare(
    workload: &'static str,
    graph: &graphgen::Graph,
    query: &str,
    p: usize,
    rounds: u64,
) -> Comparison {
    let prepared = run_once(graph, query, p, rounds, true, false);
    let unprepared = run_once(graph, query, p, rounds, false, false);
    let matched = results_match(&prepared.result, &unprepared.result);
    let c = Comparison {
        workload,
        partitions: p,
        mode: if p == 1 { "single" } else { "sync" },
        prepared,
        unprepared,
        results_match: matched,
    };
    println!(
        "  {workload} p={p}: overhead -{:.1}% ({:.1} vs {:.1} parses/round, \
         wire {:.0} vs {:.0} B/round, {:.1} vs {:.1} trips/round), \
         latency {:.2} vs {:.2} ms/round, hit rate {:.1}%{}",
        c.overhead_reduction() * 100.0,
        c.prepared.parses_per_round(),
        c.unprepared.parses_per_round(),
        c.prepared.wire_bytes_per_round(),
        c.unprepared.wire_bytes_per_round(),
        c.prepared.round_trips_per_round(),
        c.unprepared.round_trips_per_round(),
        c.prepared.per_round_ms(),
        c.unprepared.per_round_ms(),
        c.prepared.hit_rate() * 100.0,
        if matched { "" } else { "  RESULTS DIVERGED" },
    );
    // name the statement families behind the prepared-path misses: in the
    // parallel modes these are the per-partition message-table texts
    for e in c.prepared.top_misses.iter().take(3) {
        println!(
            "      miss family [{}]: {} ({} parses)",
            c.mode, e.digest, e.plan_misses
        );
    }
    c
}
