//! Single-source shortest path on an ego/social network (the paper's
//! Example 3 workload): a traversal query where prioritized asynchronous
//! execution shines.
//!
//! Run with: `cargo run --release --example sssp [-- <scale>]`

use dbcp::{Driver, LocalDriver};
use sqldb::{Database, EngineProfile};
use sqloop::{ExecutionMode, PrioritySpec, SQLoop, SqloopConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.3);
    let dataset = graphgen::datasets::twitter_like(scale);
    println!("dataset: {} ({})", dataset.name, dataset.graph);

    let source = 0;
    // pick a destination a few circles away
    let (destination, hops) = dataset
        .graph
        .node_at_distance(source, 10_000)
        .expect("graph is connected from node 0");
    println!("source {source} → destination {destination} ({hops} hops away)");

    let db = Database::new(EngineProfile::Postgres);
    let driver = LocalDriver::new(db);
    let mut conn = driver.connect()?;
    workloads::load_edges(conn.as_mut(), &dataset.graph)?;
    drop(conn);

    let oracle = workloads::oracle::sssp(&dataset.graph, source);
    let expected = oracle.get(&destination).copied();
    let query = workloads::queries::sssp(source, destination);

    for mode in [
        ExecutionMode::Single,
        ExecutionMode::Sync,
        ExecutionMode::Async,
        ExecutionMode::AsyncPrio,
    ] {
        let config = SqloopConfig {
            mode,
            threads: 4,
            partitions: 32,
            // least tentative distance first — the paper's SSSP priority
            priority: Some(PrioritySpec::lowest("SELECT MIN(delta) FROM {}")),
            ..SqloopConfig::default()
        };
        let sqloop = SQLoop::new(Arc::new(driver.clone())).with_config(config);
        let report = sqloop.execute_detailed(&query)?;
        let got = report.result.rows.first().and_then(|r| r[0].as_f64());
        println!(
            "{:<7} {:>9.2?}  distance={:?} (oracle {:?})  computes={} gathers={}",
            mode.label(),
            report.elapsed,
            got,
            expected,
            report.computes,
            report.gathers,
        );
    }
    Ok(())
}
