//! Engine micro-benchmarks: parsing, join algorithms per profile, hash
//! aggregation, and update-join throughput — the statement-level costs
//! underlying every figure.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sqldb::{Database, EngineProfile};

fn seeded_db(profile: EngineProfile, rows: usize) -> Database {
    let db = Database::new(profile);
    let mut s = db.connect();
    s.execute("CREATE TABLE nodes (id INT PRIMARY KEY, v FLOAT)")
        .unwrap();
    s.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
        .unwrap();
    for chunk in (0..rows).collect::<Vec<_>>().chunks(256) {
        let values = chunk
            .iter()
            .map(|i| format!("({i}, {}.5)", i % 100))
            .collect::<Vec<_>>()
            .join(", ");
        s.execute(&format!("INSERT INTO nodes VALUES {values}"))
            .unwrap();
        let edges = chunk
            .iter()
            .map(|i| format!("({i}, {}, 0.5)", (i * 7 + 3) % rows))
            .collect::<Vec<_>>()
            .join(", ");
        s.execute(&format!("INSERT INTO edges VALUES {edges}"))
            .unwrap();
    }
    s.execute("CREATE INDEX edges_src ON edges (src)").unwrap();
    db
}

fn bench_parse(c: &mut Criterion) {
    let sql = "SELECT pr.node, COALESCE(pr.rank + pr.delta, 0.15), \
               COALESCE(0.85 * SUM(ir.delta * ie.weight), 0.0) \
               FROM pr LEFT JOIN edges AS ie ON pr.node = ie.dst \
               LEFT JOIN pr AS ir ON ir.node = ie.src GROUP BY pr.node";
    c.bench_function("parse/pagerank_step", |b| {
        b.iter(|| sqldb::parser::parse_statement(black_box(sql)).unwrap())
    });
    c.bench_function("parse/simple_select", |b| {
        b.iter(|| {
            sqldb::parser::parse_statement(black_box("SELECT a, b FROM t WHERE a > 1")).unwrap()
        })
    });
}

/// The architectural difference between engines: hash join (PostgreSQL)
/// vs index nested-loop (MySQL family) on an equi-join.
fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("join/nodes_join_edges");
    for profile in EngineProfile::ALL {
        let db = seeded_db(profile, 2000);
        group.bench_with_input(BenchmarkId::from_parameter(profile.name()), &db, |b, db| {
            let mut s = db.connect();
            b.iter(|| {
                s.query("SELECT nodes.id, edges.dst FROM nodes JOIN edges ON nodes.id = edges.src")
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let db = seeded_db(EngineProfile::Postgres, 4000);
    c.bench_function("aggregate/group_by_sum", |b| {
        let mut s = db.connect();
        b.iter(|| {
            s.query("SELECT dst, SUM(weight), COUNT(*) FROM edges GROUP BY dst")
                .unwrap()
        })
    });
}

/// The Gather task's statement shape: update-join against a derived table.
fn bench_update_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("update/gather_shape");
    for profile in [EngineProfile::Postgres, EngineProfile::MySql] {
        let db = seeded_db(profile, 1000);
        {
            let mut s = db.connect();
            s.execute("CREATE TABLE msg (id INT, val FLOAT)").unwrap();
            s.execute("INSERT INTO msg SELECT src, SUM(weight) FROM edges GROUP BY src")
                .unwrap();
        }
        let sql = sqloop::translate::translate_sql(
            "UPDATE nodes SET v = v + inc.val FROM \
             (SELECT id, SUM(val) AS val FROM msg GROUP BY id) AS inc \
             WHERE nodes.id = inc.id",
            profile,
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(profile.name()), &db, |b, db| {
            let mut s = db.connect();
            b.iter(|| s.execute(&sql).unwrap())
        });
    }
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    use dbcp::wire;
    let result = sqldb::QueryResult {
        columns: vec!["id".into(), "val".into()],
        rows: (0..1000)
            .map(|i| vec![sqldb::Value::Int(i), sqldb::Value::Float(i as f64 * 0.5)])
            .collect(),
    };
    let resp = wire::Response::Rows(result);
    c.bench_function("wire/encode_decode_1k_rows", |b| {
        b.iter(|| {
            let bytes = wire::encode_response(black_box(&resp));
            wire::decode_response(bytes).unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_parse,
    bench_joins,
    bench_aggregate,
    bench_update_join,
    bench_wire_codec
);
criterion_main!(benches);
