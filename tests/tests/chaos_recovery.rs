//! Fault-tolerance integration tests: the paper's workloads executed
//! through the full middleware while a seeded [`dbcp::ChaosDriver`]
//! injects connect refusals, statement errors, latency, and mid-session
//! connection drops. Retry/replay must keep the results oracle-correct;
//! an unrecoverable outage must degrade gracefully to the single-threaded
//! executor and report the downgrade.

use dbcp::{with_chaos, ChaosConfig, ChaosStats, Driver, FaultWeights, LocalDriver};
use sqldb::{Database, EngineProfile};
use sqloop::{ExecutionMode, PrioritySpec, SQLoop, SqloopConfig, SqloopError, Strategy};
use std::sync::Arc;
use std::time::Duration;

/// Loads `graph` into a fresh database over a clean connection, then wraps
/// the driver in chaos per `config`. Setup traffic is never faulted; the
/// run's control connection (the first one the executor opens) is shielded
/// via `skip_connections` so faults land on the workers, where recovery
/// lives.
fn chaotic_driver(graph: &graphgen::Graph, config: ChaosConfig) -> (Arc<dyn Driver>, ChaosStats) {
    let db = Database::new(EngineProfile::Postgres);
    let clean: Arc<dyn Driver> = Arc::new(LocalDriver::new(db));
    let mut conn = clean.connect().unwrap();
    workloads::load_edges(conn.as_mut(), graph).unwrap();
    let (driver, stats) = with_chaos(
        clean,
        ChaosConfig {
            skip_connections: 1,
            ..config
        },
    );
    (driver, stats)
}

/// A recovery-friendly config: a generous replay budget so a seeded fault
/// storm cannot realistically exhaust it, and zero backoff to keep the
/// suite fast.
fn recovering(mode: ExecutionMode) -> SqloopConfig {
    let mut config = SqloopConfig {
        mode,
        threads: 3,
        partitions: 8,
        task_retries: 6,
        retry_backoff: Duration::ZERO,
        ..SqloopConfig::default()
    };
    if mode == ExecutionMode::AsyncPrio {
        config.priority = Some(PrioritySpec::lowest("SELECT MIN(delta) FROM {}"));
    }
    config
}

/// All four fault kinds, weighted like a misbehaving network.
fn storm(seed: u64, fault_rate: f64) -> ChaosConfig {
    ChaosConfig {
        weights: FaultWeights {
            connect_refused: 1,
            stmt_error: 4,
            latency: 2,
            drop: 1,
            ..FaultWeights::default()
        },
        latency: Duration::from_millis(1),
        ..ChaosConfig::seeded(seed, fault_rate)
    }
}

#[test]
fn sync_pagerank_matches_oracle_under_chaos() {
    let graph = graphgen::web_graph(60, 3, 7);
    let oracle = workloads::oracle::pagerank(&graph, 10);
    let (driver, stats) = chaotic_driver(&graph, storm(42, 0.08));
    let report = SQLoop::new(driver)
        .with_config(recovering(ExecutionMode::Sync))
        .execute_detailed(&workloads::queries::pagerank(10))
        .unwrap();
    assert!(stats.faults() > 0, "8% over a full run must inject faults");
    assert!(
        matches!(report.strategy, Strategy::IterativeParallel { .. }),
        "recovery should keep the run parallel, got {:?}",
        report.strategy
    );
    assert_eq!(report.result.rows.len(), oracle.len());
    for row in &report.result.rows {
        let node = row[0].as_i64().unwrap() as u64;
        let rank = row[1].as_f64().unwrap();
        let expected = oracle[&node];
        assert!(
            (rank - expected).abs() < 1e-9,
            "node {node}: sql {rank} vs oracle {expected} (stats: {stats:?})"
        );
    }
}

#[test]
fn sssp_matches_dijkstra_under_chaos_in_every_mode() {
    let graph = graphgen::web_graph(80, 3, 5);
    let oracle = workloads::oracle::sssp(&graph, 0);
    // short runs can dodge the dice on one mode (worker op counts shift
    // with thread scheduling), so injection is asserted across the sweep
    let mut total_faults = 0;
    for (i, mode) in [
        ExecutionMode::Sync,
        ExecutionMode::Async,
        ExecutionMode::AsyncPrio,
    ]
    .into_iter()
    .enumerate()
    {
        let (driver, stats) = chaotic_driver(&graph, storm(100 + i as u64, 0.10));
        let out = SQLoop::new(driver)
            .with_config(recovering(mode))
            .execute(&workloads::queries::sssp_all(0))
            .unwrap();
        total_faults += stats.faults();
        for row in &out.rows {
            let node = row[0].as_i64().unwrap() as u64;
            let d = row[1].as_f64().unwrap();
            match oracle.get(&node) {
                Some(&expected) => assert!(
                    (d - expected).abs() < 1e-9,
                    "{mode}: node {node} distance {d} vs {expected}"
                ),
                None => assert!(
                    d.is_infinite(),
                    "{mode}: node {node} should be unreachable, got {d}"
                ),
            }
        }
    }
    assert!(total_faults > 0, "10% over three full runs must fault");
}

#[test]
fn async_pagerank_converges_under_chaos() {
    // async modes consume intermediate results, so equal-iteration ranks
    // differ from the synchronous oracle; both converge to total rank = n
    // on a closed graph (every node here has out-edges)
    let graph = graphgen::web_graph(60, 3, 7);
    let n = graph.node_count() as f64;
    for (i, mode) in [ExecutionMode::Async, ExecutionMode::AsyncPrio]
        .into_iter()
        .enumerate()
    {
        let mut config = recovering(mode);
        config.priority = Some(PrioritySpec::highest("SELECT SUM(delta) FROM {}"));
        let (driver, stats) = chaotic_driver(&graph, storm(7 + i as u64, 0.05));
        let out = SQLoop::new(driver)
            .with_config(config)
            .execute(&workloads::queries::pagerank(80))
            .unwrap();
        assert!(stats.faults() > 0, "{mode}: no faults injected");
        let total: f64 = out.rows.iter().map(|r| r[1].as_f64().unwrap()).sum();
        assert!(
            (total - n).abs() / n < 0.02,
            "{mode}: not converged under chaos: {total} vs {n}"
        );
        assert!(total <= n + 1e-6, "{mode}: overshot the rank mass");
    }
}

#[test]
fn replays_are_counted_in_the_report() {
    // statement errors only, so every injected fault is a task failure the
    // scheduler must replay (latency faults would not show up in counters)
    let graph = graphgen::web_graph(50, 3, 3);
    let chaos = ChaosConfig {
        weights: FaultWeights {
            connect_refused: 0,
            stmt_error: 1,
            latency: 0,
            drop: 0,
            ..FaultWeights::default()
        },
        ..ChaosConfig::seeded(17, 0.10)
    };
    let (driver, stats) = chaotic_driver(&graph, chaos);
    let report = SQLoop::new(driver)
        .with_config(recovering(ExecutionMode::Sync))
        .execute_detailed(&workloads::queries::pagerank(8))
        .unwrap();
    assert!(stats.stmt_errors() > 0);
    assert!(!report.recovery.is_clean());
    assert!(
        report.recovery.task_failures > 0 && report.recovery.task_retries > 0,
        "injected statement errors must surface as counted replays: {:?}",
        report.recovery
    );
    assert!(!report.recovery.downgraded);
    // the rendered form the CLI prints
    let text = report.recovery.to_string();
    assert!(text.contains("replay"), "{text}");
}

/// A permanent outage of the message-table SQL (every statement touching a
/// `__msgslot_` scratch table fails, forever) exhausts the replay budget; the
/// run must finish on the single-threaded executor — which never uses
/// message tables — with correct results and the downgrade reported.
#[test]
fn permanent_fault_downgrades_to_single_threaded() {
    let graph = graphgen::web_graph(40, 3, 2);
    let oracle = workloads::oracle::pagerank(&graph, 6);
    let chaos = ChaosConfig {
        match_substring: Some("__msgslot_".into()),
        weights: FaultWeights {
            connect_refused: 0,
            stmt_error: 1,
            latency: 0,
            drop: 0,
            ..FaultWeights::default()
        },
        ..ChaosConfig::seeded(1, 1.0)
    };
    let (driver, stats) = chaotic_driver(&graph, chaos);
    let mut config = recovering(ExecutionMode::Sync);
    config.task_retries = 2; // exhaust the budget quickly
    let report = SQLoop::new(driver)
        .with_config(config)
        .execute_detailed(&workloads::queries::pagerank(6))
        .unwrap();
    match &report.strategy {
        Strategy::IterativeSingle { fallback_reason } => {
            let reason = fallback_reason.as_deref().unwrap_or_default();
            assert!(reason.contains("downgraded"), "reason: {reason}");
        }
        other => panic!("expected a single-threaded downgrade, got {other:?}"),
    }
    assert!(report.recovery.downgraded);
    assert!(report.recovery.task_failures > 0);
    assert!(
        report.recovery.task_retries > 0,
        "the budget was spent before downgrading: {:?}",
        report.recovery
    );
    assert!(stats.stmt_errors() > 0);
    assert!(report.recovery.to_string().contains("downgraded"));
    // and the answer is still right
    assert_eq!(report.result.rows.len(), oracle.len());
    for row in &report.result.rows {
        let node = row[0].as_i64().unwrap() as u64;
        let rank = row[1].as_f64().unwrap();
        assert!((rank - oracle[&node]).abs() < 1e-9, "node {node}");
    }
}

/// A storm that heals: every worker statement faults until the chaos
/// budget drains. The parallel phase exhausts its replay budget and
/// downgrades while faults remain, so the first single-threaded rerun
/// attempts fault too — the downgrade path must retry the rerun instead
/// of dying on one more transient error.
#[test]
fn downgrade_rerun_retries_through_the_tail_of_an_outage() {
    let graph = graphgen::web_graph(30, 3, 2);
    let oracle = workloads::oracle::pagerank(&graph, 6);
    let chaos = ChaosConfig {
        weights: FaultWeights {
            connect_refused: 0,
            stmt_error: 1,
            latency: 0,
            drop: 0,
            ..FaultWeights::default()
        },
        // one worker with task_retries 2 burns 3 faults before the
        // downgrade; the remaining budget lands on the rerun attempts
        max_faults: Some(5),
        ..ChaosConfig::seeded(5, 1.0)
    };
    let (driver, stats) = chaotic_driver(&graph, chaos);
    let mut config = recovering(ExecutionMode::Sync);
    config.threads = 1;
    config.task_retries = 2;
    let report = SQLoop::new(driver)
        .with_config(config)
        .execute_detailed(&workloads::queries::pagerank(6))
        .unwrap();
    assert!(report.recovery.downgraded);
    assert_eq!(stats.faults(), 5, "the whole budget should be consumed");
    assert_eq!(report.result.rows.len(), oracle.len());
    for row in &report.result.rows {
        let node = row[0].as_i64().unwrap() as u64;
        let rank = row[1].as_f64().unwrap();
        assert!((rank - oracle[&node]).abs() < 1e-9, "node {node}");
    }
}

#[test]
fn downgrade_can_be_disabled() {
    let graph = graphgen::web_graph(30, 3, 2);
    let chaos = ChaosConfig {
        match_substring: Some("__msgslot_".into()),
        weights: FaultWeights {
            connect_refused: 0,
            stmt_error: 1,
            latency: 0,
            drop: 0,
            ..FaultWeights::default()
        },
        ..ChaosConfig::seeded(2, 1.0)
    };
    let (driver, _) = chaotic_driver(&graph, chaos);
    let mut config = recovering(ExecutionMode::Sync);
    config.task_retries = 1;
    config.downgrade_on_failure = false;
    let err = SQLoop::new(driver)
        .with_config(config)
        .execute(&workloads::queries::pagerank(4))
        .unwrap_err();
    match &err {
        SqloopError::Task {
            attempt, source, ..
        } => {
            // the original dispatch plus task_retries replays
            assert_eq!(*attempt, 2);
            assert!(source.is_retryable(), "outage errors are transient");
        }
        other => panic!("expected SqloopError::Task, got {other}"),
    }
    assert!(err.is_retryable(), "Task delegates to its source");
}

/// Scratch state left behind by the failed parallel attempt must not leak
/// through the downgrade: after the run, only `edges` remains.
#[test]
fn downgrade_cleans_up_parallel_scratch_state() {
    let graph = graphgen::web_graph(30, 3, 2);
    let db = Database::new(EngineProfile::Postgres);
    let clean: Arc<dyn Driver> = Arc::new(LocalDriver::new(db.clone()));
    let mut conn = clean.connect().unwrap();
    workloads::load_edges(conn.as_mut(), &graph).unwrap();
    let (driver, _) = with_chaos(
        clean,
        ChaosConfig {
            match_substring: Some("__msgslot_".into()),
            weights: FaultWeights {
                connect_refused: 0,
                stmt_error: 1,
                latency: 0,
                drop: 0,
                ..FaultWeights::default()
            },
            skip_connections: 1,
            ..ChaosConfig::seeded(3, 1.0)
        },
    );
    let mut config = recovering(ExecutionMode::Sync);
    config.task_retries = 1;
    let report = SQLoop::new(driver)
        .with_config(config)
        .execute_detailed(&workloads::queries::pagerank(4))
        .unwrap();
    assert!(report.recovery.downgraded);
    let leftovers: Vec<String> = db
        .table_names()
        .into_iter()
        .filter(|t| t != "edges")
        .collect();
    assert!(leftovers.is_empty(), "leftover tables: {leftovers:?}");
}
