//! Canonical SQL generation for the parallel executor: partition tables,
//! the union view, the materialized constant join (`Rmjoin`), and the
//! Compute / Gather task statements (paper §V-B..D).
//!
//! Everything is composed in the canonical dialect; workers run each
//! statement through the translation module for their engine.

use crate::analysis::{ParallelPlan, EDGE_QUAL, SOURCE_QUAL};
use crate::common::{CteNames, CteSchema};
use sqldb::ast::{AggregateFunction, Expr};
use sqldb::profile::EngineProfile;
use sqldb::render;
use sqldb::{Row, Value};

/// Hidden column names used when the aggregate is `AVG` (paper §V-D: AVG
/// gathers need both the partial sum and the partial count).
pub const AVG_SUM_COL: &str = "__avg_sum";
/// See [`AVG_SUM_COL`].
pub const AVG_CNT_COL: &str = "__avg_cnt";
/// Hidden watermark column for idempotent aggregates (MIN/MAX): the delta
/// value last sent out. Idempotent deltas are *not* reset after a Compute
/// (resetting would make any stale incoming message look like progress);
/// instead a row only emits messages when its delta moved past the
/// watermark — Maiter\'s consumed-delta, adapted to idempotent ⊕.
pub const SENT_COL: &str = "__sent";

/// SQL builder bound to one CTE's names, schema and plan.
#[derive(Debug, Clone)]
pub struct SqlGen {
    names: CteNames,
    schema: CteSchema,
    plan: ParallelPlan,
    partitions: usize,
    materialize_join: bool,
}

impl SqlGen {
    /// Creates a builder.
    pub fn new(
        names: CteNames,
        schema: CteSchema,
        plan: ParallelPlan,
        partitions: usize,
        materialize_join: bool,
    ) -> SqlGen {
        SqlGen {
            names,
            schema,
            plan,
            partitions,
            materialize_join,
        }
    }

    /// The plan driving this builder.
    pub fn plan(&self) -> &ParallelPlan {
        &self.plan
    }

    /// The CTE schema.
    pub fn schema(&self) -> &CteSchema {
        &self.schema
    }

    /// The name helpers.
    pub fn names(&self) -> &CteNames {
        &self.names
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    fn is_avg(&self) -> bool {
        self.plan.aggregate == AggregateFunction::Avg
    }

    /// MIN/MAX keep their delta and use a sent-watermark instead of a reset.
    fn is_idempotent(&self) -> bool {
        matches!(
            self.plan.aggregate,
            AggregateFunction::Min | AggregateFunction::Max
        )
    }

    fn key(&self) -> &str {
        self.schema.key()
    }

    fn delta_col(&self) -> &str {
        &self.schema.columns[self.plan.delta_index]
    }

    /// Stable hash bucket for a key value (middleware-side partitioning on
    /// `Rid`, paper §V-B). Integer keys use modulo so the *same* function is
    /// expressible in SQL (`MOD(id, n)`), which lets Compute tasks report
    /// which partitions each message table targets; other types fall back
    /// to a middleware-only hash (and broadcast gathers).
    pub fn bucket(&self, key: &Value) -> usize {
        let n = self.partitions as u64;
        match key {
            Value::Int(i) => i.rem_euclid(self.partitions as i64) as usize,
            other => (stable_hash(other) % n) as usize,
        }
    }

    /// True when message routing (per-partition gather targeting) is
    /// available — requires an integer key column.
    pub fn routing_enabled(&self) -> bool {
        self.schema.types[0] == sqldb::DataType::Int
    }

    /// Query returning the distinct destination partitions of a message
    /// table (only valid when [`SqlGen::routing_enabled`]). The master
    /// normalizes the SQL truncating-modulo to `rem_euclid`.
    pub fn touched_partitions_sql(&self, msg_table: &str) -> String {
        format!(
            "SELECT DISTINCT MOD(id, {}) FROM {msg_table}",
            self.partitions
        )
    }

    /// Names of the hidden bookkeeping columns partition tables carry
    /// beyond the declared CTE schema (all `FLOAT`); the checkpoint dump
    /// needs them to capture the full partition state.
    pub fn hidden_columns(&self) -> Vec<&'static str> {
        let mut cols = Vec::new();
        if self.is_avg() {
            cols.push(AVG_SUM_COL);
            cols.push(AVG_CNT_COL);
        }
        if self.is_idempotent() {
            cols.push(SENT_COL);
        }
        cols
    }

    // -- setup statements -------------------------------------------------

    /// `CREATE TABLE <pt_x> (…)` including hidden bookkeeping columns.
    pub fn create_partition_sql(&self, x: usize) -> String {
        let mut body = self.schema.create_columns_sql(true);
        if self.is_avg() {
            body.push_str(&format!(", {AVG_SUM_COL} FLOAT, {AVG_CNT_COL} FLOAT"));
        }
        if self.is_idempotent() {
            body.push_str(&format!(", {SENT_COL} FLOAT"));
        }
        format!("CREATE TABLE {} ({})", self.names.partition(x), body)
    }

    /// Batched `INSERT` of rows into partition `x`.
    ///
    /// # Panics
    /// Panics if `rows` is empty (callers batch non-empty chunks).
    pub fn insert_partition_sql(&self, x: usize, rows: &[Row]) -> String {
        assert!(!rows.is_empty(), "insert batch must be non-empty");
        let cols = self.schema.columns.join(", ");
        let values = rows
            .iter()
            .map(|row| {
                let vals = row.iter().map(value_literal).collect::<Vec<_>>().join(", ");
                format!("({vals})")
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "INSERT INTO {} ({cols}) VALUES {values}",
            self.names.partition(x)
        )
    }

    /// Initializes the hidden bookkeeping columns (`None` when none exist).
    pub fn init_hidden_sql(&self, x: usize) -> Option<String> {
        let mut sets = Vec::new();
        if self.is_avg() {
            sets.push(format!("{AVG_SUM_COL} = 0.0"));
            sets.push(format!("{AVG_CNT_COL} = 0.0"));
        }
        if self.is_idempotent() {
            sets.push(format!("{SENT_COL} = {}", self.plan.identity_sql()));
        }
        if sets.is_empty() {
            None
        } else {
            Some(format!(
                "UPDATE {} SET {}",
                self.names.partition(x),
                sets.join(", ")
            ))
        }
    }

    /// Redefines `R` as the union view over its partitions (paper §V-B:
    /// "to avoid copying data at the end of Ri back to R, we re-define R as
    /// a view of Rpt1 ∪ … ∪ Rptn").
    pub fn create_view_sql(&self) -> String {
        let cols = self.schema.columns.join(", ");
        let branches = (0..self.partitions)
            .map(|x| format!("SELECT {cols} FROM {}", self.names.partition(x)))
            .collect::<Vec<_>>()
            .join(" UNION ALL ");
        format!("CREATE VIEW {} AS {branches}", self.names.table)
    }

    /// Materializes the constant part of the join (paper §V-B `Rmjoin`):
    /// `__dst`, `__src`, plus every edge attribute the message expression
    /// uses. `R` must still be a base table when this runs.
    pub fn create_mjoin_sql(&self) -> String {
        let mut proj = vec![
            format!("__e.{} AS __dst", self.plan.edge_dst_col),
            format!("__e.{} AS __src", self.plan.edge_src_col),
        ];
        for c in &self.plan.edge_cols_used {
            proj.push(format!("__e.{c} AS {c}"));
        }
        format!(
            "CREATE TABLE {mj} AS SELECT {proj} FROM {edges} AS __e \
             JOIN {r} AS __r1 ON __r1.{k} = __e.{dst} \
             JOIN {r} AS __r2 ON __r2.{k} = __e.{src}",
            mj = self.names.mjoin(),
            proj = proj.join(", "),
            edges = self.plan.edge_table,
            r = self.names.table,
            k = self.key(),
            dst = self.plan.edge_dst_col,
            src = self.plan.edge_src_col,
        )
    }

    /// Index that upgrades the per-partition compute join to an index
    /// nested-loop on every profile (paper §V-C: "indexes on all tables").
    pub fn join_index_sql(&self) -> String {
        if self.materialize_join {
            format!(
                "CREATE INDEX {mj}__isrc ON {mj} (__src)",
                mj = self.names.mjoin()
            )
        } else {
            format!(
                "CREATE INDEX IF NOT EXISTS {e}__isrc ON {e} ({src})",
                e = self.plan.edge_table,
                src = self.plan.edge_src_col
            )
        }
    }

    // -- Compute task (paper §V-C, first + second step) --------------------

    /// Statement 1 of Compute(x): build the message table from partition
    /// `x`'s pending deltas, grouped by destination id.
    pub fn compute_message_sql(&self, x: usize, msg_table: &str) -> String {
        format!(
            "CREATE TABLE {msg_table} AS {}",
            self.message_select_body(x)
        )
    }

    /// `CREATE TABLE <slot> (…)` for a reusable message slot — the
    /// generation-stable replacement for per-round `CREATE TABLE … AS`.
    /// Slot names carry no round number, so every round's statements are
    /// textually identical and the plan cache serves them without a parse.
    pub fn create_message_slot_sql(&self, slot: &str) -> String {
        let id_ty = self.schema.types[0];
        if self.is_avg() {
            format!("CREATE TABLE {slot} (id {id_ty}, vsum FLOAT, vcnt FLOAT)")
        } else {
            format!("CREATE TABLE {slot} (id {id_ty}, val FLOAT)")
        }
    }

    /// `DELETE FROM <slot>`: truncates a reused message slot before the
    /// refill (which also makes a replayed Compute idempotent — the replay
    /// clears whatever a half-finished predecessor left behind).
    pub fn clear_message_slot_sql(&self, slot: &str) -> String {
        format!("DELETE FROM {slot}")
    }

    /// Statement 1 of Compute(x) in slot form: `INSERT INTO <slot> SELECT …`
    /// with the same body [`SqlGen::compute_message_sql`] materializes.
    pub fn insert_message_sql(&self, x: usize, slot: &str) -> String {
        let cols = if self.is_avg() {
            "id, vsum, vcnt"
        } else {
            "id, val"
        };
        format!(
            "INSERT INTO {slot} ({cols}) {}",
            self.message_select_body(x)
        )
    }

    /// The shared `SELECT` body both message-table forms project: partition
    /// `x`'s pending deltas joined to the (materialized) edges, aggregated
    /// per destination id.
    fn message_select_body(&self, x: usize) -> String {
        let msg_expr = render_expr(&self.plan.message_expr);
        let agg = self.plan.aggregate;
        let projection = if self.is_avg() {
            format!("SUM({msg_expr}) AS vsum, COUNT({msg_expr}) AS vcnt")
        } else {
            // the §V-D correction: Compute emits *partial counts* for COUNT
            // (Gather then SUMs them rather than re-counting messages)
            let f = match agg {
                AggregateFunction::Sum => "SUM",
                AggregateFunction::Count => "COUNT",
                AggregateFunction::Min => "MIN",
                AggregateFunction::Max => "MAX",
                AggregateFunction::Avg => unreachable!(),
            };
            format!("{f}({msg_expr}) AS val")
        };
        let mut filters = vec![self.pending_predicate(SOURCE_QUAL)];
        for f in &self.plan.source_filter {
            filters.push(render_expr(f));
        }
        let (from, dst_ref) = if self.materialize_join {
            (
                format!(
                    "{mj} AS {EDGE_QUAL} JOIN {pt} AS {SOURCE_QUAL} \
                     ON {EDGE_QUAL}.__src = {SOURCE_QUAL}.{k}",
                    mj = self.names.mjoin(),
                    pt = self.names.partition(x),
                    k = self.key(),
                ),
                format!("{EDGE_QUAL}.__dst"),
            )
        } else {
            (
                format!(
                    "{edges} AS {EDGE_QUAL} JOIN {pt} AS {SOURCE_QUAL} \
                     ON {EDGE_QUAL}.{src} = {SOURCE_QUAL}.{k}",
                    edges = self.plan.edge_table,
                    pt = self.names.partition(x),
                    src = self.plan.edge_src_col,
                    k = self.key(),
                ),
                format!("{EDGE_QUAL}.{}", self.plan.edge_dst_col),
            )
        };
        format!(
            "SELECT {dst_ref} AS id, {projection} FROM {from} WHERE {} GROUP BY {dst_ref}",
            filters.join(" AND "),
        )
    }

    /// Statement 2 of Compute(x): apply local column updates and consume
    /// (reset) the delta column.
    pub fn compute_update_sql(&self, x: usize) -> String {
        let mut sets: Vec<String> = self
            .plan
            .local_exprs
            .iter()
            .map(|(i, e)| format!("{} = {}", self.schema.columns[*i], render_expr(e)))
            .collect();
        if self.is_idempotent() {
            // no reset: advance the sent-watermark to the emitted delta
            sets.push(format!("{SENT_COL} = {}", self.delta_col()));
        } else {
            sets.push(format!(
                "{} = {}",
                self.delta_col(),
                self.plan.identity_sql()
            ));
        }
        if self.is_avg() {
            sets.push(format!("{AVG_SUM_COL} = 0.0"));
            sets.push(format!("{AVG_CNT_COL} = 0.0"));
        }
        format!("UPDATE {} SET {}", self.names.partition(x), sets.join(", "))
    }

    /// Counts rows of a freshly created message table (so empty tables can
    /// be dropped instead of registered).
    pub fn message_count_sql(&self, msg_table: &str) -> String {
        format!("SELECT COUNT(*) FROM {msg_table}")
    }

    // -- Gather task (paper §V-C/D) ----------------------------------------

    /// Gather(x): fold every unread message table into the delta column in
    /// a single statement (paper §V-C: "a single query that contains the
    /// union of all the message tables").
    ///
    /// # Panics
    /// Panics if `msg_tables` is empty.
    pub fn gather_sql(&self, x: usize, msg_tables: &[&str]) -> String {
        assert!(!msg_tables.is_empty(), "gather needs at least one table");
        let pt = self.names.partition(x);
        let k = self.key();
        let delta = self.delta_col();
        if self.is_avg() {
            let unions = msg_tables
                .iter()
                .map(|m| format!("SELECT id, vsum, vcnt FROM {m}"))
                .collect::<Vec<_>>()
                .join(" UNION ALL ");
            return format!(
                "UPDATE {pt} SET \
                 {AVG_SUM_COL} = {AVG_SUM_COL} + inc.vsum, \
                 {AVG_CNT_COL} = {AVG_CNT_COL} + inc.vcnt, \
                 {delta} = ({AVG_SUM_COL} + inc.vsum) / ({AVG_CNT_COL} + inc.vcnt) \
                 FROM (SELECT id, SUM(vsum) AS vsum, SUM(vcnt) AS vcnt \
                       FROM ({unions}) AS msgs GROUP BY id) AS inc \
                 WHERE {pt}.{k} = inc.id"
            );
        }
        let unions = msg_tables
            .iter()
            .map(|m| format!("SELECT id, val FROM {m}"))
            .collect::<Vec<_>>()
            .join(" UNION ALL ");
        // pre-fold across tables, then accumulate into the delta column
        let (pre, fold) = match self.plan.aggregate {
            AggregateFunction::Sum | AggregateFunction::Count => {
                ("SUM", format!("{delta} + inc.val"))
            }
            AggregateFunction::Min => ("MIN", format!("LEAST({delta}, inc.val)")),
            AggregateFunction::Max => ("MAX", format!("GREATEST({delta}, inc.val)")),
            AggregateFunction::Avg => unreachable!("handled above"),
        };
        format!(
            "UPDATE {pt} SET {delta} = {fold} \
             FROM (SELECT id, {pre}(val) AS val FROM ({unions}) AS msgs GROUP BY id) AS inc \
             WHERE {pt}.{k} = inc.id"
        )
    }

    /// Predicate selecting rows whose delta is *pending* (≠ the aggregate's
    /// identity): identity-valued deltas produce no information, so Compute
    /// skips them — this is what makes traversal workloads touch only
    /// active partitions.
    fn pending_predicate(&self, qual: &str) -> String {
        let d = format!("{qual}.{}", self.delta_col());
        match self.plan.aggregate {
            AggregateFunction::Min => format!("{d} < Infinity"),
            AggregateFunction::Max => format!("{d} > -Infinity"),
            _ => format!("{d} != 0.0"),
        }
    }

    /// The same pending predicate without a qualifier, for partition-level
    /// activity probes.
    pub fn pending_count_sql(&self, x: usize) -> String {
        let d = self.delta_col();
        let pred = match self.plan.aggregate {
            AggregateFunction::Min => format!("{d} < {SENT_COL}"),
            AggregateFunction::Max => format!("{d} > {SENT_COL}"),
            _ => format!("{d} != 0.0"),
        };
        format!(
            "SELECT COUNT(*) FROM {} WHERE {pred}",
            self.names.partition(x)
        )
    }

    /// Drops every scratch object this builder may have created.
    pub fn cleanup_sql(&self) -> Vec<String> {
        let mut out = vec![
            format!("DROP VIEW IF EXISTS {}", self.names.table),
            format!("DROP TABLE IF EXISTS {}", self.names.mjoin()),
            format!("DROP TABLE IF EXISTS {}", self.names.delta_snapshot()),
        ];
        for x in 0..self.partitions {
            out.push(format!("DROP TABLE IF EXISTS {}", self.names.partition(x)));
        }
        out
    }
}

/// Deterministic, platform-independent hash for partitioning values.
pub fn stable_hash(v: &Value) -> u64 {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    match v {
        Value::Int(i) => (*i as u64).wrapping_mul(GOLDEN),
        Value::Float(f) => f.to_bits().wrapping_mul(GOLDEN),
        Value::Text(s) => {
            // FNV-1a
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in s.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        }
        Value::Bool(b) => u64::from(*b).wrapping_mul(GOLDEN),
        Value::Null => 0,
    }
}

fn render_expr(e: &Expr) -> String {
    render::expr_to_sql(e, &EngineProfile::Postgres.dialect())
}

/// Canonical-dialect SQL literal for a value (`Infinity` literals included);
/// the checkpoint restore path uses this to re-INSERT dumped rows.
pub(crate) fn value_literal(v: &Value) -> String {
    render::expr_to_sql(
        &Expr::Literal(v.clone()),
        &EngineProfile::Postgres.dialect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, AnalysisOutcome};
    use crate::grammar::{parse, SqloopQuery};
    use crate::translate::translate_sql;
    use sqldb::DataType;

    fn pagerank_gen(partitions: usize, materialize: bool) -> SqlGen {
        let cte = match parse(
            "WITH ITERATIVE pr(Node, Rank, Delta) AS (\
             SELECT src, 0, 0.15 FROM edges GROUP BY src \
             ITERATE \
             SELECT pr.Node, COALESCE(pr.Rank + pr.Delta, 0.15), \
             COALESCE(0.85 * SUM(ir.Delta * ie.weight), 0.0) \
             FROM pr LEFT JOIN edges AS ie ON pr.Node = ie.dst \
             LEFT JOIN pr AS ir ON ir.Node = ie.src \
             GROUP BY pr.Node UNTIL 10 ITERATIONS) SELECT * FROM pr",
        )
        .unwrap()
        {
            SqloopQuery::Iterative(c) => c,
            _ => unreachable!(),
        };
        let cols = vec!["node".to_string(), "rank".to_string(), "delta".to_string()];
        let plan = match analyze(&cte, &cols).unwrap() {
            AnalysisOutcome::Parallelizable(p) => p,
            AnalysisOutcome::NotParallelizable { reason } => panic!("{reason}"),
        };
        let schema = CteSchema {
            columns: cols,
            types: vec![DataType::Int, DataType::Float, DataType::Float],
        };
        SqlGen::new(CteNames::new("pr"), schema, plan, partitions, materialize)
    }

    /// every generated statement must be translatable for every profile
    fn check_all_dialects(sql: &str) {
        for p in EngineProfile::ALL {
            translate_sql(sql, p).unwrap_or_else(|e| panic!("{p}: {e}\nsql: {sql}"));
        }
    }

    #[test]
    fn all_generated_statements_parse_in_all_dialects() {
        let g = pagerank_gen(4, true);
        check_all_dialects(&g.create_partition_sql(0));
        check_all_dialects(&g.create_view_sql());
        check_all_dialects(&g.create_mjoin_sql());
        check_all_dialects(&g.join_index_sql());
        check_all_dialects(&g.compute_message_sql(1, "pr__msg_1_0"));
        check_all_dialects(&g.create_message_slot_sql("pr__msgslot_1_0"));
        check_all_dialects(&g.clear_message_slot_sql("pr__msgslot_1_0"));
        check_all_dialects(&g.insert_message_sql(1, "pr__msgslot_1_0"));
        check_all_dialects(&g.compute_update_sql(1));
        check_all_dialects(&g.message_count_sql("pr__msg_1_0"));
        check_all_dialects(&g.gather_sql(2, &["pr__msg_1_0", "pr__msg_3_4"]));
        check_all_dialects(&g.pending_count_sql(0));
        for s in g.cleanup_sql() {
            check_all_dialects(&s);
        }
        let rows = vec![
            vec![Value::Int(1), Value::Float(0.0), Value::Float(0.15)],
            vec![Value::Int(2), Value::Float(0.0), Value::Float(0.15)],
        ];
        check_all_dialects(&g.insert_partition_sql(0, &rows));
    }

    #[test]
    fn compute_message_sql_shape() {
        let g = pagerank_gen(4, true);
        let sql = g.compute_message_sql(1, "pr__msg_1_0");
        assert!(sql.contains("CREATE TABLE pr__msg_1_0"), "{sql}");
        assert!(sql.contains("SUM"), "{sql}");
        assert!(sql.contains("pr__mjoin"), "{sql}");
        assert!(sql.contains("GROUP BY"), "{sql}");
        // pending filter excludes identity deltas
        assert!(sql.contains("!= 0.0"), "{sql}");
        // the 0.85 scale is folded into the per-message expression
        assert!(sql.contains("0.85"), "{sql}");
    }

    #[test]
    fn slot_statements_are_generation_stable() {
        let g = pagerank_gen(4, true);
        // the slot form carries no round number: refilling the same slot in
        // two different rounds produces byte-identical SQL (the templating
        // property the plan cache depends on)
        let a = g.insert_message_sql(1, "pr__msgslot_1_0");
        let b = g.insert_message_sql(1, "pr__msgslot_1_0");
        assert_eq!(a, b);
        assert!(
            a.starts_with("INSERT INTO pr__msgslot_1_0 (id, val) SELECT"),
            "{a}"
        );
        // and shares its select body with the CTAS form
        let ctas = g.compute_message_sql(1, "m");
        let body = a.split_once(" SELECT").unwrap().1;
        assert!(ctas.ends_with(&format!("SELECT{body}")), "{ctas}\n{a}");
        let ddl = g.create_message_slot_sql("pr__msgslot_1_0");
        assert_eq!(ddl, "CREATE TABLE pr__msgslot_1_0 (id INT, val FLOAT)");
        assert_eq!(
            g.clear_message_slot_sql("pr__msgslot_1_0"),
            "DELETE FROM pr__msgslot_1_0"
        );
    }

    #[test]
    fn non_materialized_variant_joins_edges_directly() {
        let g = pagerank_gen(4, false);
        let sql = g.compute_message_sql(0, "m");
        assert!(sql.contains("edges AS"), "{sql}");
        assert!(!sql.contains("mjoin"), "{sql}");
        let idx = g.join_index_sql();
        assert!(idx.contains("ON edges"), "{idx}");
    }

    #[test]
    fn gather_sql_folds_with_the_right_operator() {
        let g = pagerank_gen(4, true);
        let sql = g.gather_sql(0, &["m1", "m2"]);
        assert!(
            sql.contains("delta + inc.val") || sql.contains("\"delta\" + inc.val"),
            "{sql}"
        );
        assert!(sql.contains("UNION ALL"), "{sql}");
        assert!(sql.contains("SUM"), "{sql}");
    }

    #[test]
    fn compute_update_resets_delta() {
        let g = pagerank_gen(4, true);
        let sql = g.compute_update_sql(2);
        assert!(sql.contains("delta = 0.0"), "{sql}");
        assert!(sql.contains("rank = "), "{sql}");
    }

    #[test]
    fn bucket_is_stable_and_in_range() {
        let g = pagerank_gen(7, true);
        for i in 0..100i64 {
            let b1 = g.bucket(&Value::Int(i));
            let b2 = g.bucket(&Value::Int(i));
            assert_eq!(b1, b2);
            assert!(b1 < 7);
        }
        // text keys hash too
        assert!(g.bucket(&Value::Text("abc".into())) < 7);
    }

    #[test]
    fn buckets_spread_reasonably() {
        let g = pagerank_gen(8, true);
        let mut counts = vec![0usize; 8];
        for i in 0..8000i64 {
            counts[g.bucket(&Value::Int(i))] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                *c > 500 && *c < 1500,
                "bucket {i} holds {c} of 8000 — bad spread: {counts:?}"
            );
        }
    }

    #[test]
    fn view_unions_every_partition() {
        let g = pagerank_gen(3, true);
        let sql = g.create_view_sql();
        assert_eq!(sql.matches("UNION ALL").count(), 2);
        assert!(sql.contains("pr__pt0") && sql.contains("pr__pt2"), "{sql}");
    }
}
