//! Named dataset stand-ins for the paper's evaluation (§VI-A).
//!
//! The paper uses three SNAP datasets: web-Google (5,105,039 edges, for
//! PageRank), a Twitter ego network (1,768,149 edges, for SSSP), and
//! web-BerkStan (7,600,595 edges, for the descendant query). Those exact
//! files are not redistributable here, so each stand-in generator preserves
//! the structural property its experiment depends on; `scale` trades size
//! for runtime with `scale = 1.0` targeting laptop-sized graphs (~50k edges)
//! rather than the paper's testbed sizes.

use crate::generate::{ego_network, two_domain_web, web_graph};
use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// Fixed seed so every run of the benchmark suite sees identical graphs.
pub const DATASET_SEED: u64 = 0x5100_1007;

/// A named dataset: graph plus provenance for reports.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short name used in experiment output.
    pub name: &'static str,
    /// Which SNAP dataset this stands in for.
    pub stands_in_for: &'static str,
    /// The generated graph.
    pub graph: Graph,
}

/// Summary row for experiment reports.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// SNAP dataset this stands in for.
    pub stands_in_for: String,
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
}

impl Dataset {
    /// Builds the report summary.
    pub fn summary(&self) -> DatasetSummary {
        DatasetSummary {
            name: self.name.to_string(),
            stands_in_for: self.stands_in_for.to_string(),
            nodes: self.graph.node_count(),
            edges: self.graph.edge_count(),
        }
    }
}

/// Power-law web graph (stand-in for SNAP web-Google; PageRank workload).
pub fn google_web_like(scale: f64) -> Dataset {
    let nodes = scaled(6_000, scale);
    Dataset {
        name: "web-google-like",
        stands_in_for: "SNAP web-Google (5,105,039 edges)",
        graph: web_graph(nodes, 8, DATASET_SEED),
    }
}

/// Ego/social network (stand-in for the SNAP Twitter dataset; SSSP workload).
pub fn twitter_like(scale: f64) -> Dataset {
    let circles = scaled(60, scale);
    Dataset {
        name: "twitter-like",
        stands_in_for: "SNAP Twitter ego networks (1,768,149 edges)",
        graph: ego_network(circles, 40, 6, DATASET_SEED + 1),
    }
}

/// Two-domain deep web graph (stand-in for SNAP web-BerkStan; descendant
/// query workload — contains click-paths well over 100 hops at any scale ≥ 1).
pub fn berkstan_like(scale: f64) -> Dataset {
    let width = scaled(12, scale);
    Dataset {
        name: "web-berkstan-like",
        stands_in_for: "SNAP web-BerkStan (7,600,595 edges)",
        graph: two_domain_web(130, width, DATASET_SEED + 2),
    }
}

fn scaled(base: usize, scale: f64) -> usize {
    assert!(scale > 0.0, "scale must be positive");
    ((base as f64 * scale).round() as usize).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_sizes_are_laptop_friendly() {
        let g = google_web_like(1.0);
        assert!(g.graph.edge_count() > 20_000, "{}", g.graph);
        assert!(g.graph.edge_count() < 200_000, "{}", g.graph);
        let t = twitter_like(1.0);
        assert!(t.graph.edge_count() > 5_000, "{}", t.graph);
        let b = berkstan_like(1.0);
        assert!(b.graph.edge_count() > 5_000, "{}", b.graph);
    }

    #[test]
    fn berkstan_like_supports_100_click_queries() {
        let d = berkstan_like(0.5);
        let hops = d.graph.bfs_hops(0);
        assert!(hops.values().any(|&h| h >= 100));
    }

    #[test]
    fn scaling_shrinks_graphs() {
        let small = google_web_like(0.1);
        let big = google_web_like(1.0);
        assert!(small.graph.edge_count() < big.graph.edge_count() / 4);
    }

    #[test]
    fn summaries_serialize() {
        let s = twitter_like(0.1).summary();
        assert_eq!(s.name, "twitter-like");
        assert!(s.edges > 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = google_web_like(0.0);
    }
}
