//! Scheduler-supervision integration tests (DESIGN.md §16): seeded chaos
//! injects infinitely-stalled workers and panicking statements; the
//! supervisor must turn each into a typed verdict — abandon, replace,
//! replay, or downgrade — and the run must still reach the oracle
//! fixpoint. No test here may ever hang: every barrier wait is bounded by
//! `supervisor_poll`.

use dbcp::{
    with_chaos, ChaosConfig, ChaosStats, Driver, FaultKind, FaultWeights, LocalDriver,
    ScheduledFault,
};
use sqldb::{Database, EngineProfile, Value};
use sqloop::{ExecutionMode, PrioritySpec, SQLoop, SqloopConfig, SqloopError, Strategy};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// The `sqloop.supervisor.*` counters live in the process-global metrics
/// registry, and the test harness runs this file's tests on parallel
/// threads — exact delta assertions need the file serialized.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn counter(name: &str) -> Arc<obs::Counter> {
    obs::global().counter(name)
}

/// Loads `graph` into a fresh engine over a clean connection, then wraps
/// the driver in chaos per `config` with the run's control connection
/// shielded — faults land on the workers, where supervision lives.
fn chaotic_driver(graph: &graphgen::Graph, config: ChaosConfig) -> (Arc<dyn Driver>, ChaosStats) {
    let db = Database::new(EngineProfile::Postgres);
    let clean: Arc<dyn Driver> = Arc::new(LocalDriver::new(db));
    let mut conn = clean.connect().unwrap();
    workloads::load_edges(conn.as_mut(), graph).unwrap();
    let (driver, stats) = with_chaos(
        clean,
        ChaosConfig {
            skip_connections: 1,
            ..config
        },
    );
    (driver, stats)
}

/// A supervised config: three workers over eight partitions, a generous
/// replay budget, zero backoff, and a stall verdict threshold far above
/// any honest task on these tiny graphs yet far below the test timeout.
fn supervised(mode: ExecutionMode) -> SqloopConfig {
    let mut config = SqloopConfig {
        mode,
        threads: 3,
        partitions: 8,
        task_retries: 6,
        retry_backoff: Duration::ZERO,
        stall_timeout: Some(Duration::from_millis(300)),
        ..SqloopConfig::default()
    };
    if mode == ExecutionMode::AsyncPrio {
        config.priority = Some(PrioritySpec::lowest("SELECT MIN(delta) FROM {}"));
    }
    config
}

/// Only the given fault kind fires on the random path; everything else,
/// including connect refusals, stays off.
fn only(kind: FaultKind) -> FaultWeights {
    FaultWeights {
        connect_refused: 0,
        stmt_error: 0,
        latency: 0,
        drop: 0,
        stall: u32::from(matches!(kind, FaultKind::StallMs)),
        panic: u32::from(matches!(kind, FaultKind::Panic)),
    }
}

/// A band of `StallForever` faults pinned over ops `[from, to)` with a
/// one-fault budget: the first *worker* statement whose global op index
/// lands in the band hangs until [`ChaosStats::heal_stalls`]. Shielded
/// master ops skip the schedule without spending the budget, so the stall
/// is guaranteed to hit a worker as long as workers execute anywhere in
/// the band.
fn stall_band(from: u64, to: u64) -> ChaosConfig {
    ChaosConfig {
        fault_rate: 0.0,
        max_faults: Some(1),
        schedule: (from..to)
            .map(|nth_op| ScheduledFault {
                nth_op,
                kind: FaultKind::StallForever,
            })
            .collect(),
        ..ChaosConfig::default()
    }
}

fn assert_sssp_fixpoint(
    mode: ExecutionMode,
    rows: &[Vec<Value>],
    oracle: &std::collections::HashMap<u64, f64>,
) {
    for row in rows {
        let node = row[0].as_i64().unwrap() as u64;
        let d = row[1].as_f64().unwrap();
        match oracle.get(&node) {
            Some(&expected) => assert!(
                (d - expected).abs() < 1e-9,
                "{mode}: node {node} distance {d} vs {expected}"
            ),
            None => assert!(
                d.is_infinite(),
                "{mode}: node {node} should be unreachable, got {d}"
            ),
        }
    }
}

/// The tentpole end to end: an injected infinite hang in every parallel
/// mode. The worker's heartbeat goes silent past `stall_timeout`, the
/// supervisor abandons it, spawns a replacement, replays the partition's
/// task, and the run converges to the Dijkstra oracle — never a hang,
/// with `supervisor.*` metrics matching the injection counts exactly.
#[test]
fn stalled_worker_is_replaced_and_the_run_reaches_the_oracle() {
    let _gate = gate();
    let graph = graphgen::web_graph(60, 3, 5);
    let oracle = workloads::oracle::sssp(&graph, 0);
    let stalls_detected = counter("sqloop.supervisor.stalls_detected");
    let replacements = counter("sqloop.supervisor.worker_replacements");
    let panics_caught = counter("sqloop.supervisor.panics_caught");
    for mode in [
        ExecutionMode::Sync,
        ExecutionMode::Async,
        ExecutionMode::AsyncPrio,
    ] {
        let (stalls0, repl0, panics0) = (
            stalls_detected.get(),
            replacements.get(),
            panics_caught.get(),
        );
        let (driver, stats) = chaotic_driver(&graph, stall_band(90, 150));
        let report = SQLoop::new(driver)
            .with_config(supervised(mode))
            .execute_detailed(&workloads::queries::sssp_all(0))
            .unwrap();
        assert_eq!(stats.stalls(), 1, "{mode}: the band must stall one worker");
        assert!(
            matches!(report.strategy, Strategy::IterativeParallel { .. }),
            "{mode}: replacement should keep the run parallel, got {:?}",
            report.strategy
        );
        assert_eq!(report.recovery.stalls, 1, "{mode}: {:?}", report.recovery);
        assert_eq!(
            report.recovery.worker_replacements, 1,
            "{mode}: {:?}",
            report.recovery
        );
        assert!(
            report.recovery.task_retries >= 1,
            "{mode}: the stalled task must have been replayed: {:?}",
            report.recovery
        );
        assert!(!report.recovery.downgraded, "{mode}");
        assert_eq!(stalls_detected.get() - stalls0, 1, "{mode}");
        assert_eq!(replacements.get() - repl0, 1, "{mode}");
        assert_eq!(panics_caught.get() - panics0, 0, "{mode}");
        assert_sssp_fixpoint(mode, &report.result.rows, &oracle);
        // the rendered form the CLI prints
        let text = report.recovery.to_string();
        assert!(
            text.contains("stall") && text.contains("replaced"),
            "{text}"
        );
        // release the abandoned worker still parked inside the injected
        // stall so its thread can exit
        stats.heal_stalls();
    }
}

/// Injected statement panics in every parallel mode: each unwinds into the
/// worker's task boundary, degrades into a retryable `WorkerPanic`, and is
/// replayed — the worker thread itself survives, so no replacement is
/// needed and the run stays parallel all the way to the oracle fixpoint.
#[test]
fn worker_panics_are_caught_and_replayed_to_the_oracle_fixpoint() {
    let _gate = gate();
    let graph = graphgen::web_graph(60, 3, 5);
    let oracle = workloads::oracle::sssp(&graph, 0);
    let stalls_detected = counter("sqloop.supervisor.stalls_detected");
    let replacements = counter("sqloop.supervisor.worker_replacements");
    let panics_caught = counter("sqloop.supervisor.panics_caught");
    for (i, mode) in [
        ExecutionMode::Sync,
        ExecutionMode::Async,
        ExecutionMode::AsyncPrio,
    ]
    .into_iter()
    .enumerate()
    {
        let panics0 = panics_caught.get();
        let (stalls0, repl0) = (stalls_detected.get(), replacements.get());
        // every worker statement would panic, but the two-fault budget
        // heals the outage after two hits — each caught and replayed
        let (driver, stats) = chaotic_driver(
            &graph,
            ChaosConfig {
                weights: only(FaultKind::Panic),
                max_faults: Some(2),
                ..ChaosConfig::seeded(200 + i as u64, 1.0)
            },
        );
        let report = SQLoop::new(driver)
            .with_config(supervised(mode))
            .execute_detailed(&workloads::queries::sssp_all(0))
            .unwrap();
        assert_eq!(stats.panics(), 2, "{mode}: both budget slots must fire");
        assert!(
            matches!(report.strategy, Strategy::IterativeParallel { .. }),
            "{mode}: caught panics should keep the run parallel, got {:?}",
            report.strategy
        );
        assert_eq!(
            report.recovery.worker_panics, 2,
            "{mode}: {:?}",
            report.recovery
        );
        assert!(
            report.recovery.task_retries >= 2,
            "{mode}: each caught panic must be replayed: {:?}",
            report.recovery
        );
        assert_eq!(
            report.recovery.worker_replacements, 0,
            "{mode}: a surviving worker must not be replaced: {:?}",
            report.recovery
        );
        assert_eq!(panics_caught.get() - panics0, 2, "{mode}");
        assert_eq!(stalls_detected.get() - stalls0, 0, "{mode}");
        assert_eq!(replacements.get() - repl0, 0, "{mode}");
        assert_sssp_fixpoint(mode, &report.result.rows, &oracle);
        assert!(report.recovery.to_string().contains("panic"));
    }
}

/// Brief stalls below `stall_timeout` must NOT be remediated: a slow
/// worker is slow, not dead, and killing it would risk applying its task
/// twice. The injected 50ms hangs finish on their own well under the
/// 300ms verdict threshold.
#[test]
fn brief_stalls_below_the_timeout_are_not_remediated() {
    let _gate = gate();
    let graph = graphgen::web_graph(60, 3, 5);
    let oracle = workloads::oracle::sssp(&graph, 0);
    let stalls_detected = counter("sqloop.supervisor.stalls_detected");
    let replacements = counter("sqloop.supervisor.worker_replacements");
    let (stalls0, repl0) = (stalls_detected.get(), replacements.get());
    let (driver, stats) = chaotic_driver(
        &graph,
        ChaosConfig {
            weights: only(FaultKind::StallMs),
            max_faults: Some(2),
            stall: Duration::from_millis(50),
            ..ChaosConfig::seeded(31, 1.0)
        },
    );
    let report = SQLoop::new(driver)
        .with_config(supervised(ExecutionMode::Sync))
        .execute_detailed(&workloads::queries::sssp_all(0))
        .unwrap();
    assert_eq!(stats.stalls(), 2, "both finite stalls must fire");
    assert_eq!(report.recovery.stalls, 0, "{:?}", report.recovery);
    assert_eq!(
        report.recovery.worker_replacements, 0,
        "{:?}",
        report.recovery
    );
    assert_eq!(report.recovery.task_failures, 0, "{:?}", report.recovery);
    assert_eq!(stalls_detected.get() - stalls0, 0);
    assert_eq!(replacements.get() - repl0, 0);
    assert_sssp_fixpoint(ExecutionMode::Sync, &report.result.rows, &oracle);
}

/// A statement that panics *every* time it is replayed exhausts the task
/// budget; the typed `WorkerPanic` is retryable, so the run downgrades to
/// the single-threaded executor — which never touches message tables —
/// and still produces oracle-correct results.
#[test]
fn perma_panicking_statements_exhaust_the_budget_and_downgrade() {
    let _gate = gate();
    let graph = graphgen::web_graph(40, 3, 2);
    let oracle = workloads::oracle::pagerank(&graph, 6);
    let (driver, stats) = chaotic_driver(
        &graph,
        ChaosConfig {
            weights: only(FaultKind::Panic),
            match_substring: Some("__msgslot_".into()),
            ..ChaosConfig::seeded(4, 1.0)
        },
    );
    let mut config = supervised(ExecutionMode::Sync);
    config.task_retries = 2; // exhaust the budget quickly
    let report = SQLoop::new(driver)
        .with_config(config)
        .execute_detailed(&workloads::queries::pagerank(6))
        .unwrap();
    match &report.strategy {
        Strategy::IterativeSingle { fallback_reason } => {
            let reason = fallback_reason.as_deref().unwrap_or_default();
            assert!(reason.contains("downgraded"), "reason: {reason}");
        }
        other => panic!("expected a single-threaded downgrade, got {other:?}"),
    }
    assert!(report.recovery.downgraded);
    assert!(stats.panics() > 0);
    assert!(
        report.recovery.worker_panics > 0,
        "every failed attempt was a caught panic: {:?}",
        report.recovery
    );
    assert_eq!(report.result.rows.len(), oracle.len());
    for row in &report.result.rows {
        let node = row[0].as_i64().unwrap() as u64;
        let rank = row[1].as_f64().unwrap();
        assert!((rank - oracle[&node]).abs() < 1e-9, "node {node}");
    }
}

/// The single-threaded executor's panic boundary: a panic inside a round
/// statement surfaces as a typed `WorkerPanic` error — it must not unwind
/// into the caller — and the engine stays usable because the session was
/// rolled back first.
#[test]
fn single_threaded_panic_is_absorbed_as_a_typed_error() {
    let _gate = gate();
    let graph = graphgen::web_graph(30, 3, 2);
    let db = Database::new(EngineProfile::Postgres);
    let clean: Arc<dyn Driver> = Arc::new(LocalDriver::new(db));
    let mut conn = clean.connect().unwrap();
    workloads::load_edges(conn.as_mut(), &graph).unwrap();
    drop(conn);
    let panics_caught = counter("sqloop.supervisor.panics_caught");
    let panics0 = panics_caught.get();
    // target the Rtmp clear — the only DELETE against the scratch table,
    // issued exclusively inside the executor's per-round panic boundary
    // (setup and cleanup touch the table via DROP/CREATE only)
    let (driver, stats) = with_chaos(
        clean,
        ChaosConfig {
            weights: only(FaultKind::Panic),
            match_substring: Some("DELETE FROM \"pagerank__tmp\"".into()),
            max_faults: Some(1),
            ..ChaosConfig::seeded(9, 1.0)
        },
    );
    let mut config = SqloopConfig {
        mode: ExecutionMode::Single,
        ..SqloopConfig::default()
    };
    config.downgrade_on_failure = false;
    let err = SQLoop::new(Arc::clone(&driver) as Arc<dyn Driver>)
        .with_config(config)
        .execute(&workloads::queries::pagerank(4))
        .unwrap_err();
    match &err {
        SqloopError::WorkerPanic { worker, detail } => {
            assert_eq!(*worker, None);
            assert!(detail.contains("single-threaded iteration"), "{detail}");
        }
        other => panic!("expected a typed WorkerPanic, got {other}"),
    }
    assert!(err.is_retryable(), "an injected panic is transient");
    assert_eq!(stats.panics(), 1);
    assert_eq!(panics_caught.get() - panics0, 1);
    // the rollback ran and the fault budget is spent: a fresh connection
    // sees a healthy engine
    let mut conn = driver.connect().unwrap();
    let r = conn.query("SELECT COUNT(*) FROM edges").unwrap();
    assert!(matches!(r.rows[0][0], Value::Int(n) if n > 0));
}
