//! Query analysis for automatic parallelization (paper §V-A).
//!
//! SQLoop parallelizes iterative parts of the *incoming-information* shape:
//!
//! ```sql
//! SELECT R.key, <local exprs over R>, COALESCE([scale *] AGG(msg over S, E), dflt)
//! FROM R
//! LEFT JOIN <edges> AS E ON R.key = E.<dst>
//! LEFT JOIN R       AS S ON S.key = E.<src>
//! [WHERE pred]
//! GROUP BY R.key
//! ```
//!
//! where `AGG ∈ {SUM, MIN, MAX, COUNT, AVG}` and the self-join `S` carries
//! the incoming information. The analyzer extracts everything the parallel
//! executor needs; queries outside this class report
//! [`NotParallelizable`](AnalysisOutcome::NotParallelizable) with a reason
//! and fall back to the single-threaded executor, exactly as in the paper.

use crate::error::{SqloopError, SqloopResult};
use crate::grammar::IterativeCte;
use sqldb::ast::*;
use sqldb::Value;

/// Why/how the iterative part can run in parallel.
#[derive(Debug, Clone)]
pub enum AnalysisOutcome {
    /// The query fits the parallelizable class.
    Parallelizable(ParallelPlan),
    /// It does not; the single-threaded executor must run it.
    NotParallelizable {
        /// Human-readable reason, surfaced in reports.
        reason: String,
    },
}

/// Everything the Compute/Gather machinery needs (paper §V-B..D).
#[derive(Debug, Clone)]
pub struct ParallelPlan {
    /// The detected aggregate function.
    pub aggregate: AggregateFunction,
    /// Index of the delta column (`Ridelta`) within the CTE columns.
    pub delta_index: usize,
    /// Per-column local update expressions `(column index, expr)`;
    /// expressions reference `R`'s own columns, rewritten unqualified.
    pub local_exprs: Vec<(usize, Expr)>,
    /// The per-edge message expression (scale folded in); references the
    /// source row via [`SOURCE_QUAL`] and edge columns via [`EDGE_QUAL`].
    pub message_expr: Expr,
    /// Conjuncts of the `WHERE` clause referencing only the source side,
    /// usable as a message filter (rewritten to [`SOURCE_QUAL`]/[`EDGE_QUAL`]).
    pub source_filter: Vec<Expr>,
    /// `WHERE` conjuncts that could not be classified; they are *ignored*
    /// by the parallel path (safe under delta-reset semantics — see
    /// DESIGN.md) but recorded for the report.
    pub ignored_filters: usize,
    /// The edge relation name.
    pub edge_table: String,
    /// Edge column equated with `R.key` (incoming side, "dst").
    pub edge_dst_col: String,
    /// Edge column equated with `S.key` (source side, "src").
    pub edge_src_col: String,
    /// Edge columns referenced by the message expression / filters.
    pub edge_cols_used: Vec<String>,
}

/// Canonical qualifier for the self-joined source row in rewritten
/// expressions (`S` in the paper's notation).
pub const SOURCE_QUAL: &str = "__s";
/// Canonical qualifier for the edge row in rewritten expressions.
pub const EDGE_QUAL: &str = "__e";

impl ParallelPlan {
    /// The aggregate's identity element — the value the delta column resets
    /// to after a Compute task consumes it (paper §V-D).
    pub fn identity(&self) -> Value {
        match self.aggregate {
            AggregateFunction::Sum | AggregateFunction::Count | AggregateFunction::Avg => {
                Value::Float(0.0)
            }
            AggregateFunction::Min => Value::Float(f64::INFINITY),
            AggregateFunction::Max => Value::Float(f64::NEG_INFINITY),
        }
    }

    /// SQL literal for [`ParallelPlan::identity`] in the canonical dialect.
    pub fn identity_sql(&self) -> &'static str {
        match self.aggregate {
            AggregateFunction::Sum | AggregateFunction::Count | AggregateFunction::Avg => "0.0",
            AggregateFunction::Min => "Infinity",
            AggregateFunction::Max => "-Infinity",
        }
    }
}

/// Analyzes the iterative part of `cte` against its resolved `columns`.
///
/// # Errors
/// Only internal errors; an unparallelizable query is a *successful*
/// analysis with [`AnalysisOutcome::NotParallelizable`].
pub fn analyze(cte: &IterativeCte, columns: &[String]) -> SqloopResult<AnalysisOutcome> {
    match try_analyze(cte, columns) {
        Ok(plan) => Ok(AnalysisOutcome::Parallelizable(plan)),
        Err(SqloopError::Semantic(reason)) => Ok(AnalysisOutcome::NotParallelizable { reason }),
        Err(other) => Err(other),
    }
}

fn bail<T>(reason: impl Into<String>) -> SqloopResult<T> {
    Err(SqloopError::Semantic(reason.into()))
}

fn try_analyze(cte: &IterativeCte, columns: &[String]) -> SqloopResult<ParallelPlan> {
    let select = match &cte.step.body {
        SetExpr::Select(s) if cte.step.order_by.is_empty() && cte.step.limit.is_none() => s,
        _ => return bail("iterative part is not a plain SELECT"),
    };
    if select.from.len() != 1 {
        return bail("iterative part must have a single FROM chain");
    }
    let tr = &select.from[0];
    // base must be R itself
    let base_alias = match &tr.base {
        TableFactor::Table { name, alias } if *name == cte.name => {
            alias.clone().unwrap_or_else(|| cte.name.clone())
        }
        _ => return bail("FROM must start with the CTE table"),
    };
    if tr.joins.len() != 2 {
        return bail("expected exactly two joins (edges, then the self-join)");
    }
    // join 1: the edge relation
    let (edge_table, edge_alias) = match &tr.joins[0].factor {
        TableFactor::Table { name, alias } if *name != cte.name => {
            (name.clone(), alias.clone().unwrap_or_else(|| name.clone()))
        }
        _ => return bail("first join must be the edge relation"),
    };
    // join 2: the self-join carrying incoming information (paper §V-A)
    let source_alias = match &tr.joins[1].factor {
        TableFactor::Table { name, alias } if *name == cte.name => match alias {
            Some(a) => a.clone(),
            None => return bail("self-join must be aliased"),
        },
        _ => return bail("second join must be a self-join of the CTE table"),
    };
    let key = &columns[0];

    // ON conditions
    let edge_dst_col = extract_join_key(tr.joins[0].on.as_ref(), &base_alias, key, &edge_alias)
        .ok_or_else(|| SqloopError::Semantic("edge join must be `R.key = E.<col>`".into()))?;
    let edge_src_col =
        extract_join_key(tr.joins[1].on.as_ref(), &source_alias, key, &edge_alias)
            .ok_or_else(|| SqloopError::Semantic("self-join must be `S.key = E.<col>`".into()))?;

    // GROUP BY R.key
    let group_ok = select.group_by.len() == 1
        && matches!(
            &select.group_by[0],
            Expr::Column { table, name }
                if *name == *key
                    && table.as_deref().map(|t| t == base_alias).unwrap_or(true)
        );
    if !group_ok {
        return bail("GROUP BY must be exactly the CTE key column");
    }
    if select.distinct || select.having.is_some() {
        return bail("DISTINCT/HAVING are not parallelizable");
    }

    // projections
    if select.projections.len() != columns.len() {
        return bail("iterative part must project every CTE column");
    }
    let sides = Sides {
        cte: &cte.name,
        base: &base_alias,
        source: &source_alias,
        edge: &edge_alias,
    };
    let first = match &select.projections[0] {
        SelectItem::Expr { expr, .. } => expr,
        _ => return bail("projections must be expressions"),
    };
    match first {
        Expr::Column { table, name }
            if *name == *key && table.as_deref().map(|t| t == base_alias).unwrap_or(true) => {}
        _ => return bail("first projection must be the CTE key column"),
    }

    let mut delta: Option<(usize, AggregateFunction, Expr)> = None;
    let mut local_exprs = Vec::new();
    let mut edge_cols_used = Vec::new();
    for (i, item) in select.projections.iter().enumerate().skip(1) {
        let expr = match item {
            SelectItem::Expr { expr, .. } => expr,
            _ => return bail("projections must be expressions"),
        };
        if expr.contains_aggregate() {
            if delta.is_some() {
                return bail("only one aggregated (delta) column is supported");
            }
            let (agg, msg) = extract_aggregate_shape(expr, &sides, &mut edge_cols_used)?;
            delta = Some((i, agg, msg));
        } else {
            // local update: must reference only R's own columns
            let rewritten = rewrite_side_refs(expr, &sides, RefSide::Base, &mut edge_cols_used)?;
            local_exprs.push((i, rewritten));
        }
    }
    let (delta_index, aggregate, message_expr) = match delta {
        Some(d) => d,
        None => return bail("no supported aggregate (SUM/MIN/MAX/COUNT/AVG) in the SELECT list"),
    };

    // WHERE: keep source-only conjuncts as message filters. A disjunction
    // like the SSSP improvement gate
    // `S.delta < S.distance OR R.delta < R.distance` splits: the
    // source-side disjunct gates messages (it decides which *sources* emit
    // information), the base-side disjunct gates local application — which
    // Compute performs unconditionally (a no-op for non-improving rows
    // under monotone aggregates). Anything else is ignored for the
    // parallel path but counted for the report.
    let mut source_filter = Vec::new();
    let mut ignored = 0usize;
    if let Some(w) = &select.selection {
        for conj in split_and(w) {
            match rewrite_side_refs(&conj, &sides, RefSide::SourceOrEdge, &mut edge_cols_used) {
                Ok(e) => source_filter.push(e),
                Err(_) => {
                    // try the OR split
                    let disjuncts = split_or(&conj);
                    let mut source_side = Vec::new();
                    let mut base_ok = true;
                    for d in &disjuncts {
                        if let Ok(e) =
                            rewrite_side_refs(d, &sides, RefSide::SourceOrEdge, &mut edge_cols_used)
                        {
                            source_side.push(e);
                        } else if rewrite_side_refs(d, &sides, RefSide::Base, &mut edge_cols_used)
                            .is_err()
                        {
                            base_ok = false;
                        }
                    }
                    if disjuncts.len() > 1 && source_side.len() == 1 && base_ok {
                        source_filter.push(source_side.remove(0));
                    } else {
                        ignored += 1;
                    }
                }
            }
        }
    }

    Ok(ParallelPlan {
        aggregate,
        delta_index,
        local_exprs,
        message_expr,
        source_filter,
        ignored_filters: ignored,
        edge_table,
        edge_dst_col,
        edge_src_col,
        edge_cols_used: {
            edge_cols_used.sort();
            edge_cols_used.dedup();
            edge_cols_used
        },
    })
}

/// Pulls the `E.<col>` out of `ON left_alias.key = E.<col>` (either order).
fn extract_join_key(
    on: Option<&Expr>,
    key_alias: &str,
    key: &str,
    edge_alias: &str,
) -> Option<String> {
    let on = on?;
    if let Expr::Binary {
        left,
        op: BinaryOp::Eq,
        right,
    } = on
    {
        let as_col = |e: &Expr| -> Option<(Option<String>, String)> {
            if let Expr::Column { table, name } = e {
                Some((table.clone(), name.clone()))
            } else {
                None
            }
        };
        let l = as_col(left)?;
        let r = as_col(right)?;
        let is_key = |c: &(Option<String>, String)| c.1 == key && c.0.as_deref() == Some(key_alias);
        let edge_col = |c: &(Option<String>, String)| {
            if c.0.as_deref() == Some(edge_alias) {
                Some(c.1.clone())
            } else {
                None
            }
        };
        if is_key(&l) {
            return edge_col(&r);
        }
        if is_key(&r) {
            return edge_col(&l);
        }
    }
    None
}

struct Sides<'a> {
    cte: &'a str,
    base: &'a str,
    source: &'a str,
    edge: &'a str,
}

#[derive(Clone, Copy, PartialEq)]
enum RefSide {
    /// Only `R` (base) columns allowed; rewritten unqualified.
    Base,
    /// Only source/edge columns allowed; rewritten to the canonical quals.
    SourceOrEdge,
}

/// Splits an expression on top-level ANDs.
fn split_and(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            let mut v = split_and(left);
            v.extend(split_and(right));
            v
        }
        other => vec![other.clone()],
    }
}

/// Splits an expression on top-level ORs.
fn split_or(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Binary {
            left,
            op: BinaryOp::Or,
            right,
        } => {
            let mut v = split_or(left);
            v.extend(split_or(right));
            v
        }
        other => vec![other.clone()],
    }
}

/// Unwraps `COALESCE([scale *] AGG(arg), default)` and folds the scale into
/// the per-message expression (valid for SUM/COUNT/AVG by distributivity and
/// for MIN/MAX when the scale is a positive constant).
fn extract_aggregate_shape(
    expr: &Expr,
    sides: &Sides<'_>,
    edge_cols: &mut Vec<String>,
) -> SqloopResult<(AggregateFunction, Expr)> {
    // strip COALESCE wrapper
    let inner = match expr {
        Expr::Function { name, args } if name == "coalesce" && !args.is_empty() => match &args[0] {
            FunctionArg::Expr(e) => e,
            FunctionArg::Wildcard => return bail("COALESCE(*) is not valid"),
        },
        other => other,
    };
    // strip an optional constant scale
    let (scale, agg_call) = match inner {
        Expr::Binary {
            left,
            op: BinaryOp::Mul,
            right,
        } => {
            if is_constant(left) && right.contains_aggregate() {
                (Some((**left).clone()), right.as_ref())
            } else if is_constant(right) && left.contains_aggregate() {
                (Some((**right).clone()), left.as_ref())
            } else {
                return bail("delta column must be `[const *] AGG(...)` optionally in COALESCE");
            }
        }
        other => (None, other),
    };
    let (agg, args) = agg_call
        .as_aggregate()
        .ok_or_else(|| SqloopError::Semantic("delta expression is not a bare aggregate".into()))?;
    let arg = match args {
        [FunctionArg::Expr(e)] => e.clone(),
        [FunctionArg::Wildcard] => Expr::lit(1i64), // COUNT(*): each message counts 1
        _ => return bail("aggregate must take one argument"),
    };
    if let Some(s) = &scale {
        let positive = match s {
            Expr::Literal(v) => v.as_f64().map(|f| f > 0.0).unwrap_or(false),
            _ => false,
        };
        if matches!(agg, AggregateFunction::Min | AggregateFunction::Max) && !positive {
            return bail("MIN/MAX scale must be a positive constant");
        }
    }
    let arg = rewrite_side_refs(&arg, sides, RefSide::SourceOrEdge, edge_cols)?;
    let message = match scale {
        Some(s) => s.binary(BinaryOp::Mul, arg),
        None => arg,
    };
    Ok((agg, message))
}

fn is_constant(e: &Expr) -> bool {
    e.column_refs().is_empty() && !e.contains_aggregate()
}

/// Validates which side every column reference belongs to and rewrites the
/// qualifiers to the canonical form.
fn rewrite_side_refs(
    expr: &Expr,
    sides: &Sides<'_>,
    side: RefSide,
    edge_cols: &mut Vec<String>,
) -> SqloopResult<Expr> {
    let mut out = expr.clone();
    let mut err: Option<String> = None;
    rewrite_columns(&mut out, &mut |table: &mut Option<String>, name: &str| {
        let qual = table.as_deref();
        match side {
            RefSide::Base => {
                // accept base alias, the CTE name, or unqualified
                if qual.is_none() || qual == Some(sides.base) || qual == Some(sides.cte) {
                    *table = None;
                } else {
                    err = Some(format!(
                        "local expression references non-base column {}.{}",
                        qual.unwrap_or(""),
                        name
                    ));
                }
            }
            RefSide::SourceOrEdge => {
                if qual == Some(sides.source) {
                    *table = Some(SOURCE_QUAL.into());
                } else if qual == Some(sides.edge) {
                    edge_cols.push(name.to_owned());
                    *table = Some(EDGE_QUAL.into());
                } else {
                    err = Some(format!(
                        "message expression references non-source column {}.{}",
                        qual.unwrap_or("<unqualified>"),
                        name
                    ));
                }
            }
        }
    });
    match err {
        Some(e) => bail(e),
        None => Ok(out),
    }
}

fn rewrite_columns(e: &mut Expr, f: &mut impl FnMut(&mut Option<String>, &str)) {
    if let Expr::Column { table, name } = e {
        let n = name.clone();
        f(table, &n);
        return;
    }
    match e {
        Expr::Binary { left, right, .. } => {
            rewrite_columns(left, f);
            rewrite_columns(right, f);
        }
        Expr::Unary { expr, .. } => rewrite_columns(expr, f),
        Expr::Function { args, .. } => {
            for a in args {
                if let FunctionArg::Expr(e) = a {
                    rewrite_columns(e, f);
                }
            }
        }
        Expr::Case {
            branches,
            else_result,
        } => {
            for (c, r) in branches {
                rewrite_columns(c, f);
                rewrite_columns(r, f);
            }
            if let Some(e) = else_result {
                rewrite_columns(e, f);
            }
        }
        Expr::IsNull { expr, .. } => rewrite_columns(expr, f),
        Expr::InList { expr, list, .. } => {
            rewrite_columns(expr, f);
            for e in list {
                rewrite_columns(e, f);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            rewrite_columns(expr, f);
            rewrite_columns(low, f);
            rewrite_columns(high, f);
        }
        Expr::Cast { expr, .. } => rewrite_columns(expr, f),
        Expr::Literal(_) | Expr::Column { .. } | Expr::Param(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{parse, SqloopQuery};

    fn iterative(sql: &str) -> IterativeCte {
        match parse(sql).unwrap() {
            SqloopQuery::Iterative(c) => c,
            other => panic!("expected iterative: {other:?}"),
        }
    }

    fn pagerank_cte() -> IterativeCte {
        iterative(
            "WITH ITERATIVE PageRank(Node, Rank, Delta) AS (\
             SELECT src, 0, 0.15 FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS a GROUP BY src \
             ITERATE \
             SELECT PageRank.Node, \
             COALESCE(PageRank.Rank + PageRank.Delta, 0.15), \
             COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0) \
             FROM PageRank \
             LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst \
             LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src \
             GROUP BY PageRank.Node UNTIL 100 ITERATIONS) \
             SELECT Node, Rank FROM PageRank",
        )
    }

    fn cols() -> Vec<String> {
        vec!["node".into(), "rank".into(), "delta".into()]
    }

    #[test]
    fn pagerank_is_parallelizable() {
        let out = analyze(&pagerank_cte(), &cols()).unwrap();
        let plan = match out {
            AnalysisOutcome::Parallelizable(p) => p,
            AnalysisOutcome::NotParallelizable { reason } => panic!("{reason}"),
        };
        assert_eq!(plan.aggregate, AggregateFunction::Sum);
        assert_eq!(plan.delta_index, 2);
        assert_eq!(plan.edge_table, "edges");
        assert_eq!(plan.edge_dst_col, "dst");
        assert_eq!(plan.edge_src_col, "src");
        assert_eq!(plan.edge_cols_used, vec!["weight".to_string()]);
        assert_eq!(plan.local_exprs.len(), 1);
        assert_eq!(plan.local_exprs[0].0, 1);
        // message expr folded: 0.85 * (S.delta * E.weight)
        let refs = plan.message_expr.column_refs();
        assert!(refs.contains(&(Some(SOURCE_QUAL), "delta")));
        assert!(refs.contains(&(Some(EDGE_QUAL), "weight")));
        assert_eq!(plan.identity(), Value::Float(0.0));
    }

    #[test]
    fn sssp_is_parallelizable_with_min() {
        let cte = iterative(
            "WITH ITERATIVE sssp(Node, Distance, Delta) AS (\
             SELECT src, Infinity, CASE WHEN src = 1 THEN 0 ELSE Infinity END \
             FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS a GROUP BY src \
             ITERATE \
             SELECT sssp.Node, LEAST(sssp.Distance, sssp.Delta), \
             COALESCE(MIN(Neighbor.Delta + IncomingEdges.weight), Infinity) \
             FROM sssp \
             LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst \
             LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src \
             WHERE Neighbor.Delta < Neighbor.Distance OR sssp.Delta < sssp.Distance \
             GROUP BY sssp.node UNTIL 0 UPDATES) SELECT * FROM sssp",
        );
        let out = analyze(&cte, &["node".into(), "distance".into(), "delta".into()]).unwrap();
        let plan = match out {
            AnalysisOutcome::Parallelizable(p) => p,
            AnalysisOutcome::NotParallelizable { reason } => panic!("{reason}"),
        };
        assert_eq!(plan.aggregate, AggregateFunction::Min);
        assert_eq!(plan.identity(), Value::Float(f64::INFINITY));
        // the improvement gate's source-side disjunct becomes the message
        // filter (`S.delta < S.distance`)
        assert_eq!(plan.ignored_filters, 0);
        assert_eq!(plan.source_filter.len(), 1);
        let refs = plan.source_filter[0].column_refs();
        assert!(refs.iter().all(|(q, _)| *q == Some(SOURCE_QUAL)));
    }

    #[test]
    fn source_only_filter_is_kept() {
        let cte = iterative(
            "WITH ITERATIVE sssp(Node, Distance, Delta) AS (\
             SELECT src, Infinity, 0 FROM edges GROUP BY src \
             ITERATE \
             SELECT sssp.Node, LEAST(sssp.Distance, sssp.Delta), \
             COALESCE(MIN(Neighbor.Delta + IncomingEdges.weight), Infinity) \
             FROM sssp \
             LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst \
             LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src \
             WHERE Neighbor.Delta < 100 AND IncomingEdges.weight > 0 \
             GROUP BY sssp.node UNTIL 0 UPDATES) SELECT * FROM sssp",
        );
        let out = analyze(&cte, &["node".into(), "distance".into(), "delta".into()]).unwrap();
        match out {
            AnalysisOutcome::Parallelizable(p) => {
                assert_eq!(p.source_filter.len(), 2);
                assert_eq!(p.ignored_filters, 0);
            }
            AnalysisOutcome::NotParallelizable { reason } => panic!("{reason}"),
        }
    }

    #[test]
    fn count_star_supported() {
        let cte = iterative(
            "WITH ITERATIVE r(id, v, d) AS (\
             SELECT src, 0, 0 FROM edges GROUP BY src \
             ITERATE \
             SELECT r.id, r.v + r.d, COALESCE(COUNT(*), 0) \
             FROM r LEFT JOIN edges AS e ON r.id = e.dst \
             LEFT JOIN r AS s ON s.id = e.src \
             GROUP BY r.id UNTIL 3 ITERATIONS) SELECT * FROM r",
        );
        let out = analyze(&cte, &["id".into(), "v".into(), "d".into()]).unwrap();
        match out {
            AnalysisOutcome::Parallelizable(p) => {
                assert_eq!(p.aggregate, AggregateFunction::Count);
                assert_eq!(p.message_expr, Expr::lit(1i64));
            }
            AnalysisOutcome::NotParallelizable { reason } => panic!("{reason}"),
        }
    }

    #[test]
    fn no_aggregate_not_parallelizable() {
        let cte = iterative(
            "WITH ITERATIVE r(id, v) AS (\
             SELECT src, 0 FROM edges GROUP BY src \
             ITERATE SELECT r.id, r.v FROM r \
             LEFT JOIN edges AS e ON r.id = e.dst \
             LEFT JOIN r AS s ON s.id = e.src \
             GROUP BY r.id UNTIL 3 ITERATIONS) SELECT * FROM r",
        );
        let out = analyze(&cte, &["id".into(), "v".into()]).unwrap();
        assert!(matches!(out, AnalysisOutcome::NotParallelizable { .. }));
    }

    #[test]
    fn missing_self_join_not_parallelizable() {
        let cte = iterative(
            "WITH ITERATIVE r(id, v, d) AS (\
             SELECT src, 0, 0 FROM edges GROUP BY src \
             ITERATE \
             SELECT r.id, r.v, COALESCE(SUM(e.weight), 0) \
             FROM r LEFT JOIN edges AS e ON r.id = e.dst \
             LEFT JOIN weights AS w ON w.id = e.src \
             GROUP BY r.id UNTIL 3 ITERATIONS) SELECT * FROM r",
        );
        let out = analyze(&cte, &["id".into(), "v".into(), "d".into()]).unwrap();
        assert!(matches!(out, AnalysisOutcome::NotParallelizable { .. }));
    }

    #[test]
    fn two_aggregates_not_parallelizable() {
        let cte = iterative(
            "WITH ITERATIVE r(id, a, b) AS (\
             SELECT src, 0, 0 FROM edges GROUP BY src \
             ITERATE \
             SELECT r.id, COALESCE(SUM(s.a), 0), COALESCE(SUM(s.b), 0) \
             FROM r LEFT JOIN edges AS e ON r.id = e.dst \
             LEFT JOIN r AS s ON s.id = e.src \
             GROUP BY r.id UNTIL 3 ITERATIONS) SELECT * FROM r",
        );
        let out = analyze(&cte, &["id".into(), "a".into(), "b".into()]).unwrap();
        assert!(matches!(out, AnalysisOutcome::NotParallelizable { .. }));
    }

    #[test]
    fn wrong_group_by_not_parallelizable() {
        let cte = iterative(
            "WITH ITERATIVE r(id, v, d) AS (\
             SELECT src, 0, 0 FROM edges GROUP BY src \
             ITERATE \
             SELECT r.id, r.v, COALESCE(SUM(s.d), 0) \
             FROM r LEFT JOIN edges AS e ON r.id = e.dst \
             LEFT JOIN r AS s ON s.id = e.src \
             GROUP BY r.v UNTIL 3 ITERATIONS) SELECT * FROM r",
        );
        let out = analyze(&cte, &["id".into(), "v".into(), "d".into()]).unwrap();
        assert!(matches!(out, AnalysisOutcome::NotParallelizable { .. }));
    }

    #[test]
    fn negative_min_scale_rejected() {
        let cte = iterative(
            "WITH ITERATIVE r(id, v, d) AS (\
             SELECT src, 0, 0 FROM edges GROUP BY src \
             ITERATE \
             SELECT r.id, r.v, COALESCE(-1.0 * MIN(s.d), 0) \
             FROM r LEFT JOIN edges AS e ON r.id = e.dst \
             LEFT JOIN r AS s ON s.id = e.src \
             GROUP BY r.id UNTIL 3 ITERATIONS) SELECT * FROM r",
        );
        let out = analyze(&cte, &["id".into(), "v".into(), "d".into()]).unwrap();
        assert!(matches!(out, AnalysisOutcome::NotParallelizable { .. }));
    }
}
