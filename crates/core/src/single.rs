//! Single-threaded executors: semi-naive recursive CTEs and the paper's
//! baseline iterative algorithm (§IV-B).
//!
//! These are both the fallback for queries outside the parallelizable class
//! and the semantic reference the parallel schedulers are tested against.

use crate::checkpoint::{
    check_fingerprint, dump_table_sql, restore_table_sql, run_fingerprint, trace_checkpoint,
    Checkpointer, LoopSnapshot,
};
use crate::common::{
    create_cte_table, refresh_delta_snapshot, rewrite_table_refs, run, run_query, CteNames,
    CteSchema, DeltaRefresher, PlanCacheProbe, TerminationProbe,
};
use crate::error::{SqloopError, SqloopResult};
use crate::grammar::{IterativeCte, RecursiveCte};
use crate::supervisor::panic_detail;
use crate::translate::{translate_query_to_sql, translate_sql};
use crate::watchdog::Governance;
use dbcp::{CancelToken, Connection, PreparedStatement};
use obs::{EventKind, Span, SpanKind, SpanOutcome, TraceHandle};
use sqldb::{DataType, DbError, QueryResult, Value};

/// What an executed CTE run reports back.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Result of the final query `Qf`.
    pub result: QueryResult,
    /// Iterations (recursions) performed.
    pub iterations: u64,
    /// Rows updated/appended by the last iteration.
    pub last_change: u64,
    /// The run was stopped cooperatively before its termination condition;
    /// `result` holds the final query over the partial fix-point.
    pub cancelled: bool,
}

/// Runs a recursive CTE with semi-naive evaluation (paper §II-A):
/// each recursion sees only the previous recursion's output rows, and
/// evaluation stops at the fix-point (an empty working table).
///
/// # Errors
/// Engine errors, or [`SqloopError::Semantic`] when `max_iterations` is hit
/// (a non-terminating recursion).
pub fn run_recursive(
    conn: &mut dyn Connection,
    cte: &RecursiveCte,
    max_iterations: u64,
    keep_artifacts: bool,
) -> SqloopResult<RunOutcome> {
    let names = CteNames::new(&cte.name);
    // run the loop body, then clean up scratch tables on success *and*
    // error paths alike (the original error wins over a cleanup error)
    match recursive_loop(conn, cte, max_iterations, &names) {
        Ok(out) => {
            cleanup(conn, &names, keep_artifacts)?;
            Ok(out)
        }
        Err(e) => {
            let _ = cleanup(conn, &names, keep_artifacts);
            Err(e)
        }
    }
}

fn recursive_loop(
    conn: &mut dyn Connection,
    cte: &RecursiveCte,
    max_iterations: u64,
    names: &CteNames,
) -> SqloopResult<RunOutcome> {
    let schema = create_cte_table(conn, &cte.name, &cte.columns, &cte.seed, false, false)?;
    let cols = schema.columns.join(", ");

    // working table starts as a copy of the seed
    let mut parity = 0u64;
    let w0 = names.working(parity);
    run(conn, &format!("DROP TABLE IF EXISTS {w0}"))?;
    run(
        conn,
        &format!("CREATE TABLE {w0} AS SELECT * FROM {}", cte.name),
    )?;

    let mut iterations = 0u64;
    let mut last_change;
    loop {
        let w_cur = names.working(parity);
        let w_next = names.working(parity + 1);
        // Ri with references to R bound to the working table
        let step = rewrite_table_refs(&cte.recursive, &cte.name, &w_cur);
        let step_sql = translate_query_to_sql(&step, conn.profile());
        run(conn, &format!("DROP TABLE IF EXISTS {w_next}"))?;
        run(
            conn,
            &format!(
                "CREATE TABLE {w_next} ({})",
                schema
                    .columns
                    .iter()
                    .zip(&schema.types)
                    .map(|(c, t)| format!("{c} {t}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        )?;
        conn.execute(&format!(
            "INSERT INTO {} {}",
            conn.profile().dialect().quote(&w_next),
            step_sql
        ))?;

        if !cte.union_all {
            // UNION (set) semantics: drop rows already present in R
            let on = schema
                .columns
                .iter()
                .map(|c| format!("{w_next}.{c} = {}.{c}", cte.name))
                .collect::<Vec<_>>()
                .join(" AND ");
            let dedup = format!("{w_next}__d");
            run(conn, &format!("DROP TABLE IF EXISTS {dedup}"))?;
            run(
                conn,
                &format!(
                    "CREATE TABLE {dedup} AS SELECT DISTINCT {sel} FROM {w_next} \
                     LEFT JOIN {r} ON {on} WHERE {r}.{k} IS NULL",
                    sel = schema
                        .columns
                        .iter()
                        .map(|c| format!("{w_next}.{c}"))
                        .collect::<Vec<_>>()
                        .join(", "),
                    r = cte.name,
                    k = schema.key(),
                ),
            )?;
            run(conn, &format!("DROP TABLE {w_next}"))?;
            run(
                conn,
                &format!("CREATE TABLE {w_next} AS SELECT * FROM {dedup}"),
            )?;
            run(conn, &format!("DROP TABLE {dedup}"))?;
        }

        let produced = run_query(conn, &format!("SELECT COUNT(*) FROM {w_next}"))?
            .scalar()
            .and_then(Value::as_i64)
            .unwrap_or(0) as u64;
        last_change = produced;
        if produced == 0 {
            run(conn, &format!("DROP TABLE IF EXISTS {w_next}"))?;
            break;
        }
        run(
            conn,
            &format!("INSERT INTO {} SELECT {cols} FROM {w_next}", cte.name),
        )?;
        run(conn, &format!("DROP TABLE IF EXISTS {w_cur}"))?;
        parity += 1;
        iterations += 1;
        if iterations >= max_iterations {
            return Err(SqloopError::Semantic(format!(
                "recursion did not reach a fix-point within {max_iterations} iterations"
            )));
        }
    }

    let final_sql = translate_query_to_sql(&cte.final_query, conn.profile());
    let result = conn.query(&final_sql)?;
    Ok(RunOutcome {
        result,
        iterations,
        last_change,
        cancelled: false,
    })
}

/// Runs an iterative CTE with the single-threaded algorithm (paper §III-A):
/// per iteration, materialize `Ri` into `Rtmp`, then update `R` matching on
/// the key column, until the termination condition holds.
///
/// # Errors
/// Engine errors, or [`SqloopError::Semantic`] when `max_iterations` is hit.
pub fn run_iterative_single(
    conn: &mut dyn Connection,
    cte: &IterativeCte,
    max_iterations: u64,
    keep_artifacts: bool,
) -> SqloopResult<RunOutcome> {
    run_iterative_single_observed(
        conn,
        cte,
        max_iterations,
        keep_artifacts,
        &TraceHandle::disabled(),
    )
}

/// Like [`run_iterative_single`], recording one [`SpanKind::Iteration`] span
/// per loop iteration (with the updated-row count) into `trace`.
///
/// # Errors
/// Engine errors, or [`SqloopError::Semantic`] when `max_iterations` is hit.
pub fn run_iterative_single_observed(
    conn: &mut dyn Connection,
    cte: &IterativeCte,
    max_iterations: u64,
    keep_artifacts: bool,
    trace: &TraceHandle,
) -> SqloopResult<RunOutcome> {
    run_iterative_single_durable(
        conn,
        cte,
        max_iterations,
        keep_artifacts,
        trace,
        &CancelToken::new(),
        None,
        None,
    )
}

/// [`run_iterative_single_observed`] with durability controls: cooperative
/// cancellation via `cancel` (checked at every iteration boundary — a
/// cancelled run still answers `Qf` over the partial fix-point and reports
/// `cancelled = true`), periodic checkpoints through `checkpointer`, and
/// `resume` to continue from a [`LoopSnapshot`] instead of running the seed
/// query (the snapshot's fingerprint must match this query).
///
/// # Errors
/// Engine errors, [`SqloopError::Semantic`] when `max_iterations` is hit, or
/// [`SqloopError::Checkpoint`] for snapshot/fingerprint problems. Scratch
/// tables are dropped on every path unless `keep_artifacts`.
#[allow(clippy::too_many_arguments)]
pub fn run_iterative_single_durable(
    conn: &mut dyn Connection,
    cte: &IterativeCte,
    max_iterations: u64,
    keep_artifacts: bool,
    trace: &TraceHandle,
    cancel: &CancelToken,
    checkpointer: Option<&mut Checkpointer>,
    resume: Option<&LoopSnapshot>,
) -> SqloopResult<RunOutcome> {
    run_iterative_single_governed(
        conn,
        cte,
        max_iterations,
        keep_artifacts,
        trace,
        cancel,
        checkpointer,
        resume,
        &mut Governance::none(),
    )
}

/// [`run_iterative_single_durable`] under resource governance: watchdog
/// verdicts (round budget, numeric divergence, flat delta trend) and engine
/// memory-budget trips abort the run *governed* — the engine limit is
/// lifted, a final checkpoint is written (when checkpointing is on), and a
/// typed [`SqloopError::BudgetExceeded`]/[`SqloopError::NumericDivergence`]
/// is returned so the run can resume under a larger budget.
///
/// # Errors
/// As [`run_iterative_single_durable`], plus the governance verdicts above.
#[allow(clippy::too_many_arguments)]
pub fn run_iterative_single_governed(
    conn: &mut dyn Connection,
    cte: &IterativeCte,
    max_iterations: u64,
    keep_artifacts: bool,
    trace: &TraceHandle,
    cancel: &CancelToken,
    checkpointer: Option<&mut Checkpointer>,
    resume: Option<&LoopSnapshot>,
    governance: &mut Governance<'_>,
) -> SqloopResult<RunOutcome> {
    let names = CteNames::new(&cte.name);
    match iterative_loop(
        conn,
        cte,
        max_iterations,
        &names,
        trace,
        cancel,
        checkpointer,
        resume,
        governance,
    ) {
        Ok(out) => {
            cleanup(conn, &names, keep_artifacts)?;
            Ok(out)
        }
        Err(e) => {
            let _ = cleanup(conn, &names, keep_artifacts);
            Err(e)
        }
    }
}

/// The single-threaded loop's state tables, dumped for a checkpoint: the
/// CTE table `R`, plus the delta snapshot when the termination condition
/// reads one.
fn single_snapshot(
    conn: &mut dyn Connection,
    cte: &IterativeCte,
    names: &CteNames,
    schema: &CteSchema,
    iterations: u64,
    last_updates: u64,
) -> SqloopResult<LoopSnapshot> {
    let cols: Vec<(String, DataType)> = schema
        .columns
        .iter()
        .cloned()
        .zip(schema.types.iter().copied())
        .collect();
    let mut tables = vec![dump_table_sql(conn, &cte.name, &cols, Some(0))?];
    if cte.termination.needs_delta_snapshot() {
        tables.push(dump_table_sql(conn, &names.delta_snapshot(), &cols, None)?);
    }
    Ok(LoopSnapshot {
        fingerprint: run_fingerprint(cte, "Single", 1),
        mode: "Single".into(),
        round: iterations,
        last_change: last_updates,
        parts: Vec::new(),
        seeds: Vec::new(),
        tables,
    })
}

#[allow(clippy::too_many_arguments)]
fn iterative_loop(
    conn: &mut dyn Connection,
    cte: &IterativeCte,
    max_iterations: u64,
    names: &CteNames,
    trace: &TraceHandle,
    cancel: &CancelToken,
    mut checkpointer: Option<&mut Checkpointer>,
    resume: Option<&LoopSnapshot>,
    governance: &mut Governance<'_>,
) -> SqloopResult<RunOutcome> {
    let schema;
    let mut iterations;
    let mut last_updates;
    if let Some(snap) = resume {
        check_fingerprint(snap, run_fingerprint(cte, "Single", 1), "Single")?;
        let main = snap
            .tables
            .iter()
            .find(|t| t.name == cte.name)
            .ok_or_else(|| {
                SqloopError::Checkpoint(format!("snapshot holds no table named {}", cte.name))
            })?;
        schema = CteSchema {
            columns: main.columns.iter().map(|c| c.name.clone()).collect(),
            types: main.columns.iter().map(|c| c.data_type).collect(),
        };
        for t in &snap.tables {
            restore_table_sql(conn, t, 512)?;
        }
        iterations = snap.round;
        last_updates = snap.last_change;
        trace.event(
            EventKind::Resume,
            None,
            Some(iterations),
            format!("resumed single-threaded run at iteration {iterations}"),
        );
    } else {
        schema = create_cte_table(conn, &cte.name, &cte.columns, &cte.seed, true, true)?;
        if cte.termination.needs_delta_snapshot() {
            refresh_delta_snapshot(conn, names)?;
        }
        iterations = 0;
        last_updates = 0;
    }

    // the hot loop's statements, prepared once: the scratch table is
    // created here and *emptied* (not recreated) every round, so the
    // INSERT/UPDATE plans survive in the engine's plan cache — per-round
    // DDL would invalidate them
    let tmp = names.tmp();
    let profile = conn.profile();
    run(conn, &format!("DROP TABLE IF EXISTS {tmp}"))?;
    run(
        conn,
        &format!("CREATE TABLE {tmp} ({})", schema.create_columns_sql(true)),
    )?;
    let mut clear_tmp =
        PreparedStatement::new(translate_sql(&format!("DELETE FROM {tmp}"), profile)?);
    // Rtmp := Ri
    let step_sql = translate_query_to_sql(&cte.step, profile);
    let mut fill_tmp = PreparedStatement::new(format!(
        "INSERT INTO {} {}",
        profile.dialect().quote(&tmp),
        step_sql
    ));
    // R := R ⟵ Rtmp matched on Rid (only Rid ∩ Rtmp_id rows change)
    let assignments = schema.columns[1..]
        .iter()
        .map(|c| format!("{c} = {tmp}.{c}"))
        .collect::<Vec<_>>()
        .join(", ");
    let mut apply = PreparedStatement::new(translate_sql(
        &format!(
            "UPDATE {r} SET {assignments} FROM {tmp} WHERE {r}.{k} = {tmp}.{k}",
            r = cte.name,
            k = schema.key(),
        ),
        profile,
    )?);
    let mut probe = TerminationProbe::new(&cte.name, &cte.termination, profile)?;
    let mut refresher = cte
        .termination
        .needs_delta_snapshot()
        .then(|| DeltaRefresher::new(names, profile))
        .transpose()?;

    let mut cancelled = false;
    let mut cache_probe = PlanCacheProbe::new();
    loop {
        if cancel.cancelled() {
            trace.event(
                EventKind::Cancel,
                None,
                Some(iterations),
                "cancelled at iteration boundary",
            );
            obs::global().counter("sqloop.cancelled_runs").inc();
            if let Some(ck) = checkpointer.as_deref_mut() {
                let snap = single_snapshot(conn, cte, names, &schema, iterations, last_updates)?;
                let path = ck.save(&snap)?;
                trace_checkpoint(trace, iterations, &path);
            }
            cancelled = true;
            break;
        }
        let span_start = trace.now_us();
        // panic boundary: a panicking statement (an engine bug, an injected
        // chaos panic) must degrade into a typed error, never unwind
        // through the caller — the session is rolled back first so any
        // locks the panic left held are released
        let round_result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> SqloopResult<u64> {
                clear_tmp.execute(&mut *conn, &[])?;
                fill_tmp.execute(&mut *conn, &[])?;
                Ok(apply.execute(&mut *conn, &[])?.rows_affected())
            }))
            .unwrap_or_else(|payload| {
                let detail = panic_detail(payload.as_ref());
                let _ = conn.execute("ROLLBACK");
                obs::global()
                    .counter("sqloop.supervisor.panics_caught")
                    .inc();
                trace.event(
                    EventKind::Panic,
                    None,
                    Some(iterations),
                    format!("absorbed a panicking statement: {detail}"),
                );
                Err(SqloopError::WorkerPanic {
                    worker: None,
                    detail: format!("single-threaded iteration {}: {detail}", iterations + 1),
                })
            });
        let updated = match round_result {
            Ok(u) => u,
            // the engine's memory budget tripped mid-round; statement
            // atomicity rolled the failed statement back, so R still holds
            // round `iterations` — abort governed from that state
            Err(e) => {
                return Err(govern_failure(
                    e,
                    conn,
                    cte,
                    names,
                    &schema,
                    iterations,
                    last_updates,
                    trace,
                    checkpointer.as_deref_mut(),
                    governance,
                ))
            }
        };
        last_updates = updated;
        iterations += 1;
        if trace.is_enabled() {
            trace.span(Span {
                kind: SpanKind::Iteration,
                partition: None,
                iteration: Some(iterations),
                worker: None,
                attempt: 1,
                rows: updated,
                outcome: SpanOutcome::Ok,
                start_us: span_start,
                end_us: trace.now_us(),
            });
        }
        cache_probe.tick(trace, iterations, "Single");

        // the termination probe and delta refresh also run engine statements
        // that can trip the memory budget — keep them governed too
        let tail = probe
            .satisfied(&mut *conn, iterations, last_updates)
            .and_then(|done| {
                if let Some(r) = refresher.as_mut() {
                    r.refresh(&mut *conn)?;
                }
                Ok(done)
            });
        let done = match tail {
            Ok(done) => done,
            Err(e) => {
                return Err(govern_failure(
                    e,
                    conn,
                    cte,
                    names,
                    &schema,
                    iterations,
                    last_updates,
                    trace,
                    checkpointer.as_deref_mut(),
                    governance,
                ))
            }
        };
        if done {
            break;
        }
        let watchdog_verdict = match governance.watchdog.as_mut() {
            Some(w) => w
                .check_round(iterations, updated)
                .and_then(|()| {
                    w.probe_table(
                        conn,
                        &cte.name,
                        &schema.columns,
                        &schema.types,
                        None,
                        iterations,
                    )
                })
                .err(),
            None => None,
        };
        if let Some(verdict) = watchdog_verdict {
            governed_abort(
                conn,
                cte,
                names,
                &schema,
                iterations,
                last_updates,
                trace,
                checkpointer.as_deref_mut(),
                governance,
                &verdict,
            )?;
            return Err(verdict);
        }
        if checkpointer.as_deref().is_some_and(|ck| ck.due(iterations)) {
            let snap = match single_snapshot(conn, cte, names, &schema, iterations, last_updates) {
                Ok(snap) => snap,
                Err(e) => {
                    return Err(govern_failure(
                        e,
                        conn,
                        cte,
                        names,
                        &schema,
                        iterations,
                        last_updates,
                        trace,
                        checkpointer.as_deref_mut(),
                        governance,
                    ))
                }
            };
            let ck = checkpointer
                .as_deref_mut()
                .expect("due implies checkpointer");
            let path = ck.save(&snap)?;
            trace_checkpoint(trace, iterations, &path);
        }
        if iterations >= max_iterations {
            return Err(SqloopError::Semantic(format!(
                "termination condition not satisfied within {max_iterations} iterations"
            )));
        }
    }
    run(conn, &format!("DROP TABLE IF EXISTS {tmp}"))?;

    let final_sql = translate_query_to_sql(&cte.final_query, conn.profile());
    let result = match conn.query(&final_sql) {
        Ok(r) => r,
        Err(e) => {
            return Err(govern_failure(
                SqloopError::from(e),
                conn,
                cte,
                names,
                &schema,
                iterations,
                last_updates,
                trace,
                checkpointer,
                governance,
            ))
        }
    };
    Ok(RunOutcome {
        result,
        iterations,
        last_change: last_updates,
        cancelled,
    })
}

/// Converts an engine memory-budget trip anywhere in the loop into a
/// governed abort, returning the typed verdict; every other error passes
/// through unchanged. When the abort itself fails the original trip is
/// surfaced so the failure is not masked.
#[allow(clippy::too_many_arguments)]
fn govern_failure(
    e: SqloopError,
    conn: &mut dyn Connection,
    cte: &IterativeCte,
    names: &CteNames,
    schema: &CteSchema,
    iterations: u64,
    last_updates: u64,
    trace: &TraceHandle,
    checkpointer: Option<&mut Checkpointer>,
    governance: &Governance<'_>,
) -> SqloopError {
    let SqloopError::Db(DbError::BudgetExceeded(m)) = e else {
        return e;
    };
    let verdict = SqloopError::BudgetExceeded {
        what: format!("memory ({m})"),
        round: iterations,
    };
    match governed_abort(
        conn,
        cte,
        names,
        schema,
        iterations,
        last_updates,
        trace,
        checkpointer,
        governance,
        &verdict,
    ) {
        Ok(()) => verdict,
        Err(_) => SqloopError::Db(DbError::BudgetExceeded(m)),
    }
}

/// Lifts the engine memory limit, records the verdict, and writes a final
/// checkpoint so a governed abort is always resumable under a larger budget.
#[allow(clippy::too_many_arguments)]
fn governed_abort(
    conn: &mut dyn Connection,
    cte: &IterativeCte,
    names: &CteNames,
    schema: &CteSchema,
    iterations: u64,
    last_updates: u64,
    trace: &TraceHandle,
    checkpointer: Option<&mut Checkpointer>,
    governance: &Governance<'_>,
    verdict: &SqloopError,
) -> SqloopResult<()> {
    governance.lift_memory_limit();
    trace.event(
        EventKind::Watchdog,
        None,
        Some(iterations),
        format!("governed abort: {verdict}"),
    );
    obs::global().counter("sqloop.governed_aborts").inc();
    if let Some(ck) = checkpointer {
        let snap = single_snapshot(conn, cte, names, schema, iterations, last_updates)?;
        let path = ck.save(&snap)?;
        trace_checkpoint(trace, iterations, &path);
    }
    Ok(())
}

fn cleanup(conn: &mut dyn Connection, names: &CteNames, keep: bool) -> SqloopResult<()> {
    if keep {
        return Ok(());
    }
    for t in [
        names.table.clone(),
        names.tmp(),
        names.working(0),
        names.working(1),
        format!("{}__d", names.working(0)),
        format!("{}__d", names.working(1)),
        names.delta_snapshot(),
    ] {
        run(conn, &format!("DROP TABLE IF EXISTS {t}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{parse, SqloopQuery};
    use dbcp::{Driver, LocalDriver};
    use sqldb::{Database, EngineProfile};

    fn conn_with_edges(profile: EngineProfile) -> Box<dyn Connection> {
        let db = Database::new(profile);
        let mut s = db.connect();
        s.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
            .unwrap();
        // a small strongly-connected graph
        s.execute(
            "INSERT INTO edges VALUES \
             (1,2,0.5),(1,3,0.5),(2,3,1.0),(3,1,1.0),(4,1,1.0),(2,4,0.0)",
        )
        .ok();
        LocalDriver::new(db).connect().unwrap()
    }

    fn iterative(sql: &str) -> IterativeCte {
        match parse(sql).unwrap() {
            SqloopQuery::Iterative(c) => c,
            other => panic!("expected iterative: {other:?}"),
        }
    }

    fn recursive(sql: &str) -> RecursiveCte {
        match parse(sql).unwrap() {
            SqloopQuery::Recursive(c) => c,
            other => panic!("expected recursive: {other:?}"),
        }
    }

    #[test]
    fn fibonacci_example_1() {
        // the paper's Example 1: sum of Fibonacci numbers below 1000
        let cte = recursive(
            "WITH RECURSIVE Fibonacci(n, pn) AS (\
             VALUES (0, 1) UNION ALL \
             SELECT n + pn, n FROM Fibonacci WHERE n < 1000) \
             SELECT SUM(n) FROM Fibonacci",
        );
        let mut c = conn_with_edges(EngineProfile::Postgres);
        let out = run_recursive(c.as_mut(), &cte, 1000, false).unwrap();
        // 0,1,1,2,3,5,…,987 → sum = 2583 (includes the final 1597 > 1000? no:
        // rows are produced while n < 1000 recursion guard holds; the last
        // appended row is 1597 (from n=987), giving 0+1+1+2+…+987+1597 = 4180
        let v = out.result.rows[0][0].clone();
        assert_eq!(v, Value::Int(4180));
        // scratch tables dropped
        assert!(c.query("SELECT * FROM fibonacci").is_err());
    }

    #[test]
    fn recursive_union_set_semantics_terminates_on_cycle() {
        // reachability over a cyclic graph only terminates under UNION (set)
        let cte = recursive(
            "WITH RECURSIVE reach(node) AS (\
             SELECT 1 UNION \
             SELECT edges.dst FROM reach JOIN edges ON reach.node = edges.src) \
             SELECT COUNT(*) FROM reach",
        );
        let mut c = conn_with_edges(EngineProfile::Postgres);
        let out = run_recursive(c.as_mut(), &cte, 100, false).unwrap();
        assert_eq!(out.result.rows[0][0], Value::Int(4));
    }

    #[test]
    fn iterative_pagerank_converges() {
        let pr = iterative(
            "WITH ITERATIVE PageRank(Node, Rank, Delta) AS (\
             SELECT src, 0, 0.15 \
             FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges GROUP BY src \
             ITERATE \
             SELECT PageRank.Node, \
             COALESCE(PageRank.Rank + PageRank.Delta, 0.15), \
             COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0) \
             FROM PageRank \
             LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst \
             LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src \
             GROUP BY PageRank.Node \
             UNTIL 50 ITERATIONS) \
             SELECT Node, Rank FROM PageRank ORDER BY Node",
        );
        let mut c = conn_with_edges(EngineProfile::Postgres);
        let out = run_iterative_single(c.as_mut(), &pr, 1000, false).unwrap();
        assert_eq!(out.iterations, 50);
        assert_eq!(out.result.rows.len(), 4);
        // total rank approaches n * 0.15 / (1 - 0.85) = 4 (for a closed graph
        // with no dangling mass the delta-PR total converges to n)
        let total: f64 = out.result.rows.iter().map(|r| r[1].as_f64().unwrap()).sum();
        assert!(total > 3.0 && total < 4.2, "total rank {total}");
    }

    #[test]
    fn iterative_sssp_until_0_updates() {
        let sssp = iterative(
            "WITH ITERATIVE sssp (Node, Distance, Delta) AS (\
             SELECT src, Infinity, CASE WHEN src = 1 THEN 0 ELSE Infinity END \
             FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges GROUP BY src \
             ITERATE \
             SELECT sssp.Node, \
             LEAST(sssp.Distance, sssp.Delta), \
             COALESCE(MIN(Neighbor.Delta + IncomingEdges.weight), Infinity) \
             FROM sssp \
             LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst \
             LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src \
             WHERE Neighbor.Delta < Neighbor.Distance OR sssp.Delta < sssp.Distance \
             GROUP BY sssp.node \
             UNTIL 0 UPDATES) \
             SELECT sssp.Node, sssp.Distance FROM sssp ORDER BY sssp.Node",
        );
        let mut c = conn_with_edges(EngineProfile::Postgres);
        let out = run_iterative_single(c.as_mut(), &sssp, 1000, false).unwrap();
        // shortest distances from node 1: 1→2 = 0.5, 1→3 = 0.5, 1→4 = 0.5
        let rows = &out.result.rows;
        assert_eq!(rows[0], vec![Value::Int(1), Value::Float(0.0)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Float(0.5)]);
        assert_eq!(rows[2], vec![Value::Int(3), Value::Float(0.5)]);
        assert_eq!(rows[3], vec![Value::Int(4), Value::Float(0.5)]);
    }

    #[test]
    fn sssp_runs_on_every_engine_profile() {
        for profile in EngineProfile::ALL {
            let sssp = iterative(
                "WITH ITERATIVE sssp (Node, Distance, Delta) AS (\
                 SELECT src, Infinity, CASE WHEN src = 1 THEN 0 ELSE Infinity END \
                 FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS a GROUP BY src \
                 ITERATE \
                 SELECT sssp.Node, LEAST(sssp.Distance, sssp.Delta), \
                 COALESCE(MIN(Neighbor.Delta + IncomingEdges.weight), Infinity) \
                 FROM sssp \
                 LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst \
                 LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src \
                 WHERE Neighbor.Delta < Neighbor.Distance OR sssp.Delta < sssp.Distance \
                 GROUP BY sssp.node UNTIL 0 UPDATES) \
                 SELECT sssp.Distance FROM sssp WHERE sssp.Node = 3",
            );
            let mut c = conn_with_edges(profile);
            let out = run_iterative_single(c.as_mut(), &sssp, 1000, false)
                .unwrap_or_else(|e| panic!("{profile}: {e}"));
            assert_eq!(out.result.rows[0][0], Value::Float(0.5), "{profile}");
        }
    }

    #[test]
    fn delta_termination_condition() {
        // stop once total rank moves less than 0.001 between iterations
        let pr = iterative(
            "WITH ITERATIVE pr(Node, Rank, Delta) AS (\
             SELECT src, 0, 0.15 \
             FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS a GROUP BY src \
             ITERATE \
             SELECT pr.Node, COALESCE(pr.Rank + pr.Delta, 0.15), \
             COALESCE(0.85 * SUM(irank.Delta * ie.weight), 0.0) \
             FROM pr LEFT JOIN edges AS ie ON pr.Node = ie.dst \
             LEFT JOIN pr AS irank ON irank.Node = ie.src \
             GROUP BY pr.Node \
             UNTIL DELTA SELECT SUM(pr.Rank) - SUM(prdelta.Rank) FROM pr, prdelta < 0.001) \
             SELECT SUM(Rank) FROM pr",
        );
        let mut c = conn_with_edges(EngineProfile::Postgres);
        let out = run_iterative_single(c.as_mut(), &pr, 1000, false).unwrap();
        assert!(out.iterations > 5, "should take several iterations");
        assert!(out.iterations < 200);
    }

    #[test]
    fn data_any_termination() {
        // stop as soon as any node's rank exceeds 0.5
        let pr = iterative(
            "WITH ITERATIVE pr(Node, Rank, Delta) AS (\
             SELECT src, 0, 0.15 \
             FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS a GROUP BY src \
             ITERATE \
             SELECT pr.Node, COALESCE(pr.Rank + pr.Delta, 0.15), \
             COALESCE(0.85 * SUM(irank.Delta * ie.weight), 0.0) \
             FROM pr LEFT JOIN edges AS ie ON pr.Node = ie.dst \
             LEFT JOIN pr AS irank ON irank.Node = ie.src \
             GROUP BY pr.Node \
             UNTIL ANY SELECT Node FROM pr WHERE Rank > 0.5) \
             SELECT COUNT(*) FROM pr WHERE Rank > 0.5",
        );
        let mut c = conn_with_edges(EngineProfile::Postgres);
        let out = run_iterative_single(c.as_mut(), &pr, 1000, false).unwrap();
        assert!(out.result.rows[0][0].as_i64().unwrap() >= 1);
    }

    #[test]
    fn runaway_iteration_capped() {
        let cte = iterative(
            "WITH ITERATIVE r(id, v) AS (\
             SELECT src, 0.0 FROM edges GROUP BY src \
             ITERATE SELECT r.id, MAX(r.v) + 1.0 FROM r GROUP BY r.id \
             UNTIL ANY SELECT id FROM r WHERE v < 0) \
             SELECT * FROM r",
        );
        let mut c = conn_with_edges(EngineProfile::Postgres);
        let err = run_iterative_single(c.as_mut(), &cte, 25, false);
        assert!(matches!(err, Err(SqloopError::Semantic(_))), "{err:?}");
    }
}
