//! Figure 5 — "SQLoop using multiple threads and CPUs" (paper §VI-C):
//! convergence/execution time vs worker-thread count (1…16) for PageRank
//! and SSSP on each engine.
//!
//! Usage: `cargo run --release -p sqloop-bench --bin fig5_scaling --
//!         [--exp pr|sssp|all] [--scale f] [--threads 1,2,4,8] [--partitions n]`
//!
//! Expected shape (paper): every engine and method improves with threads
//! (each thread is an extra engine connection), with PostgreSQL reaching
//! up to ~10× at 16 threads; Async stays ahead of Sync at every width.

use sqldb::EngineProfile;
use sqloop::{ExecutionMode, PrioritySpec, SqloopConfig};
use sqloop_bench::{env_with_graph, parse_args, time_it, write_csv, Table};

const MODES: [ExecutionMode; 3] = [
    ExecutionMode::Sync,
    ExecutionMode::Async,
    ExecutionMode::AsyncPrio,
];

/// Engine statements this run executed (per-run delta; `-` over TCP).
fn engine_stmts(report: &sqloop::ExecutionReport) -> String {
    report
        .engine_stats
        .map(|s| s.statements.to_string())
        .unwrap_or_else(|| "-".into())
}

/// p95 pool-checkout latency for this run, from the per-run metrics delta.
fn pool_get_p95(report: &sqloop::ExecutionReport) -> String {
    report
        .metrics
        .histograms
        .get("dbcp.pool.get")
        .filter(|h| h.count > 0)
        .map(|h| h.percentile_us(0.95).to_string())
        .unwrap_or_else(|| "-".into())
}

fn main() {
    let args = parse_args();
    println!("== Figure 5: scaling with worker threads ==\n");
    if args.exp == "pr" || args.exp == "all" {
        pr_scaling(&args);
    }
    if args.exp == "sssp" || args.exp == "all" {
        sssp_scaling(&args);
    }
}

fn pr_scaling(args: &sqloop_bench::BenchArgs) {
    let dataset = graphgen::datasets::google_web_like(args.scale);
    println!("PageRank on {} ({})", dataset.name, dataset.graph);
    let query = workloads::queries::pagerank(args.iterations);
    let mut table = Table::new(&[
        "engine",
        "method",
        "threads",
        "time (s)",
        "speedup vs 1",
        "overlap",
        "stmts",
        "pool get p95 (µs)",
    ]);
    for profile in EngineProfile::ALL {
        for mode in MODES {
            let mut base: Option<f64> = None;
            for &threads in &args.threads {
                let env = env_with_graph(profile, &dataset.graph);
                let sq = env.sqloop(SqloopConfig {
                    mode,
                    threads,
                    partitions: args.partitions,
                    priority: Some(PrioritySpec::highest("SELECT SUM(delta) FROM {}")),
                    ..SqloopConfig::default()
                });
                let (report, elapsed) = time_it(|| sq.execute_detailed(&query).expect("pr run"));
                let secs = elapsed.as_secs_f64();
                let speedup = base.map(|b| b / secs).unwrap_or(1.0);
                base.get_or_insert(secs);
                table.row(vec![
                    profile.name().into(),
                    mode.label().into(),
                    threads.to_string(),
                    format!("{secs:.3}"),
                    format!("{speedup:.2}x"),
                    format!("{:.2}", report.worker_busy.as_secs_f64() / secs),
                    engine_stmts(&report),
                    pool_get_p95(&report),
                ]);
            }
        }
    }
    println!("{}", table.render());
    if let Some(p) = write_csv("fig5_pr", &table.to_csv()) {
        println!("  wrote {}\n", p.display());
    }
}

fn sssp_scaling(args: &sqloop_bench::BenchArgs) {
    let dataset = graphgen::datasets::twitter_like(args.scale);
    println!("SSSP on {} ({})", dataset.name, dataset.graph);
    let (dest, _) = dataset
        .graph
        .node_at_distance(0, u64::MAX)
        .expect("connected");
    let query = workloads::queries::sssp(0, dest);
    let mut table = Table::new(&[
        "engine",
        "method",
        "threads",
        "time (s)",
        "speedup vs 1",
        "overlap",
        "stmts",
        "pool get p95 (µs)",
    ]);
    for profile in EngineProfile::ALL {
        for mode in MODES {
            let mut base: Option<f64> = None;
            for &threads in &args.threads {
                let env = env_with_graph(profile, &dataset.graph);
                let sq = env.sqloop(SqloopConfig {
                    mode,
                    threads,
                    partitions: args.partitions,
                    priority: Some(PrioritySpec::lowest("SELECT MIN(delta) FROM {}")),
                    ..SqloopConfig::default()
                });
                let (report, elapsed) = time_it(|| sq.execute_detailed(&query).expect("sssp run"));
                let secs = elapsed.as_secs_f64();
                let speedup = base.map(|b| b / secs).unwrap_or(1.0);
                base.get_or_insert(secs);
                table.row(vec![
                    profile.name().into(),
                    mode.label().into(),
                    threads.to_string(),
                    format!("{secs:.3}"),
                    format!("{speedup:.2}x"),
                    format!("{:.2}", report.worker_busy.as_secs_f64() / secs),
                    engine_stmts(&report),
                    pool_get_p95(&report),
                ]);
            }
        }
    }
    println!("{}", table.render());
    if let Some(p) = write_csv("fig5_sssp", &table.to_csv()) {
        println!("  wrote {}\n", p.display());
    }
}
