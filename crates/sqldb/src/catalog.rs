//! The database catalog: tables, views, and index → table mapping.

use crate::ast::SelectStmt;
use crate::budget::MemoryBudget;
use crate::error::{DbError, DbResult};
use crate::storage::Table;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared handle to a table behind its own reader-writer lock.
///
/// Per-table locks are what let SQLoop's partitioned execution proceed in
/// parallel: workers touching different partition tables never contend.
pub type TableHandle = Arc<RwLock<Table>>;

/// Catalog of schema objects. Cheap to share (`Arc` inside the `Database`).
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, TableHandle>>,
    views: RwLock<HashMap<String, Arc<SelectStmt>>>,
    /// index name → table name (indexes live inside their `Table`).
    indexes: RwLock<HashMap<String, String>>,
    /// Database-wide byte budget every registered table charges against.
    budget: Arc<MemoryBudget>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a new table.
    ///
    /// # Errors
    /// Returns [`DbError::AlreadyExists`] when a table or view of that name
    /// exists (unless `if_not_exists`, which makes it a no-op returning
    /// `Ok(false)`).
    pub fn create_table(
        &self,
        name: &str,
        mut table: Table,
        if_not_exists: bool,
    ) -> DbResult<bool> {
        if self.views.read().contains_key(name) {
            return Err(DbError::AlreadyExists(format!("view {name}")));
        }
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            if if_not_exists {
                return Ok(false);
            }
            return Err(DbError::AlreadyExists(format!("table {name}")));
        }
        table.attach_budget(&self.budget)?;
        tables.insert(name.to_owned(), Arc::new(RwLock::new(table)));
        Ok(true)
    }

    /// The database-wide memory budget registered tables charge against.
    pub fn memory_budget(&self) -> &Arc<MemoryBudget> {
        &self.budget
    }

    /// Fetches a table handle.
    ///
    /// # Errors
    /// Returns [`DbError::NotFound`] when no such table exists.
    pub fn table(&self, name: &str) -> DbResult<TableHandle> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::NotFound(format!("table {name}")))
    }

    /// True when a table of this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(name)
    }

    /// Drops a table.
    ///
    /// # Errors
    /// Returns [`DbError::NotFound`] unless `if_exists`.
    pub fn drop_table(&self, name: &str, if_exists: bool) -> DbResult<bool> {
        let mut tables = self.tables.write();
        if tables.remove(name).is_none() {
            if if_exists {
                return Ok(false);
            }
            return Err(DbError::NotFound(format!("table {name}")));
        }
        // drop index registrations pointing at this table
        self.indexes.write().retain(|_, t| t != name);
        Ok(true)
    }

    /// Registers a view.
    ///
    /// # Errors
    /// Returns [`DbError::AlreadyExists`] when the name is taken and
    /// `or_replace` is false.
    pub fn create_view(&self, name: &str, query: SelectStmt, or_replace: bool) -> DbResult<()> {
        if self.tables.read().contains_key(name) {
            return Err(DbError::AlreadyExists(format!("table {name}")));
        }
        let mut views = self.views.write();
        if views.contains_key(name) && !or_replace {
            return Err(DbError::AlreadyExists(format!("view {name}")));
        }
        views.insert(name.to_owned(), Arc::new(query));
        Ok(())
    }

    /// Fetches a view definition if one exists.
    pub fn view(&self, name: &str) -> Option<Arc<SelectStmt>> {
        self.views.read().get(name).cloned()
    }

    /// Drops a view.
    ///
    /// # Errors
    /// Returns [`DbError::NotFound`] unless `if_exists`.
    pub fn drop_view(&self, name: &str, if_exists: bool) -> DbResult<bool> {
        let mut views = self.views.write();
        if views.remove(name).is_none() {
            if if_exists {
                return Ok(false);
            }
            return Err(DbError::NotFound(format!("view {name}")));
        }
        Ok(true)
    }

    /// Records that index `index_name` lives on `table_name`.
    ///
    /// # Errors
    /// Returns [`DbError::AlreadyExists`] for duplicate index names.
    pub fn register_index(&self, index_name: &str, table_name: &str) -> DbResult<()> {
        let mut idx = self.indexes.write();
        if idx.contains_key(index_name) {
            return Err(DbError::AlreadyExists(format!("index {index_name}")));
        }
        idx.insert(index_name.to_owned(), table_name.to_owned());
        Ok(())
    }

    /// True when an index of this name is registered.
    pub fn has_index(&self, index_name: &str) -> bool {
        self.indexes.read().contains_key(index_name)
    }

    /// The table an index lives on, if the index is registered.
    pub fn index_table(&self, index_name: &str) -> Option<String> {
        self.indexes.read().get(index_name).cloned()
    }

    /// Resolves which table an index lives on and unregisters it.
    ///
    /// # Errors
    /// Returns [`DbError::NotFound`] unless `if_exists`.
    pub fn unregister_index(&self, index_name: &str, if_exists: bool) -> DbResult<Option<String>> {
        let mut idx = self.indexes.write();
        match idx.remove(index_name) {
            Some(t) => Ok(Some(t)),
            None if if_exists => Ok(None),
            None => Err(DbError::NotFound(format!("index {index_name}"))),
        }
    }

    /// Names of all tables (sorted, for deterministic listings).
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Names of all views (sorted).
    pub fn view_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.views.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::types::{Column, DataType, Schema};

    fn new_table() -> Table {
        Table::new(Schema::new(vec![Column::new("a", DataType::Int)], None).unwrap())
    }

    #[test]
    fn create_and_drop_table() {
        let c = Catalog::new();
        assert!(c.create_table("t", new_table(), false).unwrap());
        assert!(c.has_table("t"));
        assert!(c.create_table("t", new_table(), false).is_err());
        assert!(!c.create_table("t", new_table(), true).unwrap());
        assert!(c.drop_table("t", false).unwrap());
        assert!(!c.has_table("t"));
        assert!(c.drop_table("t", false).is_err());
        assert!(!c.drop_table("t", true).unwrap());
    }

    #[test]
    fn views_and_tables_share_namespace() {
        let c = Catalog::new();
        c.create_table("t", new_table(), false).unwrap();
        let q = parse_query("SELECT 1").unwrap();
        assert!(c.create_view("t", q.clone(), false).is_err());
        c.create_view("v", q.clone(), false).unwrap();
        assert!(c.create_table("v", new_table(), false).is_err());
        assert!(c.view("v").is_some());
        // replace
        assert!(c.create_view("v", q.clone(), false).is_err());
        c.create_view("v", q, true).unwrap();
        assert!(c.drop_view("v", false).unwrap());
        assert!(c.view("v").is_none());
    }

    #[test]
    fn index_registry() {
        let c = Catalog::new();
        c.create_table("t", new_table(), false).unwrap();
        c.register_index("i", "t").unwrap();
        assert!(c.has_index("i"));
        assert!(c.register_index("i", "t").is_err());
        assert_eq!(c.unregister_index("i", false).unwrap(), Some("t".into()));
        assert!(c.unregister_index("i", false).is_err());
        assert_eq!(c.unregister_index("i", true).unwrap(), None);
    }

    #[test]
    fn dropping_table_unregisters_its_indexes() {
        let c = Catalog::new();
        c.create_table("t", new_table(), false).unwrap();
        c.register_index("i", "t").unwrap();
        c.drop_table("t", false).unwrap();
        assert!(!c.has_index("i"));
    }

    #[test]
    fn sorted_listings() {
        let c = Catalog::new();
        c.create_table("b", new_table(), false).unwrap();
        c.create_table("a", new_table(), false).unwrap();
        assert_eq!(c.table_names(), vec!["a".to_string(), "b".to_string()]);
    }
}
