//! The descendant query (paper §VI-A): which pages are within n clicks of a
//! page, on a deep two-domain web graph (the web-BerkStan stand-in).
//!
//! Run with: `cargo run --release --example descendant_query [-- <scale>]`

use dbcp::{Driver, LocalDriver};
use sqldb::{Database, EngineProfile};
use sqloop::{ExecutionMode, PrioritySpec, SQLoop, SqloopConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.3);
    let dataset = graphgen::datasets::berkstan_like(scale);
    println!("dataset: {} ({})", dataset.name, dataset.graph);

    let db = Database::new(EngineProfile::Postgres);
    let driver = LocalDriver::new(db);
    let mut conn = driver.connect()?;
    workloads::load_edges(conn.as_mut(), &dataset.graph)?;
    drop(conn);

    // explore progressively deeper, reporting explored pages vs time —
    // the x-axis of the paper's Fig. 4 bottom row
    for hops in [5u64, 20, 60, 100] {
        let oracle = workloads::oracle::descendants(&dataset.graph, 0, hops);
        let query = workloads::queries::descendant_query(0, hops);
        let config = SqloopConfig {
            mode: ExecutionMode::AsyncPrio,
            threads: 4,
            partitions: 32,
            priority: Some(PrioritySpec::lowest("SELECT MIN(delta) FROM {}")),
            ..SqloopConfig::default()
        };
        let sqloop = SQLoop::new(Arc::new(driver.clone())).with_config(config);
        let report = sqloop.execute_detailed(&query)?;
        println!(
            "≤{hops:>3} clicks: {:>6} pages discovered (oracle {:>6}) in {:>8.2?}",
            report.result.rows.len(),
            oracle.len(),
            report.elapsed,
        );
    }

    // the paper's Fig. 6 question: how many clicks between two far pages?
    if let Some((target, hops)) = dataset.graph.node_at_distance(0, 100) {
        let query = workloads::queries::descendant_clicks(0, target);
        let sqloop = SQLoop::new(Arc::new(driver.clone())).with_config(SqloopConfig {
            mode: ExecutionMode::Async,
            threads: 4,
            partitions: 32,
            ..SqloopConfig::default()
        });
        let report = sqloop.execute_detailed(&query)?;
        println!(
            "page 0 → page {target}: {:?} clicks (BFS says {hops}) in {:.2?}",
            report.result.rows.first().map(|r| r[0].clone()),
            report.elapsed
        );
    }
    Ok(())
}
