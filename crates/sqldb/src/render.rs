//! AST → SQL text rendering, parameterized by engine dialect.
//!
//! Used by the SQLoop translation module: the middleware parses the user's
//! engine-independent SQL once, rewrites the AST per target engine, and
//! renders it with that engine's [`Dialect`]. Rendering followed by parsing
//! round-trips (a property test in `tests/` checks this).

use crate::ast::*;
use crate::profile::Dialect;
use crate::types::DataType;
use crate::value::Value;

/// Renders a statement as SQL text in the given dialect.
pub fn statement_to_sql(stmt: &Statement, dialect: &Dialect) -> String {
    let mut r = Renderer::new(dialect);
    r.statement(stmt);
    r.out
}

/// Renders a query as SQL text in the given dialect.
pub fn query_to_sql(query: &SelectStmt, dialect: &Dialect) -> String {
    let mut r = Renderer::new(dialect);
    r.query(query);
    r.out
}

/// Renders an expression as SQL text in the given dialect.
pub fn expr_to_sql(expr: &Expr, dialect: &Dialect) -> String {
    let mut r = Renderer::new(dialect);
    r.expr(expr);
    r.out
}

struct Renderer<'a> {
    dialect: &'a Dialect,
    out: String,
}

impl<'a> Renderer<'a> {
    fn new(dialect: &'a Dialect) -> Renderer<'a> {
        Renderer {
            dialect,
            out: String::new(),
        }
    }

    fn push(&mut self, s: &str) {
        self.out.push_str(s);
    }

    fn ident(&mut self, name: &str) {
        let quoted = self.dialect.quote(name);
        self.out.push_str(&quoted);
    }

    fn comma_list<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            f(self, item);
        }
    }

    fn statement(&mut self, stmt: &Statement) {
        match stmt {
            Statement::CreateTable(ct) => self.create_table(ct),
            Statement::CreateIndex(ci) => {
                self.push("CREATE ");
                if ci.unique {
                    self.push("UNIQUE ");
                }
                self.push("INDEX ");
                if ci.if_not_exists {
                    self.push("IF NOT EXISTS ");
                }
                self.ident(&ci.name);
                self.push(" ON ");
                self.ident(&ci.table);
                self.push(" (");
                self.ident(&ci.column);
                self.push(")");
            }
            Statement::CreateView(cv) => {
                self.push("CREATE ");
                if cv.or_replace {
                    self.push("OR REPLACE ");
                }
                self.push("VIEW ");
                self.ident(&cv.name);
                self.push(" AS ");
                self.query(&cv.query);
            }
            Statement::DropTable { name, if_exists } => {
                self.push("DROP TABLE ");
                if *if_exists {
                    self.push("IF EXISTS ");
                }
                self.ident(name);
            }
            Statement::DropView { name, if_exists } => {
                self.push("DROP VIEW ");
                if *if_exists {
                    self.push("IF EXISTS ");
                }
                self.ident(name);
            }
            Statement::DropIndex { name, if_exists } => {
                self.push("DROP INDEX ");
                if *if_exists {
                    self.push("IF EXISTS ");
                }
                self.ident(name);
            }
            Statement::Truncate { name } => {
                self.push("TRUNCATE TABLE ");
                self.ident(name);
            }
            Statement::Insert(ins) => self.insert(ins),
            Statement::Update(upd) => self.update(upd),
            Statement::Delete { table, selection } => {
                self.push("DELETE FROM ");
                self.ident(table);
                if let Some(sel) = selection {
                    self.push(" WHERE ");
                    self.expr(sel);
                }
            }
            Statement::Select(q) => self.query(q),
            Statement::Explain { analyze, stmt } => {
                self.push(if *analyze {
                    "EXPLAIN ANALYZE "
                } else {
                    "EXPLAIN "
                });
                self.statement(stmt);
            }
            Statement::Begin => self.push("BEGIN"),
            Statement::Commit => self.push("COMMIT"),
            Statement::Rollback => self.push("ROLLBACK"),
        }
    }

    fn create_table(&mut self, ct: &CreateTable) {
        self.push("CREATE ");
        if ct.unlogged && self.dialect.supports_unlogged {
            self.push("UNLOGGED ");
        }
        self.push("TABLE ");
        if ct.if_not_exists {
            self.push("IF NOT EXISTS ");
        }
        self.ident(&ct.name);
        if let Some(q) = &ct.as_select {
            self.push(" AS ");
            self.query(q);
            return;
        }
        self.push(" (");
        let float_name = self.dialect.float_type_name;
        self.comma_list(&ct.columns, |r, c| {
            r.ident(&c.name);
            r.push(" ");
            match c.data_type {
                DataType::Int => r.push("BIGINT"),
                DataType::Float => r.push(float_name),
                DataType::Text => r.push("TEXT"),
                DataType::Bool => r.push("BOOLEAN"),
            }
            if c.primary_key {
                r.push(" PRIMARY KEY");
            }
        });
        self.push(")");
    }

    fn insert(&mut self, ins: &Insert) {
        self.push("INSERT INTO ");
        self.ident(&ins.table);
        if let Some(cols) = &ins.columns {
            self.push(" (");
            self.comma_list(cols, |r, c| r.ident(c));
            self.push(")");
        }
        self.push(" ");
        match &ins.source {
            InsertSource::Values(rows) => {
                self.push("VALUES ");
                self.comma_list(rows, |r, row| {
                    r.push("(");
                    r.comma_list(row, |r, e| r.expr(e));
                    r.push(")");
                });
            }
            InsertSource::Select(q) => self.query(q),
        }
    }

    fn update(&mut self, upd: &Update) {
        self.push("UPDATE ");
        self.ident(&upd.table);
        if let Some(a) = &upd.alias {
            self.push(" AS ");
            self.ident(a);
        }
        if let Some(on) = &upd.join_on {
            // MySQL join-update form
            for tr in &upd.from {
                self.push(" JOIN ");
                self.table_factor(&tr.base);
            }
            self.push(" ON ");
            self.expr(on);
            self.push(" SET ");
            let assignments = upd.assignments.clone();
            self.comma_list(&assignments, |r, (c, e)| {
                r.ident(c);
                r.push(" = ");
                r.expr(e);
            });
        } else {
            self.push(" SET ");
            let assignments = upd.assignments.clone();
            self.comma_list(&assignments, |r, (c, e)| {
                r.ident(c);
                r.push(" = ");
                r.expr(e);
            });
            if !upd.from.is_empty() {
                self.push(" FROM ");
                let from = upd.from.clone();
                self.comma_list(&from, |r, tr| r.table_ref(tr));
            }
        }
        if let Some(sel) = &upd.selection {
            self.push(" WHERE ");
            self.expr(sel);
        }
    }

    fn query(&mut self, q: &SelectStmt) {
        self.set_expr(&q.body);
        if !q.order_by.is_empty() {
            self.push(" ORDER BY ");
            let order_by = q.order_by.clone();
            self.comma_list(&order_by, |r, o| {
                r.expr(&o.expr);
                if !o.asc {
                    r.push(" DESC");
                }
            });
        }
        if let Some(n) = q.limit {
            self.push(&format!(" LIMIT {n}"));
        }
    }

    fn set_expr(&mut self, body: &SetExpr) {
        match body {
            SetExpr::Select(s) => self.select(s),
            SetExpr::Values(rows) => {
                self.push("VALUES ");
                self.comma_list(rows, |r, row| {
                    r.push("(");
                    r.comma_list(row, |r, e| r.expr(e));
                    r.push(")");
                });
            }
            SetExpr::SetOp { op, left, right } => {
                self.set_expr(left);
                self.push(match op {
                    SetOperator::Union => " UNION ",
                    SetOperator::UnionAll => " UNION ALL ",
                });
                self.set_expr(right);
            }
        }
    }

    fn select(&mut self, s: &Select) {
        self.push("SELECT ");
        if s.distinct {
            self.push("DISTINCT ");
        }
        let projections = s.projections.clone();
        self.comma_list(&projections, |r, item| match item {
            SelectItem::Wildcard => r.push("*"),
            SelectItem::QualifiedWildcard(t) => {
                r.ident(t);
                r.push(".*");
            }
            SelectItem::Expr { expr, alias } => {
                r.expr(expr);
                if let Some(a) = alias {
                    r.push(" AS ");
                    r.ident(a);
                }
            }
        });
        if !s.from.is_empty() {
            self.push(" FROM ");
            let from = s.from.clone();
            self.comma_list(&from, |r, tr| r.table_ref(tr));
        }
        if let Some(sel) = &s.selection {
            self.push(" WHERE ");
            self.expr(sel);
        }
        if !s.group_by.is_empty() {
            self.push(" GROUP BY ");
            let group_by = s.group_by.clone();
            self.comma_list(&group_by, |r, e| r.expr(e));
        }
        if let Some(h) = &s.having {
            self.push(" HAVING ");
            self.expr(h);
        }
    }

    fn table_ref(&mut self, tr: &TableRef) {
        self.table_factor(&tr.base);
        for j in &tr.joins {
            self.push(match j.join_type {
                JoinType::Inner => " JOIN ",
                JoinType::Left => " LEFT JOIN ",
                JoinType::Cross => " CROSS JOIN ",
            });
            self.table_factor(&j.factor);
            if let Some(on) = &j.on {
                self.push(" ON ");
                self.expr(on);
            }
        }
    }

    fn table_factor(&mut self, f: &TableFactor) {
        match f {
            TableFactor::Table { name, alias } => {
                self.ident(name);
                if let Some(a) = alias {
                    self.push(" AS ");
                    self.ident(a);
                }
            }
            TableFactor::Derived { subquery, alias } => {
                self.push("(");
                self.query(subquery);
                self.push(") AS ");
                self.ident(alias);
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Literal(v) => self.literal(v),
            Expr::Param(_) => self.push("?"),
            Expr::Column { table, name } => {
                if let Some(t) = table {
                    self.ident(t);
                    self.push(".");
                }
                self.ident(name);
            }
            Expr::Binary { left, op, right } => {
                self.push("(");
                self.expr(left);
                self.push(" ");
                self.push(op.as_sql());
                self.push(" ");
                self.expr(right);
                self.push(")");
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => {
                    self.push("(-");
                    self.expr(expr);
                    self.push(")");
                }
                UnaryOp::Not => {
                    self.push("(NOT ");
                    self.expr(expr);
                    self.push(")");
                }
            },
            Expr::Function { name, args } => {
                self.push(&name.to_ascii_uppercase());
                self.push("(");
                let args = args.clone();
                self.comma_list(&args, |r, a| match a {
                    FunctionArg::Expr(e) => r.expr(e),
                    FunctionArg::Wildcard => r.push("*"),
                });
                self.push(")");
            }
            Expr::Case {
                branches,
                else_result,
            } => {
                self.push("CASE");
                for (c, v) in branches {
                    self.push(" WHEN ");
                    self.expr(c);
                    self.push(" THEN ");
                    self.expr(v);
                }
                if let Some(e) = else_result {
                    self.push(" ELSE ");
                    self.expr(e);
                }
                self.push(" END");
            }
            Expr::IsNull { expr, negated } => {
                self.push("(");
                self.expr(expr);
                self.push(if *negated { " IS NOT NULL" } else { " IS NULL" });
                self.push(")");
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                self.push("(");
                self.expr(expr);
                self.push(if *negated { " NOT IN (" } else { " IN (" });
                let list = list.clone();
                self.comma_list(&list, |r, e| r.expr(e));
                self.push("))");
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                self.push("(");
                self.expr(expr);
                self.push(if *negated {
                    " NOT BETWEEN "
                } else {
                    " BETWEEN "
                });
                self.expr(low);
                self.push(" AND ");
                self.expr(high);
                self.push(")");
            }
            Expr::Cast { expr, data_type } => {
                self.push("CAST(");
                self.expr(expr);
                self.push(" AS ");
                self.push(match data_type {
                    DataType::Int => "BIGINT",
                    DataType::Float => self.dialect.float_type_name,
                    DataType::Text => "TEXT",
                    DataType::Bool => "BOOLEAN",
                });
                self.push(")");
            }
        }
    }

    fn literal(&mut self, v: &Value) {
        match v {
            Value::Null => self.push("NULL"),
            Value::Int(i) => self.push(&i.to_string()),
            Value::Float(f) => {
                if f.is_infinite() {
                    if self.dialect.supports_infinity_literal {
                        self.push(if *f > 0.0 { "Infinity" } else { "-Infinity" });
                    } else {
                        // engines without an Infinity literal get a sentinel
                        // that the translation module is expected to have
                        // substituted already; render defensively anyway
                        self.push(if *f > 0.0 { "1e308" } else { "-1e308" });
                    }
                } else if f.fract() == 0.0 && f.abs() < 1e15 {
                    // keep a decimal point so it re-parses as a float
                    self.push(&format!("{f:.1}"));
                } else if f.abs() >= 1e15 {
                    // exponent form keeps huge sentinels (e.g. 1e308) short
                    self.push(&format!("{f:e}"));
                } else {
                    self.push(&format!("{f}"));
                }
            }
            Value::Text(s) => {
                self.push("'");
                self.push(&s.replace('\'', "''"));
                self.push("'");
            }
            Value::Bool(b) => self.push(if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expression, parse_query, parse_statement};
    use crate::profile::EngineProfile;

    fn pg() -> Dialect {
        EngineProfile::Postgres.dialect()
    }

    fn my() -> Dialect {
        EngineProfile::MySql.dialect()
    }

    #[test]
    fn roundtrip_select() {
        let sql = "SELECT a, SUM(b) AS s FROM t LEFT JOIN u ON t.id = u.id \
                   WHERE a > 1 GROUP BY a HAVING SUM(b) > 0 ORDER BY a LIMIT 5";
        let q = parse_query(sql).unwrap();
        let rendered = query_to_sql(&q, &pg());
        let q2 = parse_query(&rendered).unwrap();
        assert_eq!(q, q2, "render/parse should round-trip: {rendered}");
    }

    #[test]
    fn mysql_quoting_used() {
        let q = parse_query("SELECT a FROM t").unwrap();
        let rendered = query_to_sql(&q, &my());
        assert!(rendered.contains('`'), "{rendered}");
        assert!(!rendered.contains('"'), "{rendered}");
    }

    #[test]
    fn infinity_rendered_per_dialect() {
        let e = parse_expression("Infinity").unwrap();
        assert_eq!(expr_to_sql(&e, &pg()), "Infinity");
        assert_eq!(expr_to_sql(&e, &my()), "1e308");
    }

    #[test]
    fn update_forms_render() {
        let s = parse_statement("UPDATE r SET d = m.v FROM msg AS m WHERE r.id = m.id").unwrap();
        let rendered = statement_to_sql(&s, &pg());
        assert!(rendered.contains("FROM"), "{rendered}");
        let s = parse_statement("UPDATE r JOIN msg ON r.id = msg.id SET d = msg.v").unwrap();
        let rendered = statement_to_sql(&s, &my());
        assert!(rendered.contains("JOIN"), "{rendered}");
        assert!(!rendered.contains(" FROM "), "{rendered}");
    }

    #[test]
    fn string_escaping() {
        let e = Expr::Literal(Value::Text("it's".into()));
        assert_eq!(expr_to_sql(&e, &pg()), "'it''s'");
    }

    #[test]
    fn float_keeps_decimal_point() {
        let e = Expr::Literal(Value::Float(5.0));
        let s = expr_to_sql(&e, &pg());
        let back = parse_expression(&s).unwrap();
        assert_eq!(back, e, "{s} should re-parse as a float");
    }

    #[test]
    fn roundtrip_case_and_functions() {
        let sql = "SELECT CASE WHEN a = 1 THEN 0 ELSE Infinity END, COALESCE(SUM(x), 0.0), COUNT(*) FROM t GROUP BY a";
        let q = parse_query(sql).unwrap();
        let rendered = query_to_sql(&q, &pg());
        assert_eq!(parse_query(&rendered).unwrap(), q, "{rendered}");
    }
}
