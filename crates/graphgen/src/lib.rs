//! # graphgen — deterministic graph generators for the SQLoop reproduction
//!
//! Synthetic stand-ins for the SNAP datasets of the paper's evaluation
//! (web-Google, Twitter ego networks, web-BerkStan), plus generic random
//! graphs and CSV import/export. All generators are seeded and reproducible;
//! see DESIGN.md §2 for why each stand-in preserves the behaviour the
//! corresponding experiment measures.
//!
//! ```
//! use graphgen::{datasets, Graph};
//!
//! let d = datasets::google_web_like(0.1);
//! assert!(d.graph.edge_count() > 1000);
//! // the paper's edge weights: 1/outdegree
//! let w = d.graph.weighted_edges();
//! assert_eq!(w.len(), d.graph.edge_count());
//! ```

#![warn(missing_docs)]

pub mod datasets;
pub mod generate;
mod graph;
pub mod io;

pub use datasets::{Dataset, DatasetSummary, DATASET_SEED};
pub use generate::{chain, ego_network, two_domain_web, uniform_random, web_graph};
pub use graph::{Graph, NodeId};
pub use io::{load_edge_list, save_edge_list};
