//! Loading graphs into an engine as the `edges` table.

use crate::queries::EDGES_DDL;
use dbcp::Connection;
use graphgen::Graph;
use sqloop::translate::translate_sql;
use sqloop::SqloopResult;

/// Creates and fills `edges(src, dst, weight)` with the paper's
/// `1/outdegree` weights, batching inserts.
///
/// # Errors
/// Engine/translation errors.
pub fn load_edges(conn: &mut dyn Connection, graph: &Graph) -> SqloopResult<()> {
    run(conn, "DROP VIEW IF EXISTS both_edges")?;
    run(conn, "DROP TABLE IF EXISTS edges")?;
    run(conn, EDGES_DDL)?;
    let weighted = graph.weighted_edges();
    for chunk in weighted.chunks(512) {
        let values = chunk
            .iter()
            .map(|(s, d, w)| format!("({s}, {d}, {w})"))
            .collect::<Vec<_>>()
            .join(", ");
        run(conn, &format!("INSERT INTO edges VALUES {values}"))?;
    }
    // the index SQLoop's analyzer relies on for incoming-edge lookups
    run(conn, "CREATE INDEX IF NOT EXISTS edges_dst ON edges (dst)")?;
    Ok(())
}

fn run(conn: &mut dyn Connection, sql: &str) -> SqloopResult<()> {
    let translated = translate_sql(sql, conn.profile())?;
    conn.execute(&translated)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcp::{Driver, LocalDriver};
    use graphgen::chain;
    use sqldb::{Database, EngineProfile, Value};

    #[test]
    fn load_into_every_profile() {
        for profile in EngineProfile::ALL {
            let db = Database::new(profile);
            let mut conn = LocalDriver::new(db).connect().unwrap();
            load_edges(conn.as_mut(), &chain(50)).unwrap();
            let n = conn.query("SELECT COUNT(*) FROM edges").unwrap();
            assert_eq!(n.rows[0][0], Value::Int(49), "{profile}");
        }
    }

    #[test]
    fn weights_are_inverse_outdegree() {
        let g = graphgen::Graph::from_edges(vec![(0, 1), (0, 2), (1, 2)]);
        let db = Database::new(EngineProfile::Postgres);
        let mut conn = LocalDriver::new(db).connect().unwrap();
        load_edges(conn.as_mut(), &g).unwrap();
        let r = conn
            .query("SELECT weight FROM edges WHERE src = 0 LIMIT 1")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Float(0.5));
    }
}
