//! A minimal JSON value model, writer escape, and recursive-descent parser.
//!
//! The trace exporter emits JSON by hand (no external dependencies); this
//! module provides the escaping it needs plus a small parser so tests and
//! tools can validate emitted trace files without leaving the workspace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (keys ordered).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The text when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number when this is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an integer when this is numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
///
/// # Examples
/// ```
/// assert_eq!(obs::json::escape("a\"b\nc"), "a\\\"b\\nc");
/// ```
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // DEL is legal unescaped JSON but breaks terminals and diff
            // tools, so it gets the same treatment as the C0 range
            c if (c as u32) < 0x20 || c == '\u{7f}' => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a float as a JSON number token. JSON has no NaN/Infinity
/// literals, so non-finite values serialize as `null` — a parseable
/// document beats a syntax error in a metrics pipeline.
///
/// # Examples
/// ```
/// assert_eq!(obs::json::num(1.5), "1.5");
/// assert_eq!(obs::json::num(f64::NAN), "null");
/// assert_eq!(obs::json::num(f64::INFINITY), "null");
/// ```
pub fn num(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // keep integral floats recognizably numeric-float ("1.0", not "1")
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        s
    } else {
        "null".into()
    }
}

/// Parses a complete JSON document.
///
/// # Errors
/// A human-readable message with the byte offset of the first problem.
///
/// # Examples
/// ```
/// let v = obs::json::parse(r#"{"spans": [{"kind": "compute"}], "n": 3}"#).unwrap();
/// assert_eq!(v.get("n").and_then(|n| n.as_u64()), Some(3));
/// assert_eq!(v.get("spans").and_then(|s| s.as_array()).unwrap().len(), 1);
/// ```
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if matches!(b.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // unpaired surrogates render as the replacement char
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar (input is a &str, so this is safe)
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| "invalid utf-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty by match arm");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": null}, "e": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-3.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{1} unicode→";
        let doc = format!("{{\"s\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse(r#"{"a": 1} trailing"#).is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
        assert_eq!(parse(" [ ] ").unwrap(), Json::Arr(vec![]));
    }

    /// Satellite requirement: adversarial statement text — embedded NULs,
    /// DEL, ANSI escapes, quotes and backslash soup — must produce a
    /// document this module's own parser accepts and roundtrips exactly.
    #[test]
    fn adversarial_statement_text_roundtrips() {
        let nasty = "SELECT '\u{0}\u{1b}[31mevil\u{7f}' AS \"q\\\"uote\";\n\r\t-- \\u0000";
        let escaped = escape(nasty);
        assert!(!escaped.contains('\u{0}'), "raw NUL must not survive");
        assert!(!escaped.contains('\u{7f}'), "raw DEL must not survive");
        assert!(escaped.contains("\\u0000"));
        assert!(escaped.contains("\\u007f"));
        let doc = format!("{{\"sql\": \"{escaped}\"}}");
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("sql").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn num_serializes_non_finite_as_null() {
        assert_eq!(num(2.5), "2.5");
        assert_eq!(num(3.0), "3.0");
        assert_eq!(num(-0.0), "-0.0");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(f64::NEG_INFINITY), "null");
        // every finite rendering must parse back as a number
        for v in [2.5, 3.0, 1e300, -7.25] {
            assert_eq!(parse(&num(v)).unwrap().as_f64(), Some(v));
        }
    }

    #[test]
    fn u64_helper_rejects_fractions() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }
}
