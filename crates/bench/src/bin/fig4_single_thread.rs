//! Figure 4 — "SQLoop using a single thread": how intermediate results
//! accelerate computation (paper §VI-B).
//!
//! Panels reproduced, each for PostgreSQL / MySQL / MariaDB:
//!   * SSSP execution time, Sync vs Async vs AsyncP (top-left bar chart);
//!   * PR convergence (sum-of-rank vs time) for the three methods;
//!   * DQ execution time vs number of nodes explored.
//!
//! Usage: `cargo run --release -p sqloop-bench --bin fig4_single_thread --
//!         [--exp pr|sssp|dq|all] [--scale f] [--partitions n]`
//!
//! Expected shape (paper): async 1.5–3× faster than sync for PR and DQ;
//! AsyncP up to 3× faster for SSSP; identical ordering on every engine.

use sqldb::EngineProfile;
use sqloop::{ExecutionMode, PrioritySpec, SqloopConfig};
use sqloop_bench::{convergence_time, env_with_graph, parse_args, time_it, write_csv, Table};
use std::time::Duration;

const MODES: [ExecutionMode; 3] = [
    ExecutionMode::Sync,
    ExecutionMode::Async,
    ExecutionMode::AsyncPrio,
];

fn config(mode: ExecutionMode, partitions: usize, priority: PrioritySpec) -> SqloopConfig {
    SqloopConfig {
        mode,
        threads: 1, // the whole point of Fig. 4
        partitions,
        priority: Some(priority),
        ..SqloopConfig::default()
    }
}

fn main() {
    let args = parse_args();
    println!("== Figure 4: single-threaded Sync vs Async vs AsyncP ==\n");
    if args.exp == "sssp" || args.exp == "all" {
        sssp_panel(&args);
    }
    if args.exp == "pr" || args.exp == "all" {
        pr_panels(&args);
    }
    if args.exp == "dq" || args.exp == "all" {
        dq_panels(&args);
    }
}

/// Top-left panel: SSSP execution time per engine and method.
fn sssp_panel(args: &sqloop_bench::BenchArgs) {
    let dataset = graphgen::datasets::twitter_like(args.scale);
    println!("SSSP on {} ({})", dataset.name, dataset.graph);
    let source = 0;
    let (dest, hops) = dataset
        .graph
        .node_at_distance(source, u64::MAX)
        .expect("graph connected from 0");
    println!("  path probe: {source} → {dest} ({hops} hops)\n");
    let query = workloads::queries::sssp(source, dest);

    let mut table = Table::new(&[
        "engine",
        "method",
        "time (s)",
        "speedup vs Sync",
        "computes",
        "gathers",
        "stmts",
    ]);
    for profile in EngineProfile::ALL {
        let mut sync_time = None;
        for mode in MODES {
            let env = env_with_graph(profile, &dataset.graph);
            let sq = env.sqloop(config(
                mode,
                args.partitions,
                PrioritySpec::lowest("SELECT MIN(delta) FROM {}"),
            ));
            let (report, elapsed) = time_it(|| sq.execute_detailed(&query).expect("sssp run"));
            assert!(
                !report.result.rows.is_empty(),
                "destination should be reachable"
            );
            let secs = elapsed.as_secs_f64();
            let speedup = sync_time.map(|s: f64| s / secs).unwrap_or(1.0);
            sync_time.get_or_insert(secs);
            // per-run statement count comes straight off the report now
            let stmts = report
                .engine_stats
                .map(|s| s.statements.to_string())
                .unwrap_or_else(|| "-".into());
            table.row(vec![
                profile.name().into(),
                mode.label().into(),
                format!("{secs:.3}"),
                format!("{speedup:.2}x"),
                report.computes.to_string(),
                report.gathers.to_string(),
                stmts,
            ]);
        }
    }
    println!("{}", table.render());
    if let Some(p) = write_csv("fig4_sssp", &table.to_csv()) {
        println!("  wrote {}\n", p.display());
    }
}

/// Top row: PR convergence (sum of rank vs time) per engine.
fn pr_panels(args: &sqloop_bench::BenchArgs) {
    let dataset = graphgen::datasets::google_web_like(args.scale);
    println!("PageRank on {} ({})", dataset.name, dataset.graph);
    let query = workloads::queries::pagerank(args.iterations);

    let mut summary = Table::new(&[
        "engine",
        "method",
        "total time (s)",
        "99% convergence (s)",
        "final sum(rank)",
    ]);
    let mut curves = Table::new(&["engine", "method", "t (s)", "sum(rank)"]);
    for profile in EngineProfile::ALL {
        for mode in MODES {
            let env = env_with_graph(profile, &dataset.graph);
            let mut cfg = config(
                mode,
                args.partitions,
                PrioritySpec::highest("SELECT SUM(delta) FROM {}"),
            );
            cfg.sample_interval = Some(Duration::from_millis(100));
            cfg.progress_query = Some("SELECT SUM(rank) FROM {}".into());
            let sq = env.sqloop(cfg);
            let report = sq.execute_detailed(&query).expect("pr run");
            let final_total: f64 = report
                .result
                .rows
                .iter()
                .map(|r| r[1].as_f64().unwrap_or(0.0))
                .sum();
            let conv = convergence_time(&report.samples, 0.99)
                .map(|d| format!("{:.3}", d.as_secs_f64()))
                .unwrap_or_else(|| "-".into());
            summary.row(vec![
                profile.name().into(),
                mode.label().into(),
                format!("{:.3}", report.elapsed.as_secs_f64()),
                conv,
                format!("{final_total:.2}"),
            ]);
            for s in &report.samples {
                curves.row(vec![
                    profile.name().into(),
                    mode.label().into(),
                    format!("{:.3}", s.elapsed.as_secs_f64()),
                    format!("{:.3}", s.value),
                ]);
            }
        }
    }
    println!("{}", summary.render());
    if let Some(p) = write_csv("fig4_pr_summary", &summary.to_csv()) {
        println!("  wrote {}", p.display());
    }
    if let Some(p) = write_csv("fig4_pr_curves", &curves.to_csv()) {
        println!("  wrote {} (convergence series)\n", p.display());
    }
}

/// Bottom row: DQ execution time vs number of explored nodes per engine.
fn dq_panels(args: &sqloop_bench::BenchArgs) {
    let dataset = graphgen::datasets::berkstan_like(args.scale);
    println!("Descendant query on {} ({})", dataset.name, dataset.graph);
    let mut table = Table::new(&[
        "engine",
        "method",
        "hop limit",
        "nodes explored",
        "time (s)",
    ]);
    // hop limits sweep the explored-count axis like the paper's 10^1..10^5
    let hop_limits = [3u64, 10, 30, 60, 100];
    for profile in EngineProfile::ALL {
        for mode in MODES {
            for &hops in &hop_limits {
                let env = env_with_graph(profile, &dataset.graph);
                let sq = env.sqloop(config(
                    mode,
                    args.partitions,
                    PrioritySpec::lowest("SELECT MIN(delta) FROM {}"),
                ));
                let query = workloads::queries::descendant_query(0, hops);
                let (out, elapsed) = time_it(|| sq.execute(&query).expect("dq run"));
                table.row(vec![
                    profile.name().into(),
                    mode.label().into(),
                    hops.to_string(),
                    out.rows.len().to_string(),
                    format!("{:.3}", elapsed.as_secs_f64()),
                ]);
            }
        }
    }
    println!("{}", table.render());
    if let Some(p) = write_csv("fig4_dq", &table.to_csv()) {
        println!("  wrote {}\n", p.display());
    }
}
