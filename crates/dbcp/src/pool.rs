//! A small blocking connection pool with liveness checking.

use crate::driver::{Connection, Driver};
use crate::retry::RetryPolicy;
use parking_lot::{Condvar, Mutex};
use sqldb::{DbError, DbResult};
use std::sync::Arc;
use std::time::Duration;

struct PoolState {
    idle: Vec<Box<dyn Connection>>,
    total: usize,
}

/// A fixed-capacity connection pool over any [`Driver`].
///
/// SQLoop's thread pool opens one connection per worker; this pool exists
/// for applications embedding the middleware that want bounded connection
/// reuse instead. Connections are liveness-probed on checkout and on
/// return ([`Connection::ping`]); dead ones are discarded and their slot
/// freed, so a flaky network or a chaos drop never recycles a broken
/// connection to the next caller.
pub struct Pool {
    driver: Arc<dyn Driver>,
    state: Mutex<PoolState>,
    available: Condvar,
    capacity: usize,
    connect_retry: RetryPolicy,
    // metric handles resolved once at construction (see DESIGN.md §10)
    m_get: Arc<obs::Histogram>,
    m_put: Arc<obs::Histogram>,
    m_health_failures: Arc<obs::Counter>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

/// A checked-out connection; returns to the pool on drop.
pub struct PooledConnection<'a> {
    pool: &'a Pool,
    conn: Option<Box<dyn Connection>>,
}

impl std::fmt::Debug for PooledConnection<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledConnection").finish_non_exhaustive()
    }
}

impl Pool {
    /// Creates a pool that will open at most `capacity` connections.
    pub fn new(driver: Arc<dyn Driver>, capacity: usize) -> Pool {
        Pool::with_retry(driver, capacity, RetryPolicy::none())
    }

    /// As [`Pool::new`], with transient connect failures retried under
    /// `connect_retry` before checkout gives up.
    pub fn with_retry(
        driver: Arc<dyn Driver>,
        capacity: usize,
        connect_retry: RetryPolicy,
    ) -> Pool {
        let reg = obs::global();
        Pool {
            driver,
            state: Mutex::new(PoolState {
                idle: Vec::new(),
                total: 0,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            connect_retry,
            m_get: reg.histogram("dbcp.pool.get"),
            m_put: reg.histogram("dbcp.pool.put"),
            m_health_failures: reg.counter("dbcp.pool.health_check_failures"),
        }
    }

    /// Checks out a live connection, opening one lazily while under
    /// capacity and otherwise waiting up to `timeout` for a return. Idle
    /// connections that fail the liveness probe are discarded (freeing
    /// their capacity slot) rather than handed out.
    ///
    /// # Errors
    /// Returns [`DbError::Connection`] on open failure or checkout timeout.
    pub fn get(&self, timeout: Duration) -> DbResult<PooledConnection<'_>> {
        let started = std::time::Instant::now();
        let mut state = self.state.lock();
        loop {
            while let Some(mut conn) = state.idle.pop() {
                // probe outside any fairness concern: the lock is held, but
                // ping is one round trip on an idle connection
                if conn.ping() {
                    self.m_get.observe(started.elapsed());
                    return Ok(PooledConnection {
                        pool: self,
                        conn: Some(conn),
                    });
                }
                self.m_health_failures.inc();
                state.total -= 1;
                drop(conn);
                self.available.notify_one();
            }
            if state.total < self.capacity {
                state.total += 1;
                drop(state);
                match self.connect_retry.run(|_| self.driver.connect()) {
                    Ok(conn) => {
                        self.m_get.observe(started.elapsed());
                        return Ok(PooledConnection {
                            pool: self,
                            conn: Some(conn),
                        });
                    }
                    Err(e) => {
                        self.state.lock().total -= 1;
                        self.available.notify_one();
                        return Err(e);
                    }
                }
            }
            if self.available.wait_for(&mut state, timeout).timed_out() {
                return Err(DbError::Connection(
                    "timed out waiting for a pooled connection".into(),
                ));
            }
        }
    }

    /// Number of connections currently open (idle + checked out).
    pub fn open_connections(&self) -> usize {
        self.state.lock().total
    }

    /// Returns a connection to the idle set — or discards it when the
    /// liveness probe fails, freeing its capacity slot. Waiters are
    /// notified either way (a freed slot lets them open a fresh one).
    fn put_back(&self, mut conn: Box<dyn Connection>) {
        let started = std::time::Instant::now();
        let alive = conn.ping();
        if !alive {
            self.m_health_failures.inc();
        }
        let mut state = self.state.lock();
        if alive {
            state.idle.push(conn);
        } else {
            state.total -= 1;
            drop(conn);
        }
        drop(state);
        self.available.notify_one();
        self.m_put.observe(started.elapsed());
    }
}

impl PooledConnection<'_> {
    /// The underlying connection.
    pub fn conn(&mut self) -> &mut dyn Connection {
        self.conn.as_mut().expect("present until drop").as_mut()
    }
}

impl Drop for PooledConnection<'_> {
    fn drop(&mut self) {
        if let Some(conn) = self.conn.take() {
            self.pool.put_back(conn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosConfig, ChaosDriver, FaultWeights};
    use crate::driver::LocalDriver;
    use sqldb::{Database, EngineProfile, Value};

    fn local_driver() -> Arc<LocalDriver> {
        let db = Database::new(EngineProfile::Postgres);
        let mut s = db.connect();
        s.execute("CREATE TABLE t (a INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        Arc::new(LocalDriver::new(db))
    }

    fn pool(cap: usize) -> Pool {
        Pool::new(local_driver(), cap)
    }

    #[test]
    fn checkout_and_reuse() {
        let p = pool(2);
        {
            let mut c = p.get(Duration::from_secs(1)).unwrap();
            let r = c.conn().query("SELECT a FROM t").unwrap();
            assert_eq!(r.rows[0][0], Value::Int(1));
        }
        assert_eq!(p.open_connections(), 1);
        let _c1 = p.get(Duration::from_secs(1)).unwrap();
        let _c2 = p.get(Duration::from_secs(1)).unwrap();
        assert_eq!(p.open_connections(), 2);
    }

    #[test]
    fn capacity_enforced_with_timeout() {
        let p = pool(1);
        let _held = p.get(Duration::from_secs(1)).unwrap();
        let err = p.get(Duration::from_millis(50));
        assert!(matches!(err, Err(DbError::Connection(_))));
    }

    #[test]
    fn waiting_checkout_succeeds_after_return() {
        let p = Arc::new(pool(1));
        let held = p.get(Duration::from_secs(1)).unwrap();
        let p2 = p.clone();
        let h = std::thread::spawn(move || {
            let mut c = p2.get(Duration::from_secs(5)).unwrap();
            c.conn().query("SELECT a FROM t").unwrap().rows.len()
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(held);
        assert_eq!(h.join().unwrap(), 1);
    }

    /// A connection dropped mid-session must not be recycled: put_back
    /// discards it and frees the slot.
    #[test]
    fn broken_connection_is_discarded_on_return() {
        let chaos = Arc::new(ChaosDriver::new(
            local_driver(),
            ChaosConfig {
                // fault exactly one statement, then heal
                max_faults: Some(1),
                weights: FaultWeights {
                    connect_refused: 0,
                    stmt_error: 0,
                    latency: 0,
                    drop: 1,
                    ..FaultWeights::default()
                },
                ..ChaosConfig::seeded(1, 1.0)
            },
        ));
        let p = Pool::new(chaos, 2);
        {
            let mut c = p.get(Duration::from_secs(1)).unwrap();
            // the single budgeted fault drops this connection
            let err = c.conn().execute("SELECT a FROM t");
            assert!(matches!(err, Err(DbError::Connection(_))), "{err:?}");
            assert_eq!(p.open_connections(), 1);
        }
        // the dead connection was discarded, not pooled
        assert_eq!(p.open_connections(), 0);
        // and a fresh checkout works (outage healed)
        let mut c = p.get(Duration::from_secs(1)).unwrap();
        assert_eq!(
            c.conn().query("SELECT a FROM t").unwrap().rows[0][0],
            Value::Int(1)
        );
    }

    /// A waiter blocked at capacity must wake up when a dead connection's
    /// slot is freed, not time out.
    #[test]
    fn waiter_wakes_when_dead_connection_frees_a_slot() {
        let chaos = Arc::new(ChaosDriver::new(
            local_driver(),
            ChaosConfig {
                max_faults: Some(1),
                weights: FaultWeights {
                    connect_refused: 0,
                    stmt_error: 0,
                    latency: 0,
                    drop: 1,
                    ..FaultWeights::default()
                },
                ..ChaosConfig::seeded(2, 1.0)
            },
        ));
        let p = Arc::new(Pool::new(chaos, 1));
        let mut held = p.get(Duration::from_secs(1)).unwrap();
        let _ = held.conn().execute("SELECT a FROM t"); // drops the conn
        let p2 = p.clone();
        let h = std::thread::spawn(move || {
            let mut c = p2.get(Duration::from_secs(5)).unwrap();
            c.conn().query("SELECT a FROM t").unwrap().rows.len()
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(held); // discards the dead conn, frees the slot
        assert_eq!(h.join().unwrap(), 1);
    }

    /// Connect retries absorb injected refusals under a bounded policy.
    #[test]
    fn connect_retry_rides_through_refusals() {
        let chaos = Arc::new(ChaosDriver::new(
            local_driver(),
            ChaosConfig {
                max_faults: Some(2),
                weights: FaultWeights {
                    connect_refused: 1,
                    stmt_error: 0,
                    latency: 0,
                    drop: 0,
                    ..FaultWeights::default()
                },
                ..ChaosConfig::seeded(3, 1.0)
            },
        ));
        let stats = chaos.stats();
        let p = Pool::with_retry(chaos, 1, RetryPolicy::new(4, Duration::ZERO));
        let mut c = p.get(Duration::from_secs(1)).unwrap();
        assert_eq!(
            c.conn().query("SELECT a FROM t").unwrap().rows[0][0],
            Value::Int(1)
        );
        assert_eq!(stats.connects_refused(), 2);
    }
}
