//! # sqldb — embedded SQL engine substrate for the SQLoop reproduction
//!
//! A from-scratch, in-memory relational engine providing everything the
//! [SQLoop middleware](https://doi.org/10.1109/ICDCS.2018.00104) needs from
//! the database systems of its evaluation (PostgreSQL 9.6, MySQL 5.7,
//! MariaDB 10.2):
//!
//! * a SQL surface: DDL, DML, queries with joins / grouping / set operators,
//!   views, and secondary indexes;
//! * concurrent sessions with table-level two-phase locking, transactions and
//!   isolation levels — one [`Session`] per "connection", which is how SQLoop
//!   extracts parallelism from an unmodified engine;
//! * three [`EngineProfile`]s whose *executors and dialects genuinely
//!   differ* (hash joins vs. nested loops, `UPDATE … FROM` vs.
//!   `UPDATE … JOIN`, `Infinity` literals, recursive-CTE availability), so
//!   multi-engine experiments measure real architectural differences.
//!
//! ## Quick start
//!
//! ```
//! use sqldb::{Database, EngineProfile};
//!
//! # fn main() -> Result<(), sqldb::DbError> {
//! let db = Database::new(EngineProfile::Postgres);
//! let mut conn = db.connect();
//! conn.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")?;
//! conn.execute("INSERT INTO edges VALUES (1, 2, 1.0), (2, 1, 0.5)")?;
//! let out = conn.query("SELECT src, COUNT(*) FROM edges GROUP BY src ORDER BY src")?;
//! assert_eq!(out.rows.len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod batch;
pub mod bind;
pub mod budget;
pub mod catalog;
mod db;
pub mod dialect_check;
pub mod digest;
mod error;
pub mod exec;
pub mod explain;
pub mod join;
pub mod lexer;
pub mod op_profile;
pub mod parser;
pub mod plan_cache;
pub mod profile;
pub mod render;
pub mod snapshot;
pub mod stats;
pub mod storage;
pub mod txn;
pub mod types;
pub mod value;

pub use budget::{row_bytes, MemoryBudget};
pub use db::StmtHandle;
pub use db::{Database, Session, DEFAULT_LOCK_TIMEOUT};
pub use digest::{
    normalize_sql, DigestEntry, DigestStats, SlowLog, SlowStatement, DIGEST_CAPACITY,
    SLOW_LOG_CAPACITY,
};
pub use error::{DbError, DbResult};
pub use exec::{ExecLimits, QueryResult, StmtOutput};
pub use op_profile::{OpNode, OpProfiler};
pub use plan_cache::{PlanCacheStats, DEFAULT_PLAN_CACHE_CAPACITY};
pub use profile::{Dialect, EngineProfile, JoinStrategy};
pub use snapshot::{SalvageReport, TableDump};
pub use stats::{Stats, StatsSnapshot};
pub use txn::IsolationLevel;
pub use types::{Column, DataType, Schema};
pub use value::{Row, Value};

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
        assert_send_sync::<Session>();
        assert_send_sync::<DbError>();
        assert_send_sync::<Value>();
    }
}
