//! Offline stand-in for `serde`: marker traits and no-op derive macros.
//! The workspace derives `Serialize`/`Deserialize` for API symmetry but
//! never drives them through a serializer, so empty impls suffice.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
