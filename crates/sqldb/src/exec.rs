//! Query and DML execution over materialized relations.

use crate::ast::*;
use crate::batch::{ColumnBatch, CompiledExpr, EvalOut};
use crate::bind::{bind_scalar, bind_with_aggregates, AggSpec, BoundExpr, Scope, ScopeRelation};
use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::join::{join_rels, split_conjuncts, Rel};
use crate::op_profile::{us_since, OpProfiler};
use crate::profile::EngineProfile;
use crate::stats::Stats;
use crate::storage::Table;
use crate::txn::{UndoLog, UndoOp};
use crate::types::{Column, DataType, Schema};
use crate::value::{Row, Value};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Maximum view-expansion / derived-table nesting depth.
const MAX_DEPTH: usize = 32;

/// Per-statement execution limits, enforced inside the executor's row
/// loops so a runaway statement stops mid-scan instead of after the fact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecLimits {
    /// Hard cap on rows a query may produce ([`DbError::BudgetExceeded`]).
    pub max_rows: Option<u64>,
    /// Wall-clock deadline for the whole statement ([`DbError::Timeout`]).
    pub deadline: Option<Instant>,
}

/// The rows and column names produced by a query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// The single value of a 1×1 result, if it is one.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }
}

/// What a statement produced.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtOutput {
    /// A result set (queries).
    Rows(QueryResult),
    /// A row count (DML).
    Affected(u64),
    /// Nothing (DDL, transaction control handled by the session).
    Done,
}

impl StmtOutput {
    /// Rows affected, `0` for non-DML.
    pub fn rows_affected(&self) -> u64 {
        match self {
            StmtOutput::Affected(n) => *n,
            _ => 0,
        }
    }
}

/// Statement/query executor bound to a catalog and engine profile.
#[derive(Debug, Clone, Copy)]
pub struct Executor<'a> {
    catalog: &'a Catalog,
    profile: EngineProfile,
    stats: &'a Stats,
    limits: ExecLimits,
    prof: Option<&'a OpProfiler>,
    vectorized: bool,
    /// Overrides [`EngineProfile::batch_size`] when set (testing/tuning).
    batch_size: Option<usize>,
}

impl<'a> Executor<'a> {
    /// Creates an executor with no per-statement limits. Queries run on
    /// the vectorized batch pipeline by default; see
    /// [`Self::with_vectorized`].
    pub fn new(catalog: &'a Catalog, profile: EngineProfile, stats: &'a Stats) -> Executor<'a> {
        Executor {
            catalog,
            profile,
            stats,
            limits: ExecLimits::default(),
            prof: None,
            vectorized: true,
            batch_size: None,
        }
    }

    /// Applies per-statement limits to this executor.
    pub fn with_limits(mut self, limits: ExecLimits) -> Executor<'a> {
        self.limits = limits;
        self
    }

    /// Selects between the vectorized batch pipeline (`true`, the default)
    /// and the historical row-at-a-time pipeline. Both produce identical
    /// results; the row path is kept as the equivalence/benchmark baseline.
    pub fn with_vectorized(mut self, on: bool) -> Executor<'a> {
        self.vectorized = on;
        self
    }

    /// Overrides the profile's rows-per-batch for the vectorized pipeline
    /// (`None` restores the profile default). Results must be identical at
    /// every batch size — the equivalence suite runs sizes 1/3/default/4096.
    pub fn with_batch_size(mut self, rows: Option<usize>) -> Executor<'a> {
        self.batch_size = rows;
        self
    }

    /// Effective rows-per-batch: the override when set, else the profile's.
    fn batch_rows(&self) -> usize {
        self.batch_size
            .unwrap_or_else(|| self.profile.batch_size())
            .max(1)
    }

    /// Attaches a runtime operator profiler; every execution phase then
    /// records rows-out / input-calls / elapsed into it. The cost when no
    /// profiler is attached is one branch per phase.
    pub fn with_profiler(mut self, prof: &'a OpProfiler) -> Executor<'a> {
        self.prof = Some(prof);
        self
    }

    /// Starts a phase timer only when a profiler is attached.
    fn prof_start(&self) -> Option<Instant> {
        self.prof.map(|_| Instant::now())
    }

    fn check_deadline(&self) -> DbResult<()> {
        if let Some(d) = self.limits.deadline {
            if Instant::now() > d {
                return Err(DbError::Timeout(
                    "statement exceeded its execution deadline".into(),
                ));
            }
        }
        Ok(())
    }

    fn check_row_cap(&self, produced: usize) -> DbResult<()> {
        if let Some(max) = self.limits.max_rows {
            if produced as u64 > max {
                return Err(DbError::BudgetExceeded(format!(
                    "statement produced more than {max} rows"
                )));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Runs a query to completion.
    ///
    /// # Errors
    /// Returns binder/eval errors from any part of the query.
    pub fn run_query(&self, q: &SelectStmt) -> DbResult<QueryResult> {
        self.run_query_depth(q, 0)
    }

    /// Executes `q` with operator profiling attached and renders the plan
    /// tree annotated with per-operator actuals (`EXPLAIN ANALYZE`).
    fn analyze_query(&self, q: &SelectStmt) -> DbResult<Vec<String>> {
        let prof = OpProfiler::new();
        let sub = Executor {
            prof: Some(&prof),
            ..*self
        };
        let start = Instant::now();
        let result = sub.run_query(q)?;
        let total_us = us_since(start);
        let mut lines = Vec::new();
        for root in prof.take() {
            root.render(0, &mut lines);
        }
        lines.push(format!(
            "Execution: rows={} time_us={}",
            result.rows.len(),
            total_us
        ));
        Ok(lines)
    }

    fn run_query_depth(&self, q: &SelectStmt, depth: usize) -> DbResult<QueryResult> {
        if depth > MAX_DEPTH {
            return Err(DbError::Invalid(
                "query nesting too deep (circular view?)".into(),
            ));
        }
        self.check_deadline()?;
        let mut result = self.exec_set_expr(&q.body, depth)?;
        if !q.order_by.is_empty() {
            let t0 = self.prof_start();
            let rows_in = result.rows.len() as u64;
            self.apply_order_by(&mut result, &q.order_by)?;
            if let Some(p) = self.prof {
                p.wrap(
                    1,
                    format!("Sort ({} keys)", q.order_by.len()),
                    result.rows.len() as u64,
                    rows_in,
                    t0.map(us_since).unwrap_or(0),
                );
            }
        }
        if let Some(n) = q.limit {
            let rows_in = result.rows.len() as u64;
            result.rows.truncate(n as usize);
            if let Some(p) = self.prof {
                p.wrap(
                    1,
                    format!("Limit {n}"),
                    result.rows.len() as u64,
                    rows_in,
                    0,
                );
            }
        }
        self.check_row_cap(result.rows.len())?;
        Ok(result)
    }

    fn exec_set_expr(&self, body: &SetExpr, depth: usize) -> DbResult<QueryResult> {
        match body {
            SetExpr::Select(s) => self.exec_select(s, depth),
            SetExpr::Values(rows) => {
                let t0 = self.prof_start();
                let scope = Scope::new();
                let mut out = Vec::with_capacity(rows.len());
                let mut arity = None;
                for row_exprs in rows {
                    if *arity.get_or_insert(row_exprs.len()) != row_exprs.len() {
                        return Err(DbError::Invalid("VALUES rows differ in arity".into()));
                    }
                    let mut row = Vec::with_capacity(row_exprs.len());
                    for e in row_exprs {
                        row.push(bind_scalar(e, &scope)?.eval(&Vec::new(), &[])?);
                    }
                    out.push(row);
                }
                let n = arity.unwrap_or(0);
                if let Some(p) = self.prof {
                    p.leaf(
                        format!("Values ({} rows)", rows.len()),
                        out.len() as u64,
                        t0.map(us_since).unwrap_or(0),
                    );
                }
                Ok(QueryResult {
                    columns: (1..=n).map(|i| format!("column{i}")).collect(),
                    rows: out,
                })
            }
            SetExpr::SetOp { op, left, right } => {
                let t0 = self.prof_start();
                let l = self.exec_set_expr(left, depth)?;
                let r = self.exec_set_expr(right, depth)?;
                if !l.rows.is_empty() && !r.rows.is_empty() && l.rows[0].len() != r.rows[0].len() {
                    return Err(DbError::Invalid(
                        "UNION inputs differ in column count".into(),
                    ));
                }
                let rows_in = (l.rows.len() + r.rows.len()) as u64;
                let mut rows = l.rows;
                rows.extend(r.rows);
                let rows = match op {
                    SetOperator::UnionAll => rows,
                    SetOperator::Union => dedupe(rows),
                };
                if let Some(p) = self.prof {
                    let label = match op {
                        SetOperator::Union => "Union (deduplicating)".to_string(),
                        SetOperator::UnionAll => "Union All".to_string(),
                    };
                    p.wrap(
                        2,
                        label,
                        rows.len() as u64,
                        rows_in,
                        t0.map(us_since).unwrap_or(0),
                    );
                }
                Ok(QueryResult {
                    columns: l.columns,
                    rows,
                })
            }
        }
    }

    fn exec_select(&self, s: &Select, depth: usize) -> DbResult<QueryResult> {
        let has_aggregates = s
            .projections
            .iter()
            .any(|p| matches!(p, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
            || s.having
                .as_ref()
                .map(|h| h.contains_aggregate())
                .unwrap_or(false);
        let grouped = has_aggregates || !s.group_by.is_empty();

        let mut result = if let Some(out) = self.try_select_batched_scan(s, grouped)? {
            out
        } else {
            // FROM
            let mut rel = if s.from.is_empty() {
                let unit = Rel::unit();
                if let Some(p) = self.prof {
                    p.leaf("Result (no tables)".to_string(), unit.rows.len() as u64, 0);
                }
                unit
            } else {
                let mut rel: Option<Rel> = None;
                for tr in &s.from {
                    let right = self.build_table_ref(tr, depth)?;
                    rel = Some(match rel {
                        None => right,
                        Some(left) => {
                            let t0 = self.prof_start();
                            let rows_in = (left.rows.len() + right.rows.len()) as u64;
                            let joined = join_rels(
                                left,
                                right,
                                JoinType::Cross,
                                None,
                                self.profile.join_strategy(),
                                self.stats,
                            )?;
                            if let Some(p) = self.prof {
                                p.wrap(
                                    2,
                                    "NestedLoop (cross join)".to_string(),
                                    joined.rows.len() as u64,
                                    rows_in,
                                    t0.map(us_since).unwrap_or(0),
                                );
                            }
                            joined
                        }
                    });
                }
                rel.expect("non-empty from")
            };
            self.stats.add_rows_scanned(rel.rows.len() as u64);

            // charge the materialized FROM output against the memory budget;
            // the reservation refunds itself when the statement's intermediate
            // state dies at the end of this scope
            let _reservation =
                self.catalog
                    .memory_budget()
                    .reserve(crate::budget::approx_rows_bytes(
                        rel.rows.len(),
                        rel.arity(),
                    ))?;

            if self.vectorized {
                let arity = rel.arity();
                let nrows = rel.rows.len();
                // the columnar conversion is a second intermediate; charge
                // it like the row intermediate above
                let _batches_reservation = self
                    .catalog
                    .memory_budget()
                    .reserve(crate::budget::approx_rows_bytes(nrows, arity))?;
                let Rel { scope, rows, .. } = rel;
                let batches = ColumnBatch::chunk_rows(rows, arity, self.batch_rows());
                self.exec_pipeline_batched(s, &scope, batches, arity, grouped)?
            } else {
                // WHERE
                if let Some(pred) = &s.selection {
                    let t0 = self.prof_start();
                    let rows_in = rel.rows.len() as u64;
                    let bound = bind_scalar(pred, &rel.scope)?;
                    let mut kept = Vec::with_capacity(rel.rows.len());
                    for (i, row) in rel.rows.into_iter().enumerate() {
                        if i & 0xFFF == 0 {
                            self.check_deadline()?;
                        }
                        if bound.eval(&row, &[])?.is_truthy() {
                            kept.push(row);
                        }
                    }
                    rel.rows = kept;
                    if let Some(p) = self.prof {
                        p.wrap(
                            1,
                            "Filter".to_string(),
                            rel.rows.len() as u64,
                            rows_in,
                            t0.map(us_since).unwrap_or(0),
                        );
                    }
                }

                if grouped {
                    let t0 = self.prof_start();
                    let rows_in = rel.rows.len() as u64;
                    let out = self.exec_aggregate(s, &rel)?;
                    if let Some(p) = self.prof {
                        p.wrap(
                            1,
                            format!("HashAggregate (group by {} keys)", s.group_by.len()),
                            out.rows.len() as u64,
                            rows_in,
                            t0.map(us_since).unwrap_or(0),
                        );
                    }
                    out
                } else {
                    self.exec_project(s, &rel)?
                }
            }
        };

        if s.distinct {
            let t0 = self.prof_start();
            let rows_in = result.rows.len() as u64;
            result.rows = dedupe(result.rows);
            if let Some(p) = self.prof {
                p.wrap(
                    1,
                    "Distinct".to_string(),
                    result.rows.len() as u64,
                    rows_in,
                    t0.map(us_since).unwrap_or(0),
                );
            }
        }
        Ok(result)
    }

    /// Vectorized single-table fast path: when the FROM clause is one plain
    /// table (no joins, views or subqueries), scan it straight into column
    /// batches and run the batched pipeline without ever materializing a
    /// row vector. Returns `Ok(None)` when the shape doesn't apply and the
    /// caller must take the generic path.
    fn try_select_batched_scan(&self, s: &Select, grouped: bool) -> DbResult<Option<QueryResult>> {
        if !self.vectorized || s.from.len() != 1 || !s.from[0].joins.is_empty() {
            return Ok(None);
        }
        let TableFactor::Table { name, alias } = &s.from[0].base else {
            return Ok(None);
        };
        if self.catalog.view(name).is_some() {
            return Ok(None);
        }
        let visible = alias.as_deref().unwrap_or(name).to_owned();
        let label = match alias {
            Some(a) => format!("{name} AS {a}"),
            None => name.clone(),
        };
        let t0 = self.prof_start();
        let handle = self.catalog.table(name)?;
        let (columns, batches) = {
            let t = handle.read();
            (
                t.schema()
                    .columns()
                    .iter()
                    .map(|c| c.name.clone())
                    .collect::<Vec<_>>(),
                t.scan_batches(self.batch_rows()),
            )
        };
        let arity = columns.len();
        let nrows: usize = batches.iter().map(ColumnBatch::len).sum();
        // the row path counts scanned rows once at the scan and once as the
        // FROM output; keep the stats identical across execution modes
        self.stats.add_rows_scanned(nrows as u64);
        self.stats.add_rows_scanned(nrows as u64);
        if let Some(p) = self.prof {
            p.leaf_batched(
                format!("SeqScan {label}"),
                nrows as u64,
                t0.map(us_since).unwrap_or(0),
                batches.len() as u64,
            );
        }
        // charge the columnar FROM materialization exactly like the row
        // path charges its row materialization
        let _reservation = self
            .catalog
            .memory_budget()
            .reserve(crate::budget::approx_rows_bytes(nrows, arity))?;
        let mut scope = Scope::new();
        scope.push(ScopeRelation {
            qualifier: visible,
            columns,
        });
        self.exec_pipeline_batched(s, &scope, batches, arity, grouped)
            .map(Some)
    }

    /// Runs WHERE → aggregation/projection over column batches. Per-batch
    /// deadline checks replace the row path's every-4096-rows checks, and
    /// each operator records batch actuals into the profiler and the
    /// process-wide `sqloop.exec.*` metrics.
    fn exec_pipeline_batched(
        &self,
        s: &Select,
        scope: &Scope,
        mut batches: Vec<ColumnBatch>,
        arity: usize,
        grouped: bool,
    ) -> DbResult<QueryResult> {
        let input_batches = batches.len() as u64;
        let input_rows: u64 = batches.iter().map(|b| b.len() as u64).sum();

        // WHERE
        if let Some(pred) = &s.selection {
            let t0 = self.prof_start();
            let filter = CompiledExpr::new(&bind_scalar(pred, scope)?);
            let nb_in = batches.len() as u64;
            let mut kept = Vec::with_capacity(batches.len());
            let mut rows_out: u64 = 0;
            for b in &batches {
                self.check_deadline()?;
                let out = filter.eval_batch(b)?;
                let mask = out.truthy_mask(b);
                let fb = b.compact(&mask);
                rows_out += fb.len() as u64;
                if !fb.is_empty() {
                    kept.push(fb);
                }
            }
            batches = kept;
            if let Some(p) = self.prof {
                p.wrap_batched(
                    1,
                    "Filter".to_string(),
                    rows_out,
                    input_rows,
                    t0.map(us_since).unwrap_or(0),
                    nb_in,
                );
            }
        }

        let result = if grouped {
            let t0 = self.prof_start();
            let rows_in: u64 = batches.iter().map(|b| b.len() as u64).sum();
            let nb = batches.len() as u64;
            let out = self.exec_aggregate_batched(s, scope, &batches, arity)?;
            if let Some(p) = self.prof {
                p.wrap_batched(
                    1,
                    format!("HashAggregate (group by {} keys)", s.group_by.len()),
                    out.rows.len() as u64,
                    rows_in,
                    t0.map(us_since).unwrap_or(0),
                    nb,
                );
            }
            out
        } else {
            self.exec_project_batched(s, scope, &batches)?
        };

        note_exec_batches(input_batches, input_rows);
        Ok(result)
    }

    /// Vectorized projection: every projection expression is compiled once
    /// and evaluated per batch. A kernel error reruns that batch through
    /// the row-at-a-time evaluator (which is authoritative), so error
    /// ordering matches [`Self::exec_project`] exactly.
    fn exec_project_batched(
        &self,
        s: &Select,
        scope: &Scope,
        batches: &[ColumnBatch],
    ) -> DbResult<QueryResult> {
        let mut columns = Vec::new();
        let mut exprs: Vec<BoundExpr> = Vec::new();
        for (i, item) in s.projections.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for (off, name) in scope.flat_columns().into_iter().enumerate() {
                        columns.push(name);
                        exprs.push(BoundExpr::Column(off));
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let range = scope.relation_offsets(q)?;
                    let names = scope.flat_columns();
                    for off in range {
                        columns.push(names[off].clone());
                        exprs.push(BoundExpr::Column(off));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    columns.push(projection_name(expr, alias.as_deref(), i));
                    exprs.push(bind_scalar(expr, scope)?);
                }
            }
        }
        let compiled: Vec<CompiledExpr> = exprs.iter().map(CompiledExpr::new).collect();
        let total: usize = batches.iter().map(ColumnBatch::len).sum();
        let mut rows = Vec::with_capacity(total);
        for b in batches {
            self.check_deadline()?;
            let outs: DbResult<Vec<EvalOut>> = compiled.iter().map(|c| c.try_eval(b)).collect();
            match outs {
                Ok(outs) => {
                    for lane in 0..b.len() {
                        let mut out = Vec::with_capacity(compiled.len());
                        for o in &outs {
                            out.push(o.value_at(b, lane));
                        }
                        rows.push(out);
                        self.check_row_cap(rows.len())?;
                    }
                }
                Err(_) => {
                    for lane in 0..b.len() {
                        let row = b.row_at(lane);
                        let mut out = Vec::with_capacity(compiled.len());
                        for c in &compiled {
                            out.push(c.expr().eval(&row, &[])?);
                        }
                        rows.push(out);
                        self.check_row_cap(rows.len())?;
                    }
                }
            }
        }
        Ok(QueryResult { columns, rows })
    }

    /// Vectorized grouping: key and aggregate-argument expressions are
    /// compiled once and evaluated per batch; group discovery order,
    /// accumulator semantics and error ordering match
    /// [`Self::exec_aggregate`] exactly (a kernel error reruns the batch
    /// row-wise).
    fn exec_aggregate_batched(
        &self,
        s: &Select,
        scope: &Scope,
        batches: &[ColumnBatch],
        arity: usize,
    ) -> DbResult<QueryResult> {
        let mut key_exprs = Vec::with_capacity(s.group_by.len());
        for g in &s.group_by {
            key_exprs.push(bind_scalar(g, scope)?);
        }
        let mut aggs: Vec<AggSpec> = Vec::new();
        let mut columns = Vec::new();
        let mut proj_exprs = Vec::new();
        for (i, item) in s.projections.iter().enumerate() {
            match item {
                SelectItem::Expr { expr, alias } => {
                    columns.push(projection_name(expr, alias.as_deref(), i));
                    proj_exprs.push(bind_with_aggregates(expr, scope, &mut aggs)?);
                }
                _ => {
                    return Err(DbError::Invalid(
                        "wildcard projections are not allowed with GROUP BY/aggregates".into(),
                    ))
                }
            }
        }
        let having = match &s.having {
            Some(h) => Some(bind_with_aggregates(h, scope, &mut aggs)?),
            None => None,
        };

        let compiled_keys: Vec<CompiledExpr> = key_exprs.iter().map(CompiledExpr::new).collect();
        let compiled_args: Vec<Option<CompiledExpr>> = aggs
            .iter()
            .map(|a| a.arg.as_ref().map(CompiledExpr::new))
            .collect();

        let mut groups: Vec<(Vec<AggAcc>, Row)> = Vec::new();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        // Single-INT-key fast path: while every batch's key column has been a
        // fully-valid Int vector, group through an i64-keyed map instead of
        // allocating a `Vec<Value>` key per lane. The flag drops permanently
        // the moment any batch breaks the invariant, because `Value` hashes
        // numerically across types (Int(2) == Float(2.0)) and a typed lookup
        // would then miss groups created through the generic index. Typed
        // insertions mirror into the generic index so later generic batches
        // keep grouping consistently.
        let mut int_index: HashMap<i64, usize, std::hash::BuildHasherDefault<IntKeyHasher>> =
            HashMap::default();
        let mut typed_ok = compiled_keys.len() == 1;
        for b in batches {
            self.check_deadline()?;
            let key_outs: DbResult<Vec<EvalOut>> =
                compiled_keys.iter().map(|c| c.try_eval(b)).collect();
            let arg_outs: DbResult<Vec<Option<EvalOut>>> = compiled_args
                .iter()
                .map(|c| c.as_ref().map(|c| c.try_eval(b)).transpose())
                .collect();
            match (key_outs, arg_outs) {
                (Ok(key_outs), Ok(arg_outs)) => {
                    let int_keys = if typed_ok {
                        key_outs[0].as_int_lanes(b)
                    } else {
                        None
                    };
                    if let Some(ks) = int_keys {
                        let float_args: Vec<Option<&[f64]>> = arg_outs
                            .iter()
                            .map(|o| o.as_ref().and_then(|o| o.as_float_lanes(b)))
                            .collect();
                        for lane in 0..b.len() {
                            let gi = match int_index.entry(ks[lane]) {
                                std::collections::hash_map::Entry::Occupied(o) => *o.get(),
                                std::collections::hash_map::Entry::Vacant(v) => {
                                    let gi = groups.len();
                                    v.insert(gi);
                                    index.insert(vec![Value::Int(ks[lane])], gi);
                                    groups.push((
                                        aggs.iter().map(|a| AggAcc::new(a.func)).collect(),
                                        b.row_at(lane),
                                    ));
                                    gi
                                }
                            };
                            let (accs, _) = &mut groups[gi];
                            for ((acc, out), fs) in accs.iter_mut().zip(&arg_outs).zip(&float_args)
                            {
                                match fs {
                                    Some(fs) => acc.update_float(fs[lane]),
                                    None => acc.update(out.as_ref().map(|o| o.value_at(b, lane))),
                                }
                            }
                        }
                        continue;
                    }
                    typed_ok = false;
                    for lane in 0..b.len() {
                        let key: Vec<Value> =
                            key_outs.iter().map(|o| o.value_at(b, lane)).collect();
                        let gi = match index.entry(key) {
                            std::collections::hash_map::Entry::Occupied(o) => *o.get(),
                            std::collections::hash_map::Entry::Vacant(v) => {
                                let gi = groups.len();
                                v.insert(gi);
                                groups.push((
                                    aggs.iter().map(|a| AggAcc::new(a.func)).collect(),
                                    b.row_at(lane),
                                ));
                                gi
                            }
                        };
                        let (accs, _) = &mut groups[gi];
                        for (acc, out) in accs.iter_mut().zip(&arg_outs) {
                            acc.update(out.as_ref().map(|o| o.value_at(b, lane)));
                        }
                    }
                }
                _ => {
                    typed_ok = false;
                    for lane in 0..b.len() {
                        let row = b.row_at(lane);
                        let mut key = Vec::with_capacity(key_exprs.len());
                        for k in &key_exprs {
                            key.push(k.eval(&row, &[])?);
                        }
                        let gi = match index.entry(key) {
                            std::collections::hash_map::Entry::Occupied(o) => *o.get(),
                            std::collections::hash_map::Entry::Vacant(v) => {
                                let gi = groups.len();
                                v.insert(gi);
                                groups.push((
                                    aggs.iter().map(|a| AggAcc::new(a.func)).collect(),
                                    row.clone(),
                                ));
                                gi
                            }
                        };
                        let (accs, _) = &mut groups[gi];
                        for (acc, spec) in accs.iter_mut().zip(&aggs) {
                            let v = match &spec.arg {
                                Some(e) => Some(e.eval(&row, &[])?),
                                None => None,
                            };
                            acc.update(v);
                        }
                    }
                }
            }
        }
        // global aggregate over empty input still yields one group
        if groups.is_empty() && key_exprs.is_empty() {
            groups.push((
                aggs.iter().map(|a| AggAcc::new(a.func)).collect(),
                vec![Value::Null; arity],
            ));
        }

        let mut rows = Vec::with_capacity(groups.len());
        for (accs, rep_row) in groups {
            let agg_values: Vec<Value> = accs.into_iter().map(AggAcc::finish).collect();
            if let Some(h) = &having {
                if !h.eval(&rep_row, &agg_values)?.is_truthy() {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(proj_exprs.len());
            for e in &proj_exprs {
                out.push(e.eval(&rep_row, &agg_values)?);
            }
            rows.push(out);
            self.check_row_cap(rows.len())?;
        }
        Ok(QueryResult { columns, rows })
    }

    fn exec_project(&self, s: &Select, rel: &Rel) -> DbResult<QueryResult> {
        let mut columns = Vec::new();
        let mut exprs: Vec<BoundExpr> = Vec::new();
        for (i, item) in s.projections.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for (off, name) in rel.scope.flat_columns().into_iter().enumerate() {
                        columns.push(name);
                        exprs.push(BoundExpr::Column(off));
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let range = rel.scope.relation_offsets(q)?;
                    let names = rel.scope.flat_columns();
                    for off in range {
                        columns.push(names[off].clone());
                        exprs.push(BoundExpr::Column(off));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    columns.push(projection_name(expr, alias.as_deref(), i));
                    exprs.push(bind_scalar(expr, &rel.scope)?);
                }
            }
        }
        let mut rows = Vec::with_capacity(rel.rows.len());
        for (i, row) in rel.rows.iter().enumerate() {
            if i & 0xFFF == 0 {
                self.check_deadline()?;
            }
            let mut out = Vec::with_capacity(exprs.len());
            for e in &exprs {
                out.push(e.eval(row, &[])?);
            }
            rows.push(out);
            self.check_row_cap(rows.len())?;
        }
        Ok(QueryResult { columns, rows })
    }

    fn exec_aggregate(&self, s: &Select, rel: &Rel) -> DbResult<QueryResult> {
        // bind group keys
        let mut key_exprs = Vec::with_capacity(s.group_by.len());
        for g in &s.group_by {
            key_exprs.push(bind_scalar(g, &rel.scope)?);
        }
        // bind projections + having, extracting aggregates
        let mut aggs: Vec<AggSpec> = Vec::new();
        let mut columns = Vec::new();
        let mut proj_exprs = Vec::new();
        for (i, item) in s.projections.iter().enumerate() {
            match item {
                SelectItem::Expr { expr, alias } => {
                    columns.push(projection_name(expr, alias.as_deref(), i));
                    proj_exprs.push(bind_with_aggregates(expr, &rel.scope, &mut aggs)?);
                }
                _ => {
                    return Err(DbError::Invalid(
                        "wildcard projections are not allowed with GROUP BY/aggregates".into(),
                    ))
                }
            }
        }
        let having = match &s.having {
            Some(h) => Some(bind_with_aggregates(h, &rel.scope, &mut aggs)?),
            None => None,
        };

        // group rows; the key lives only in the index map (each group keeps a
        // representative row for projecting group-by columns), so the entry
        // API moves each key in without a clone
        let mut groups: Vec<(Vec<AggAcc>, Row)> = Vec::new();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        for (i, row) in rel.rows.iter().enumerate() {
            if i & 0xFFF == 0 {
                self.check_deadline()?;
            }
            let mut key = Vec::with_capacity(key_exprs.len());
            for k in &key_exprs {
                key.push(k.eval(row, &[])?);
            }
            let gi = match index.entry(key) {
                std::collections::hash_map::Entry::Occupied(o) => *o.get(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    let gi = groups.len();
                    v.insert(gi);
                    groups.push((
                        aggs.iter().map(|a| AggAcc::new(a.func)).collect(),
                        row.clone(),
                    ));
                    gi
                }
            };
            let (accs, _) = &mut groups[gi];
            for (acc, spec) in accs.iter_mut().zip(&aggs) {
                let v = match &spec.arg {
                    Some(e) => Some(e.eval(row, &[])?),
                    None => None,
                };
                acc.update(v);
            }
        }
        // global aggregate over empty input still yields one group
        if groups.is_empty() && key_exprs.is_empty() {
            groups.push((
                aggs.iter().map(|a| AggAcc::new(a.func)).collect(),
                vec![Value::Null; rel.arity()],
            ));
        }

        let mut rows = Vec::with_capacity(groups.len());
        for (accs, rep_row) in groups {
            let agg_values: Vec<Value> = accs.into_iter().map(AggAcc::finish).collect();
            if let Some(h) = &having {
                if !h.eval(&rep_row, &agg_values)?.is_truthy() {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(proj_exprs.len());
            for e in &proj_exprs {
                out.push(e.eval(&rep_row, &agg_values)?);
            }
            rows.push(out);
            self.check_row_cap(rows.len())?;
        }
        Ok(QueryResult { columns, rows })
    }

    fn apply_order_by(&self, result: &mut QueryResult, order_by: &[OrderByExpr]) -> DbResult<()> {
        let mut scope = Scope::new();
        scope.push(ScopeRelation {
            qualifier: "__out".into(),
            columns: result.columns.clone(),
        });
        let mut keys: Vec<(BoundExpr, bool)> = Vec::with_capacity(order_by.len());
        for o in order_by {
            // ordinal form: ORDER BY 1
            let bound = match &o.expr {
                Expr::Literal(Value::Int(n))
                    if *n >= 1 && (*n as usize) <= result.columns.len() =>
                {
                    BoundExpr::Column(*n as usize - 1)
                }
                e => {
                    // unqualified names resolve against output columns;
                    // qualified names are resolved by stripping the qualifier
                    match e {
                        Expr::Column { name, .. } => bind_scalar(&Expr::col(name.clone()), &scope)?,
                        other => bind_scalar(other, &scope)?,
                    }
                }
            };
            keys.push((bound, o.asc));
        }
        // precompute sort keys to keep comparator infallible
        let mut decorated: Vec<(Vec<Value>, Row)> = Vec::with_capacity(result.rows.len());
        for row in result.rows.drain(..) {
            let mut kv = Vec::with_capacity(keys.len());
            for (e, _) in &keys {
                kv.push(e.eval(&row, &[])?);
            }
            decorated.push((kv, row));
        }
        decorated.sort_by(|(a, _), (b, _)| {
            for (i, (_, asc)) in keys.iter().enumerate() {
                let ord = a[i].total_cmp(&b[i]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        result.rows = decorated.into_iter().map(|(_, r)| r).collect();
        Ok(())
    }

    fn build_table_ref(&self, tr: &TableRef, depth: usize) -> DbResult<Rel> {
        let mut rel = self.build_factor(&tr.base, depth)?;
        for j in &tr.joins {
            let right = self.build_factor(&j.factor, depth)?;
            let t0 = self.prof_start();
            let rows_in = (rel.rows.len() + right.rows.len()) as u64;
            rel = join_rels(
                rel,
                right,
                j.join_type,
                j.on.as_ref(),
                self.profile.join_strategy(),
                self.stats,
            )?;
            if let Some(p) = self.prof {
                let label = crate::explain::join_description(self.catalog, self.profile, j)
                    .unwrap_or_else(|_| "Join".to_string());
                p.wrap(
                    2,
                    label,
                    rel.rows.len() as u64,
                    rows_in,
                    t0.map(us_since).unwrap_or(0),
                );
            }
        }
        Ok(rel)
    }

    fn build_factor(&self, f: &TableFactor, depth: usize) -> DbResult<Rel> {
        match f {
            TableFactor::Table { name, alias } => {
                let visible = alias.as_deref().unwrap_or(name).to_owned();
                let label = match alias {
                    Some(a) => format!("{name} AS {a}"),
                    None => name.clone(),
                };
                if let Some(view) = self.catalog.view(name) {
                    let t0 = self.prof_start();
                    let result = self.run_query_depth(&view, depth + 1)?;
                    if let Some(p) = self.prof {
                        let rows = result.rows.len() as u64;
                        p.wrap(
                            1,
                            format!("View {label}"),
                            rows,
                            rows,
                            t0.map(us_since).unwrap_or(0),
                        );
                    }
                    return Ok(rel_from_result(result, visible));
                }
                let t0 = self.prof_start();
                let handle = self.catalog.table(name)?;
                let (columns, rows) = {
                    let t = handle.read();
                    (
                        t.schema()
                            .columns()
                            .iter()
                            .map(|c| c.name.clone())
                            .collect::<Vec<_>>(),
                        t.scan(),
                    )
                };
                self.stats.add_rows_scanned(rows.len() as u64);
                if let Some(p) = self.prof {
                    p.leaf(
                        format!("SeqScan {label}"),
                        rows.len() as u64,
                        t0.map(us_since).unwrap_or(0),
                    );
                }
                let mut scope = Scope::new();
                scope.push(ScopeRelation {
                    qualifier: visible,
                    columns,
                });
                Ok(Rel {
                    scope,
                    rows,
                    bases: vec![Some(handle)],
                })
            }
            TableFactor::Derived { subquery, alias } => {
                let t0 = self.prof_start();
                let result = self.run_query_depth(subquery, depth + 1)?;
                if let Some(p) = self.prof {
                    let rows = result.rows.len() as u64;
                    p.wrap(
                        1,
                        format!("Subquery AS {alias}"),
                        rows,
                        rows,
                        t0.map(us_since).unwrap_or(0),
                    );
                }
                Ok(rel_from_result(result, alias.clone()))
            }
        }
    }

    // ------------------------------------------------------------------
    // DML / DDL
    // ------------------------------------------------------------------

    /// Executes a non-transaction-control statement.
    ///
    /// Data changes append to `undo`; the caller owns statement- and
    /// transaction-level rollback.
    ///
    /// # Errors
    /// Returns parse-free execution errors; on error the caller must roll
    /// back `undo` past its pre-statement mark.
    pub fn run_statement(&self, stmt: &Statement, undo: &mut UndoLog) -> DbResult<StmtOutput> {
        match stmt {
            Statement::Select(q) => Ok(StmtOutput::Rows(self.run_query(q)?)),
            Statement::Explain { analyze, stmt } => match stmt.as_ref() {
                Statement::Select(q) => {
                    let lines = if *analyze {
                        self.analyze_query(q)?
                    } else {
                        crate::explain::explain_query(self.catalog, self.profile, q)?
                    };
                    Ok(StmtOutput::Rows(QueryResult {
                        columns: vec!["plan".into()],
                        rows: lines.into_iter().map(|l| vec![Value::Text(l)]).collect(),
                    }))
                }
                _ => Err(DbError::Unsupported(
                    "EXPLAIN supports SELECT statements only".into(),
                )),
            },
            Statement::Insert(ins) => self.exec_insert(ins, undo),
            Statement::Update(upd) => self.exec_update(upd, undo),
            Statement::Delete { table, selection } => self.exec_delete(table, selection, undo),
            Statement::Truncate { name } => self.exec_truncate(name, undo),
            Statement::CreateTable(ct) => self.exec_create_table(ct, undo),
            Statement::CreateIndex(ci) => self.exec_create_index(ci),
            Statement::CreateView(cv) => {
                self.catalog
                    .create_view(&cv.name, (*cv.query).clone(), cv.or_replace)?;
                Ok(StmtOutput::Done)
            }
            Statement::DropTable { name, if_exists } => {
                self.catalog.drop_table(name, *if_exists)?;
                Ok(StmtOutput::Done)
            }
            Statement::DropView { name, if_exists } => {
                self.catalog.drop_view(name, *if_exists)?;
                Ok(StmtOutput::Done)
            }
            Statement::DropIndex { name, if_exists } => {
                if let Some(table) = self.catalog.unregister_index(name, *if_exists)? {
                    if let Ok(handle) = self.catalog.table(&table) {
                        handle.write().drop_index(name);
                    }
                }
                Ok(StmtOutput::Done)
            }
            Statement::Begin | Statement::Commit | Statement::Rollback => Err(DbError::Invalid(
                "transaction control must be handled by the session".into(),
            )),
        }
    }

    fn exec_create_table(&self, ct: &CreateTable, undo: &mut UndoLog) -> DbResult<StmtOutput> {
        if let Some(q) = &ct.as_select {
            let result = self.run_query(q)?;
            let schema = infer_schema(&result)?;
            let created = self.catalog.create_table(
                &ct.name,
                Table::new(schema.clone()),
                ct.if_not_exists,
            )?;
            if created {
                let handle = self.catalog.table(&ct.name)?;
                let mut t = handle.write();
                for row in result.rows {
                    let row = schema.coerce_row(row)?;
                    let slot = t.insert(row)?;
                    undo.push(UndoOp::Insert {
                        table: ct.name.clone(),
                        slot,
                    });
                }
            }
            return Ok(StmtOutput::Done);
        }
        let mut pk = None;
        let mut columns = Vec::with_capacity(ct.columns.len());
        for (i, c) in ct.columns.iter().enumerate() {
            if c.primary_key {
                if pk.is_some() {
                    return Err(DbError::Invalid("multiple primary keys".into()));
                }
                pk = Some(i);
            }
            columns.push(Column::new(c.name.clone(), c.data_type));
        }
        let schema = Schema::new(columns, pk)?;
        self.catalog
            .create_table(&ct.name, Table::new(schema), ct.if_not_exists)?;
        Ok(StmtOutput::Done)
    }

    fn exec_create_index(&self, ci: &CreateIndex) -> DbResult<StmtOutput> {
        if self.catalog.has_index(&ci.name) {
            if ci.if_not_exists {
                return Ok(StmtOutput::Done);
            }
            return Err(DbError::AlreadyExists(format!("index {}", ci.name)));
        }
        let handle = self.catalog.table(&ci.table)?;
        {
            let mut t = handle.write();
            let col = t
                .schema()
                .column_index(&ci.column)
                .ok_or_else(|| DbError::NotFound(format!("column {}", ci.column)))?;
            t.create_index(&ci.name, col, ci.unique)?;
        }
        self.catalog.register_index(&ci.name, &ci.table)?;
        Ok(StmtOutput::Done)
    }

    fn exec_insert(&self, ins: &Insert, undo: &mut UndoLog) -> DbResult<StmtOutput> {
        let handle = self.catalog.table(&ins.table)?;
        let schema = handle.read().schema().clone();
        let source_rows: Vec<Row> = match &ins.source {
            InsertSource::Values(rows) => {
                let scope = Scope::new();
                let mut out = Vec::with_capacity(rows.len());
                for row_exprs in rows {
                    let mut row = Vec::with_capacity(row_exprs.len());
                    for e in row_exprs {
                        row.push(bind_scalar(e, &scope)?.eval(&Vec::new(), &[])?);
                    }
                    out.push(row);
                }
                out
            }
            InsertSource::Select(q) => self.run_query(q)?.rows,
        };
        // map through the explicit column list if present
        let mapping: Option<Vec<usize>> = match &ins.columns {
            Some(cols) => {
                let mut m = Vec::with_capacity(cols.len());
                for c in cols {
                    m.push(
                        schema
                            .column_index(c)
                            .ok_or_else(|| DbError::NotFound(format!("column {c}")))?,
                    );
                }
                Some(m)
            }
            None => None,
        };
        let mut count = 0u64;
        let mut t = handle.write();
        for row in source_rows {
            if count & 0xFFF == 0 {
                self.check_deadline()?;
            }
            let full_row = match &mapping {
                Some(m) => {
                    if row.len() != m.len() {
                        return Err(DbError::Invalid(format!(
                            "INSERT provides {} values for {} columns",
                            row.len(),
                            m.len()
                        )));
                    }
                    let mut full = vec![Value::Null; schema.arity()];
                    for (v, &target) in row.into_iter().zip(m) {
                        full[target] = v;
                    }
                    full
                }
                None => row,
            };
            let coerced = schema.coerce_row(full_row)?;
            let slot = t.insert(coerced)?;
            undo.push(UndoOp::Insert {
                table: ins.table.clone(),
                slot,
            });
            count += 1;
        }
        Ok(StmtOutput::Affected(count))
    }

    fn exec_update(&self, upd: &Update, undo: &mut UndoLog) -> DbResult<StmtOutput> {
        let handle = self.catalog.table(&upd.table)?;
        let schema = handle.read().schema().clone();
        let visible = upd.alias.clone().unwrap_or_else(|| upd.table.clone());

        // target snapshot with slots
        let target: Vec<(usize, Row)> = handle
            .read()
            .iter()
            .map(|(slot, row)| (slot, row.clone()))
            .collect();

        let mut scope = Scope::new();
        scope.push(ScopeRelation {
            qualifier: visible,
            columns: schema.columns().iter().map(|c| c.name.clone()).collect(),
        });
        let target_arity = schema.arity();

        // extra relations (PostgreSQL FROM list / MySQL JOIN)
        let from_rel: Option<Rel> = if upd.from.is_empty() {
            None
        } else {
            let mut rel: Option<Rel> = None;
            for tr in &upd.from {
                let right = self.build_table_ref(tr, 0)?;
                rel = Some(match rel {
                    None => right,
                    Some(left) => join_rels(
                        left,
                        right,
                        JoinType::Cross,
                        None,
                        self.profile.join_strategy(),
                        self.stats,
                    )?,
                });
            }
            rel
        };
        if let Some(fr) = &from_rel {
            for r in fr.scope.relations() {
                scope.push(r.clone());
            }
        }

        // combined predicate = join_on AND selection
        let mut conjuncts: Vec<BoundExpr> = Vec::new();
        for pred in [&upd.join_on, &upd.selection].into_iter().flatten() {
            conjuncts.extend(split_conjuncts(bind_scalar(pred, &scope)?));
        }

        // bind assignments
        let mut assignments: Vec<(usize, BoundExpr)> = Vec::with_capacity(upd.assignments.len());
        for (col, e) in &upd.assignments {
            let idx = schema
                .column_index(col)
                .ok_or_else(|| DbError::NotFound(format!("column {col}")))?;
            assignments.push((idx, bind_scalar(e, &scope)?));
        }

        // collect (slot, combined row) matches — first match wins per slot
        let mut matches: Vec<(usize, Row)> = Vec::new();
        match from_rel {
            None => {
                for (slot, row) in target {
                    if eval_conjuncts(&conjuncts, &row)? {
                        matches.push((slot, row));
                    }
                }
            }
            Some(fr) => {
                // find an equi conjunct (target col, from col) to hash on
                let total = target_arity + fr.arity();
                let mut equi: Option<(usize, usize)> = None;
                let mut residual: Vec<&BoundExpr> = Vec::new();
                for c in &conjuncts {
                    if equi.is_none() {
                        if let BoundExpr::Binary {
                            left,
                            op: BinaryOp::Eq,
                            right,
                        } = c
                        {
                            if let (BoundExpr::Column(a), BoundExpr::Column(b)) =
                                (left.as_ref(), right.as_ref())
                            {
                                let (a, b) = (*a, *b);
                                if a < target_arity && b >= target_arity && b < total {
                                    equi = Some((a, b - target_arity));
                                    continue;
                                }
                                if b < target_arity && a >= target_arity && a < total {
                                    equi = Some((b, a - target_arity));
                                    continue;
                                }
                            }
                        }
                    }
                    residual.push(c);
                }
                match equi {
                    Some((tcol, fcol)) => {
                        let mut hash: HashMap<&Value, Vec<&Row>> = HashMap::new();
                        for frow in &fr.rows {
                            let k = &frow[fcol];
                            if !k.is_null() {
                                hash.entry(k).or_default().push(frow);
                            }
                        }
                        for (slot, trow) in target {
                            let k = &trow[tcol];
                            if k.is_null() {
                                continue;
                            }
                            if let Some(cands) = hash.get(k) {
                                for frow in cands {
                                    let mut combined = trow.clone();
                                    combined.extend(frow.iter().cloned());
                                    let mut ok = true;
                                    for c in &residual {
                                        if !c.eval(&combined, &[])?.is_truthy() {
                                            ok = false;
                                            break;
                                        }
                                    }
                                    if ok {
                                        matches.push((slot, combined));
                                        break; // first match wins
                                    }
                                }
                            }
                        }
                    }
                    None => {
                        for (slot, trow) in target {
                            self.check_deadline()?;
                            for frow in &fr.rows {
                                self.stats.add_rows_joined(1);
                                let mut combined = trow.clone();
                                combined.extend(frow.iter().cloned());
                                if eval_conjuncts(&conjuncts, &combined)? {
                                    matches.push((slot, combined));
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }

        // apply
        let mut count = 0u64;
        let mut t = handle.write();
        for (i, (slot, combined)) in matches.into_iter().enumerate() {
            if i & 0xFFF == 0 {
                self.check_deadline()?;
            }
            let old = t
                .row(slot)
                .cloned()
                .ok_or_else(|| DbError::Invalid("row vanished during update".into()))?;
            let mut new_row = old.clone();
            for (idx, e) in &assignments {
                new_row[*idx] = schema.columns()[*idx]
                    .data_type
                    .coerce(e.eval(&combined, &[])?)?;
            }
            if new_row != old {
                t.update_slot(slot, new_row)?;
                undo.push(UndoOp::Update {
                    table: upd.table.clone(),
                    slot,
                    old,
                });
                count += 1;
            }
        }
        Ok(StmtOutput::Affected(count))
    }

    fn exec_delete(
        &self,
        table: &str,
        selection: &Option<Expr>,
        undo: &mut UndoLog,
    ) -> DbResult<StmtOutput> {
        let handle = self.catalog.table(table)?;
        let schema = handle.read().schema().clone();
        let mut scope = Scope::new();
        scope.push(ScopeRelation {
            qualifier: table.to_owned(),
            columns: schema.columns().iter().map(|c| c.name.clone()).collect(),
        });
        let pred = match selection {
            Some(p) => Some(bind_scalar(p, &scope)?),
            None => None,
        };
        let victims: Vec<usize> = {
            let t = handle.read();
            let mut v = Vec::new();
            for (i, (slot, row)) in t.iter().enumerate() {
                if i & 0xFFF == 0 {
                    self.check_deadline()?;
                }
                let keep = match &pred {
                    Some(p) => p.eval(row, &[])?.is_truthy(),
                    None => true,
                };
                if keep {
                    v.push(slot);
                }
            }
            v
        };
        let mut t = handle.write();
        let mut count = 0u64;
        for slot in victims {
            let old = t.delete_slot(slot)?;
            undo.push(UndoOp::Delete {
                table: table.to_owned(),
                slot,
                old,
            });
            count += 1;
        }
        Ok(StmtOutput::Affected(count))
    }

    fn exec_truncate(&self, name: &str, undo: &mut UndoLog) -> DbResult<StmtOutput> {
        // implemented as delete-all so it stays undoable
        self.exec_delete(name, &None, undo)?;
        Ok(StmtOutput::Done)
    }
}

/// Per-group aggregate accumulator.
#[derive(Debug)]
/// Multiply-xorshift hasher for the single-INT-key aggregate index. The
/// default SipHash dominates the per-lane grouping cost at this key width;
/// group keys are not attacker-controlled hash-flood targets, so a two-op
/// mix is enough.
#[derive(Default)]
struct IntKeyHasher(u64);

impl std::hash::Hasher for IntKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_i64(&mut self, i: i64) {
        let mut h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        self.0 = h;
    }
}

enum AggAcc {
    /// Running SUM (NULL until the first non-NULL input).
    Sum(Option<Value>),
    /// Running MIN.
    Min(Option<Value>),
    /// Running MAX.
    Max(Option<Value>),
    /// COUNT(*) / COUNT(expr).
    Count(i64),
    /// AVG as (sum, count).
    Avg { sum: f64, n: i64 },
}

impl AggAcc {
    fn new(func: AggregateFunction) -> AggAcc {
        match func {
            AggregateFunction::Sum => AggAcc::Sum(None),
            AggregateFunction::Min => AggAcc::Min(None),
            AggregateFunction::Max => AggAcc::Max(None),
            AggregateFunction::Count => AggAcc::Count(0),
            AggregateFunction::Avg => AggAcc::Avg { sum: 0.0, n: 0 },
        }
    }

    /// Feeds one input; `None` means `COUNT(*)` (no argument).
    fn update(&mut self, v: Option<Value>) {
        match self {
            AggAcc::Count(n) => {
                let counts = match &v {
                    None => true,            // COUNT(*)
                    Some(v) => !v.is_null(), // COUNT(expr)
                };
                if counts {
                    *n += 1;
                }
            }
            AggAcc::Sum(acc) => {
                if let Some(v) = v {
                    if !v.is_null() {
                        *acc = Some(match acc.take() {
                            None => v,
                            // overflow saturates to float rather than erroring
                            Some(cur) => cur.add(&v).unwrap_or_else(|_| {
                                Value::Float(
                                    cur.as_f64().unwrap_or(0.0) + v.as_f64().unwrap_or(0.0),
                                )
                            }),
                        });
                    }
                }
            }
            AggAcc::Min(acc) => {
                if let Some(v) = v {
                    if !v.is_null() {
                        let replace = match acc {
                            None => true,
                            Some(cur) => v.total_cmp(cur) == std::cmp::Ordering::Less,
                        };
                        if replace {
                            *acc = Some(v);
                        }
                    }
                }
            }
            AggAcc::Max(acc) => {
                if let Some(v) = v {
                    if !v.is_null() {
                        let replace = match acc {
                            None => true,
                            Some(cur) => v.total_cmp(cur) == std::cmp::Ordering::Greater,
                        };
                        if replace {
                            *acc = Some(v);
                        }
                    }
                }
            }
            AggAcc::Avg { sum, n } => {
                if let Some(v) = v {
                    if let Some(f) = v.as_f64() {
                        *sum += f;
                        *n += 1;
                    }
                }
            }
        }
    }

    /// Exactly `update(Some(Value::Float(f)))`, skipping the `Value`
    /// round-trip in the accumulator states a float input can produce
    /// (`Float + Float` adds to `Float`; `total_cmp` on two `Float`s is
    /// `f64::total_cmp`). States only reachable through mixed-type inputs
    /// delegate to the generic path.
    fn update_float(&mut self, f: f64) {
        match self {
            AggAcc::Count(n) => *n += 1, // a typed float lane is never NULL
            AggAcc::Avg { sum, n } => {
                *sum += f;
                *n += 1;
            }
            AggAcc::Sum(Some(Value::Float(cur))) => *cur += f,
            AggAcc::Min(Some(Value::Float(cur))) => {
                if f.total_cmp(cur) == std::cmp::Ordering::Less {
                    *cur = f;
                }
            }
            AggAcc::Max(Some(Value::Float(cur))) => {
                if f.total_cmp(cur) == std::cmp::Ordering::Greater {
                    *cur = f;
                }
            }
            other => other.update(Some(Value::Float(f))),
        }
    }

    fn finish(self) -> Value {
        match self {
            AggAcc::Sum(v) | AggAcc::Min(v) | AggAcc::Max(v) => v.unwrap_or(Value::Null),
            AggAcc::Count(n) => Value::Int(n),
            AggAcc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

fn eval_conjuncts(conjuncts: &[BoundExpr], row: &Row) -> DbResult<bool> {
    for c in conjuncts {
        if !c.eval(row, &[])?.is_truthy() {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Records batch-level execution actuals into the process-wide metrics
/// registry (`sqloop.exec.*`), picked up by the Prometheus scrape endpoint
/// and the CLI `\stats` view.
fn note_exec_batches(batches: u64, rows: u64) {
    if batches == 0 {
        return;
    }
    let reg = obs::global();
    reg.counter("sqloop.exec.batches").add(batches);
    reg.counter("sqloop.exec.batch_rows").add(rows);
    reg.gauge("sqloop.exec.rows_per_batch")
        .set((rows / batches) as i64);
}

fn dedupe(rows: Vec<Row>) -> Vec<Row> {
    let mut seen: HashSet<Row> = HashSet::with_capacity(rows.len());
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        if seen.insert(r.clone()) {
            out.push(r);
        }
    }
    out
}

fn rel_from_result(result: QueryResult, alias: String) -> Rel {
    let mut scope = Scope::new();
    scope.push(ScopeRelation {
        qualifier: alias,
        columns: result.columns,
    });
    Rel {
        scope,
        rows: result.rows,
        bases: vec![None],
    }
}

fn projection_name(expr: &Expr, alias: Option<&str>, i: usize) -> String {
    if let Some(a) = alias {
        return a.to_owned();
    }
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.clone(),
        _ => format!("column{}", i + 1),
    }
}

/// Infers a schema from a result set (for `CREATE TABLE AS SELECT`):
/// each column's type comes from its first non-NULL value, defaulting to
/// `TEXT`; no primary key is declared.
fn infer_schema(result: &QueryResult) -> DbResult<Schema> {
    let n = result.columns.len();
    let mut types = vec![None::<DataType>; n];
    for row in &result.rows {
        for (i, v) in row.iter().enumerate() {
            if types[i].is_none() {
                types[i] = match v {
                    Value::Null => None,
                    Value::Int(_) => Some(DataType::Int),
                    Value::Float(_) => Some(DataType::Float),
                    Value::Text(_) => Some(DataType::Text),
                    Value::Bool(_) => Some(DataType::Bool),
                };
            }
        }
        if types.iter().all(|t| t.is_some()) {
            break;
        }
    }
    let columns = result
        .columns
        .iter()
        .zip(&types)
        .map(|(name, t)| Column::new(name.clone(), t.unwrap_or(DataType::Text)))
        .collect();
    Schema::new(columns, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_statement};

    struct Ctx {
        catalog: Catalog,
        stats: Stats,
        profile: EngineProfile,
    }

    impl Ctx {
        fn new(profile: EngineProfile) -> Ctx {
            Ctx {
                catalog: Catalog::new(),
                stats: Stats::new(),
                profile,
            }
        }

        fn exec(&self, sql: &str) -> DbResult<StmtOutput> {
            let stmt = parse_statement(sql)?;
            let mut undo = UndoLog::new();
            Executor::new(&self.catalog, self.profile, &self.stats).run_statement(&stmt, &mut undo)
        }

        fn query(&self, sql: &str) -> QueryResult {
            let q = parse_query(sql).unwrap();
            Executor::new(&self.catalog, self.profile, &self.stats)
                .run_query(&q)
                .unwrap()
        }
    }

    fn seeded(profile: EngineProfile) -> Ctx {
        let ctx = Ctx::new(profile);
        ctx.exec("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT, tag TEXT)")
            .unwrap();
        ctx.exec("INSERT INTO t VALUES (1, 1.5, 'a'), (2, 2.5, 'b'), (3, 3.5, 'a')")
            .unwrap();
        ctx
    }

    #[test]
    fn basic_select_where_order_limit() {
        let ctx = seeded(EngineProfile::Postgres);
        let r = ctx.query("SELECT id, v FROM t WHERE v > 1.5 ORDER BY v DESC LIMIT 1");
        assert_eq!(r.rows, vec![vec![Value::Int(3), Value::Float(3.5)]]);
        assert_eq!(r.columns, vec!["id", "v"]);
    }

    #[test]
    fn wildcard_and_qualified_wildcard() {
        let ctx = seeded(EngineProfile::Postgres);
        let r = ctx.query("SELECT * FROM t ORDER BY id");
        assert_eq!(r.columns, vec!["id", "v", "tag"]);
        assert_eq!(r.rows.len(), 3);
        let r = ctx.query("SELECT x.* FROM t AS x ORDER BY 1");
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn group_by_aggregates() {
        let ctx = seeded(EngineProfile::Postgres);
        let r = ctx.query(
            "SELECT tag, SUM(v), COUNT(*), AVG(v), MIN(v), MAX(v) FROM t GROUP BY tag ORDER BY tag",
        );
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Text("a".into()));
        assert_eq!(r.rows[0][1], Value::Float(5.0));
        assert_eq!(r.rows[0][2], Value::Int(2));
        assert_eq!(r.rows[0][3], Value::Float(2.5));
        assert_eq!(r.rows[0][4], Value::Float(1.5));
        assert_eq!(r.rows[0][5], Value::Float(3.5));
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let ctx = seeded(EngineProfile::Postgres);
        let r = ctx.query("SELECT SUM(v), COUNT(*) FROM t WHERE id > 100");
        assert_eq!(r.rows, vec![vec![Value::Null, Value::Int(0)]]);
        // with GROUP BY: zero groups
        let r = ctx.query("SELECT tag, SUM(v) FROM t WHERE id > 100 GROUP BY tag");
        assert!(r.rows.is_empty());
    }

    #[test]
    fn having_filters_groups() {
        let ctx = seeded(EngineProfile::Postgres);
        let r = ctx.query("SELECT tag, COUNT(*) FROM t GROUP BY tag HAVING COUNT(*) > 1");
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Text("a".into()));
    }

    #[test]
    fn joins_same_result_across_profiles() {
        let mut results = Vec::new();
        for p in EngineProfile::ALL {
            let ctx = seeded(p);
            ctx.exec("CREATE TABLE e (src INT, dst INT)").unwrap();
            ctx.exec("INSERT INTO e VALUES (1,2),(2,3),(3,1),(1,3)")
                .unwrap();
            let mut r =
                ctx.query("SELECT t.id, e.dst FROM t JOIN e ON t.id = e.src ORDER BY t.id, e.dst");
            r.rows.sort();
            results.push(r.rows);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        assert_eq!(results[0].len(), 4);
    }

    #[test]
    fn index_nested_loop_used_on_mysql_profile() {
        let ctx = seeded(EngineProfile::MySql);
        ctx.exec("CREATE TABLE e (src INT, dst INT)").unwrap();
        ctx.exec("INSERT INTO e VALUES (1,2),(2,3)").unwrap();
        ctx.exec("CREATE INDEX idx_e_src ON e (src)").unwrap();
        let before = ctx.stats.snapshot();
        let r = ctx.query("SELECT t.id FROM t JOIN e ON t.id = e.src");
        assert_eq!(r.rows.len(), 2);
        let after = ctx.stats.snapshot();
        assert!(
            after.index_lookups > before.index_lookups,
            "index NL should probe the index"
        );
    }

    #[test]
    fn union_and_union_all() {
        let ctx = seeded(EngineProfile::Postgres);
        let r = ctx.query("SELECT tag FROM t UNION SELECT tag FROM t");
        assert_eq!(r.rows.len(), 2);
        let r = ctx.query("SELECT tag FROM t UNION ALL SELECT tag FROM t");
        assert_eq!(r.rows.len(), 6);
    }

    #[test]
    fn distinct() {
        let ctx = seeded(EngineProfile::Postgres);
        let r = ctx.query("SELECT DISTINCT tag FROM t");
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let ctx = seeded(EngineProfile::Postgres);
        ctx.exec("INSERT INTO t (id) VALUES (9)").unwrap();
        let r = ctx.query("SELECT v, tag FROM t WHERE id = 9");
        assert_eq!(r.rows, vec![vec![Value::Null, Value::Null]]);
    }

    #[test]
    fn insert_select() {
        let ctx = seeded(EngineProfile::Postgres);
        ctx.exec("CREATE TABLE t2 (id INT PRIMARY KEY, v FLOAT, tag TEXT)")
            .unwrap();
        let out = ctx
            .exec("INSERT INTO t2 SELECT id, v * 2, tag FROM t")
            .unwrap();
        assert_eq!(out.rows_affected(), 3);
        let r = ctx.query("SELECT SUM(v) FROM t2");
        assert_eq!(r.rows[0][0], Value::Float(15.0));
    }

    #[test]
    fn update_simple_and_rows_affected() {
        let ctx = seeded(EngineProfile::Postgres);
        let out = ctx.exec("UPDATE t SET v = v + 1 WHERE tag = 'a'").unwrap();
        assert_eq!(out.rows_affected(), 2);
        let r = ctx.query("SELECT SUM(v) FROM t");
        assert_eq!(r.rows[0][0], Value::Float(9.5));
        // no-op updates are not counted (paper's UNTIL n UPDATES relies on this)
        let out = ctx.exec("UPDATE t SET v = v WHERE tag = 'a'").unwrap();
        assert_eq!(out.rows_affected(), 0);
    }

    #[test]
    fn update_from_join_postgres_form() {
        let ctx = seeded(EngineProfile::Postgres);
        ctx.exec("CREATE TABLE m (id INT PRIMARY KEY, nv FLOAT)")
            .unwrap();
        ctx.exec("INSERT INTO m VALUES (1, 100.0), (3, 300.0)")
            .unwrap();
        let out = ctx
            .exec("UPDATE t SET v = m.nv FROM m WHERE t.id = m.id")
            .unwrap();
        assert_eq!(out.rows_affected(), 2);
        let r = ctx.query("SELECT id, v FROM t ORDER BY id");
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(1), Value::Float(100.0)],
                vec![Value::Int(2), Value::Float(2.5)],
                vec![Value::Int(3), Value::Float(300.0)]
            ]
        );
    }

    #[test]
    fn update_join_mysql_form() {
        let ctx = seeded(EngineProfile::MySql);
        ctx.exec("CREATE TABLE m (id INT PRIMARY KEY, nv FLOAT)")
            .unwrap();
        ctx.exec("INSERT INTO m VALUES (2, 42.0)").unwrap();
        let out = ctx
            .exec("UPDATE t JOIN m ON t.id = m.id SET v = m.nv")
            .unwrap();
        assert_eq!(out.rows_affected(), 1);
        let r = ctx.query("SELECT v FROM t WHERE id = 2");
        assert_eq!(r.rows[0][0], Value::Float(42.0));
    }

    #[test]
    fn delete_and_truncate() {
        let ctx = seeded(EngineProfile::Postgres);
        let out = ctx.exec("DELETE FROM t WHERE tag = 'a'").unwrap();
        assert_eq!(out.rows_affected(), 2);
        assert_eq!(
            ctx.query("SELECT COUNT(*) FROM t").rows[0][0],
            Value::Int(1)
        );
        ctx.exec("TRUNCATE TABLE t").unwrap();
        assert_eq!(
            ctx.query("SELECT COUNT(*) FROM t").rows[0][0],
            Value::Int(0)
        );
    }

    #[test]
    fn create_table_as_select() {
        let ctx = seeded(EngineProfile::Postgres);
        ctx.exec("CREATE TABLE copy AS SELECT id, v * 10 AS big FROM t")
            .unwrap();
        let r = ctx.query("SELECT big FROM copy ORDER BY big");
        assert_eq!(r.rows[0][0], Value::Float(15.0));
    }

    #[test]
    fn views_expand() {
        let ctx = seeded(EngineProfile::Postgres);
        ctx.exec("CREATE VIEW va AS SELECT id, v FROM t WHERE tag = 'a'")
            .unwrap();
        let r = ctx.query("SELECT COUNT(*) FROM va");
        assert_eq!(r.rows[0][0], Value::Int(2));
        // view joins like a table
        let r = ctx.query("SELECT t.id FROM t JOIN va ON t.id = va.id");
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn circular_views_detected() {
        let ctx = seeded(EngineProfile::Postgres);
        // a view can reference a not-yet-existing view; cycle caught at runtime
        ctx.exec("CREATE VIEW v1 AS SELECT * FROM v2").ok();
        // v2 doesn't exist yet: creating is fine, querying fails cleanly
        let q = parse_query("SELECT * FROM v1").unwrap();
        let e = Executor::new(&ctx.catalog, ctx.profile, &ctx.stats).run_query(&q);
        assert!(e.is_err());
    }

    #[test]
    fn values_query() {
        let ctx = Ctx::new(EngineProfile::Postgres);
        let r = ctx.query("VALUES (0, 1), (1, 1)");
        assert_eq!(r.columns, vec!["column1", "column2"]);
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn undo_rolls_back_dml() {
        let ctx = seeded(EngineProfile::Postgres);
        let stmt = parse_statement("UPDATE t SET v = 0.0").unwrap();
        let mut undo = UndoLog::new();
        Executor::new(&ctx.catalog, ctx.profile, &ctx.stats)
            .run_statement(&stmt, &mut undo)
            .unwrap();
        assert_eq!(
            ctx.query("SELECT SUM(v) FROM t").rows[0][0],
            Value::Float(0.0)
        );
        crate::txn::apply_undo(&ctx.catalog, undo.take_all()).unwrap();
        assert_eq!(
            ctx.query("SELECT SUM(v) FROM t").rows[0][0],
            Value::Float(7.5)
        );
    }

    #[test]
    fn cross_join_via_comma() {
        let ctx = seeded(EngineProfile::Postgres);
        let r = ctx.query("SELECT a.id, b.id FROM t AS a, t AS b");
        assert_eq!(r.rows.len(), 9);
    }

    #[test]
    fn explain_analyze_reports_actual_rows_across_profiles() {
        for p in EngineProfile::ALL {
            let ctx = seeded(p);
            ctx.exec("CREATE TABLE e (src INT, dst INT)").unwrap();
            ctx.exec("INSERT INTO e VALUES (1,2),(2,3),(3,1),(1,3)")
                .unwrap();
            let out = ctx
                .exec(
                    "EXPLAIN ANALYZE SELECT t.id, e.dst FROM t JOIN e ON t.id = e.src \
                     WHERE e.dst > 1 ORDER BY t.id LIMIT 3",
                )
                .unwrap();
            let lines: Vec<String> = match out {
                StmtOutput::Rows(r) => r
                    .rows
                    .iter()
                    .map(|row| match &row[0] {
                        Value::Text(t) => t.clone(),
                        other => other.to_string(),
                    })
                    .collect(),
                _ => panic!("expected rows"),
            };
            // root operator is the LIMIT; its actual cardinality is the
            // query's result cardinality
            assert!(
                lines[0].starts_with("Limit 3 (actual rows=3"),
                "profile {p:?}: {lines:?}"
            );
            assert!(
                lines.iter().any(|l| l.contains("SeqScan t")),
                "profile {p:?}: {lines:?}"
            );
            assert!(
                lines
                    .iter()
                    .any(|l| l.contains("Join") && l.contains("actual rows=4")),
                "profile {p:?}: {lines:?}"
            );
            assert!(
                lines.last().unwrap().starts_with("Execution: rows=3 "),
                "profile {p:?}: {lines:?}"
            );
        }
    }

    #[test]
    fn explain_analyze_rejects_dml() {
        let ctx = seeded(EngineProfile::Postgres);
        let err = ctx.exec("EXPLAIN ANALYZE INSERT INTO t VALUES (9, 0.0, 'z')");
        assert!(matches!(err, Err(DbError::Unsupported(_))), "{err:?}");
    }

    #[test]
    fn profiler_tree_mirrors_execution_phases() {
        let ctx = seeded(EngineProfile::Postgres);
        let q = parse_query("SELECT tag, COUNT(*) FROM t WHERE v > 1.0 GROUP BY tag").unwrap();
        let prof = OpProfiler::new();
        Executor::new(&ctx.catalog, ctx.profile, &ctx.stats)
            .with_profiler(&prof)
            .run_query(&q)
            .unwrap();
        let roots = prof.take();
        assert_eq!(roots.len(), 1);
        let agg = &roots[0];
        assert_eq!(agg.label, "HashAggregate (group by 1 keys)");
        assert_eq!(agg.rows_out, 2);
        assert_eq!(agg.calls, 3);
        let filter = &agg.children[0];
        assert_eq!(filter.label, "Filter");
        assert_eq!(filter.rows_out, 3);
        let scan = &filter.children[0];
        assert_eq!(scan.label, "SeqScan t");
        assert_eq!(scan.rows_out, 3);
        assert_eq!(scan.calls, 3);
    }

    #[test]
    fn row_cap_stops_runaway_output() {
        let ctx = seeded(EngineProfile::Postgres);
        let q = parse_query("SELECT a.id, b.id FROM t AS a, t AS b").unwrap();
        let err = Executor::new(&ctx.catalog, ctx.profile, &ctx.stats)
            .with_limits(ExecLimits {
                max_rows: Some(4),
                deadline: None,
            })
            .run_query(&q);
        assert!(matches!(err, Err(DbError::BudgetExceeded(_))), "{err:?}");
        let ok = Executor::new(&ctx.catalog, ctx.profile, &ctx.stats)
            .with_limits(ExecLimits {
                max_rows: Some(9),
                deadline: None,
            })
            .run_query(&q);
        assert_eq!(ok.unwrap().rows.len(), 9);
    }

    #[test]
    fn expired_deadline_fails_with_timeout() {
        let ctx = seeded(EngineProfile::Postgres);
        let q = parse_query("SELECT * FROM t").unwrap();
        let err = Executor::new(&ctx.catalog, ctx.profile, &ctx.stats)
            .with_limits(ExecLimits {
                max_rows: None,
                deadline: Some(Instant::now() - std::time::Duration::from_millis(10)),
            })
            .run_query(&q);
        assert!(matches!(err, Err(DbError::Timeout(_))), "{err:?}");
    }

    #[test]
    fn intermediate_materialization_charged_and_refunded() {
        let ctx = seeded(EngineProfile::Postgres);
        let budget = ctx.catalog.memory_budget().clone();
        let base = budget.used();
        // a tight limit rejects the cross join's materialization…
        budget.set_limit(Some(base + 100));
        let q = parse_query("SELECT a.id FROM t AS a, t AS b, t AS c, t AS d, t AS e").unwrap();
        let err = Executor::new(&ctx.catalog, ctx.profile, &ctx.stats).run_query(&q);
        assert!(matches!(err, Err(DbError::BudgetExceeded(_))), "{err:?}");
        // …and the failed statement refunds its reservation
        assert_eq!(budget.used(), base);
        budget.set_limit(None);
        assert!(Executor::new(&ctx.catalog, ctx.profile, &ctx.stats)
            .run_query(&q)
            .is_ok());
        assert_eq!(budget.used(), base);
    }

    #[test]
    fn self_left_join_pagerank_shape() {
        // the exact join shape of the paper's Example 2 iterative part
        let ctx = Ctx::new(EngineProfile::Postgres);
        ctx.exec("CREATE TABLE pr (node INT PRIMARY KEY, rank FLOAT, delta FLOAT)")
            .unwrap();
        ctx.exec("INSERT INTO pr VALUES (1, 0.0, 0.15), (2, 0.0, 0.15), (3, 0.0, 0.15)")
            .unwrap();
        ctx.exec("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
            .unwrap();
        ctx.exec("INSERT INTO edges VALUES (1, 2, 1.0), (2, 3, 0.5), (2, 1, 0.5)")
            .unwrap();
        let r = ctx.query(
            "SELECT pr.node, COALESCE(pr.rank + pr.delta, 0.15), \
             COALESCE(0.85 * SUM(ir.delta * ie.weight), 0.0) \
             FROM pr LEFT JOIN edges AS ie ON pr.node = ie.dst \
             LEFT JOIN pr AS ir ON ir.node = ie.src \
             GROUP BY pr.node ORDER BY pr.node",
        );
        assert_eq!(r.rows.len(), 3);
        // node 1 receives 0.85 * 0.15 * 0.5 from node 2
        assert_eq!(r.rows[0][2], Value::Float(0.85 * 0.15 * 0.5));
        // node 3 receives 0.85 * 0.15 * 0.5 from node 2
        assert_eq!(r.rows[2][2], Value::Float(0.85 * 0.15 * 0.5));
        // every node's new rank accumulates its delta
        assert_eq!(r.rows[1][1], Value::Float(0.15));
    }

    #[test]
    fn vectorized_and_row_paths_agree() {
        for p in EngineProfile::ALL {
            let ctx = seeded(p);
            ctx.exec("INSERT INTO t VALUES (7, NULL, NULL)").unwrap();
            for sql in [
                "SELECT id, v FROM t WHERE v > 1.0 ORDER BY id",
                "SELECT tag, COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) \
                 FROM t GROUP BY tag ORDER BY tag",
                "SELECT a.id, b.tag FROM t AS a JOIN t AS b ON a.id = b.id \
                 WHERE a.v >= 0.5 ORDER BY a.id",
                "SELECT id, CASE WHEN v > 1.0 THEN 'hi' ELSE 'lo' END FROM t ORDER BY id",
                "SELECT DISTINCT tag FROM t ORDER BY tag",
                "SELECT COUNT(*) FROM t WHERE tag = 'a' AND v > 0.0",
                "SELECT id + 1 AS id2, v * 2.0, -v FROM t ORDER BY id2",
                "SELECT id FROM t WHERE v IS NULL OR tag = 'b' ORDER BY id",
                "SELECT SUM(v) FROM t WHERE v > 100.0",
            ] {
                let q = parse_query(sql).unwrap();
                let vec_out = Executor::new(&ctx.catalog, ctx.profile, &ctx.stats)
                    .run_query(&q)
                    .unwrap();
                let row_out = Executor::new(&ctx.catalog, ctx.profile, &ctx.stats)
                    .with_vectorized(false)
                    .run_query(&q)
                    .unwrap();
                assert_eq!(vec_out, row_out, "profile {p:?} sql {sql}");
            }
        }
    }

    #[test]
    fn vectorized_errors_match_row_path() {
        for p in EngineProfile::ALL {
            let ctx = seeded(p);
            for sql in [
                // division by zero reached through a batch kernel
                "SELECT id / 0 FROM t",
                // an error on the taken path of a fallible AND right side
                "SELECT id FROM t WHERE v IS NOT NULL AND id / (id - id) > 0 ORDER BY id",
                // an error hidden behind a short-circuiting AND must NOT fire
                "SELECT id FROM t WHERE v IS NULL AND id / (id - id) > 0 ORDER BY id",
            ] {
                let q = parse_query(sql).unwrap();
                let vec_out = Executor::new(&ctx.catalog, ctx.profile, &ctx.stats).run_query(&q);
                let row_out = Executor::new(&ctx.catalog, ctx.profile, &ctx.stats)
                    .with_vectorized(false)
                    .run_query(&q);
                match (vec_out, row_out) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "profile {p:?} sql {sql}"),
                    (Err(a), Err(b)) => {
                        assert_eq!(a.to_string(), b.to_string(), "profile {p:?} sql {sql}")
                    }
                    (a, b) => panic!("paths disagree for {sql} on {p:?}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn batched_pipeline_reports_batch_actuals() {
        // MySQL's 256-row batches over 600 rows → 3 batches at the scan
        let ctx = Ctx::new(EngineProfile::MySql);
        ctx.exec("CREATE TABLE big (id INT PRIMARY KEY, v FLOAT)")
            .unwrap();
        let tuples: Vec<String> = (0..600).map(|i| format!("({i}, {}.5)", i % 10)).collect();
        ctx.exec(&format!("INSERT INTO big VALUES {}", tuples.join(",")))
            .unwrap();
        let q = parse_query("SELECT v, COUNT(*) FROM big WHERE id >= 0 GROUP BY v").unwrap();
        let prof = OpProfiler::new();
        let out = Executor::new(&ctx.catalog, ctx.profile, &ctx.stats)
            .with_profiler(&prof)
            .run_query(&q)
            .unwrap();
        assert_eq!(out.rows.len(), 10);
        let roots = prof.take();
        assert_eq!(roots.len(), 1);
        let agg = &roots[0];
        assert_eq!(agg.label, "HashAggregate (group by 1 keys)");
        assert_eq!(agg.batches, 3);
        assert_eq!(agg.calls, 600);
        let filter = &agg.children[0];
        assert_eq!(filter.label, "Filter");
        assert_eq!(filter.batches, 3);
        let scan = &filter.children[0];
        assert_eq!(scan.label, "SeqScan big");
        assert_eq!(scan.batches, 3);
        let mut lines = Vec::new();
        roots[0].render(0, &mut lines);
        assert!(lines[0].contains("batches=3 rows/batch=200"), "{lines:?}");
        // rows-out at the root must stay oracle-exact in either mode
        let row_out = Executor::new(&ctx.catalog, ctx.profile, &ctx.stats)
            .with_vectorized(false)
            .run_query(&q)
            .unwrap();
        assert_eq!(out, row_out);
    }

    #[test]
    fn columnar_intermediates_charged_and_refunded() {
        // satellite regression: a memory squeeze during batched aggregation
        // fails with the typed budget error and refunds every reservation
        let ctx = seeded(EngineProfile::Postgres);
        let budget = ctx.catalog.memory_budget().clone();
        let base = budget.used();
        budget.set_limit(Some(base + 1));
        let q = parse_query("SELECT tag, SUM(v) FROM t GROUP BY tag").unwrap();
        let err = Executor::new(&ctx.catalog, ctx.profile, &ctx.stats).run_query(&q);
        assert!(matches!(err, Err(DbError::BudgetExceeded(_))), "{err:?}");
        assert_eq!(budget.used(), base);
        budget.set_limit(None);
        assert!(Executor::new(&ctx.catalog, ctx.profile, &ctx.stats)
            .run_query(&q)
            .is_ok());
        assert_eq!(budget.used(), base);
    }
}
