//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!`, `prop_assert!`, `prop_assert_eq!` and `prop_oneof!` macros,
//! range / tuple / `Just` / regex-string strategies, `prop_map`,
//! `prop_recursive`, `collection::vec`, `option::of` and `any::<T>()`.
//!
//! Cases are generated from a deterministic per-test seed; there is no
//! shrinking — a failing case reports its index and message instead.

use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator for one test case, from the test path and case
    /// index (reruns of the same binary reproduce the same cases).
    pub fn for_case(test_path: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------
// config and failure reporting
// ---------------------------------------------------------------------

/// Runner configuration (only `cases` is honored by this stand-in).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property (carried by `prop_assert!`-style early returns).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

// ---------------------------------------------------------------------
// strategy core
// ---------------------------------------------------------------------

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds recursive values: each level is an even mix of the leaf
    /// strategy and `f` applied to the previous level, nested up to
    /// `depth` times (`_desired_size`/`_expected_branch` are accepted for
    /// API compatibility and ignored).
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            current = Union::new(vec![leaf.clone(), f(current).boxed()]).boxed();
        }
        current
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> BoxedStrategy<V> {
        BoxedStrategy(self.0.clone())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between alternatives (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------
// primitive strategies
// ---------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

// ---------------------------------------------------------------------
// regex-subset string strategy
// ---------------------------------------------------------------------

/// `&str` patterns act as string strategies over a regex subset:
/// literal characters and `[...]` classes (with `a-z` ranges), each
/// optionally followed by `{m,n}` / `{m}` repetition.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let elements = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in &elements {
            let n = *lo + rng.below(hi - lo + 1);
            for _ in 0..n {
                out.push(chars[rng.below(chars.len())]);
            }
        }
        out
    }
}

type PatternElement = (Vec<char>, usize, usize);

fn parse_pattern(pattern: &str) -> Vec<PatternElement> {
    let mut chars = pattern.chars().peekable();
    let mut out: Vec<PatternElement> = Vec::new();
    while let Some(c) = chars.next() {
        let alphabet: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                    match c {
                        ']' => break,
                        '\\' => {
                            let e = chars.next().expect("dangling escape");
                            set.push(e);
                            prev = Some(e);
                        }
                        '-' if prev.is_some() && chars.peek() != Some(&']') => {
                            let hi = chars.next().expect("dangling range");
                            let lo = prev.take().expect("range without start");
                            for v in (lo as u32 + 1)..=(hi as u32) {
                                set.push(char::from_u32(v).expect("bad range"));
                            }
                        }
                        other => {
                            set.push(other);
                            prev = Some(other);
                        }
                    }
                }
                set
            }
            '\\' => vec![chars.next().expect("dangling escape")],
            other => vec![other],
        };
        // optional {m,n} / {m} repetition
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad repeat lower bound"),
                    n.trim().parse().expect("bad repeat upper bound"),
                ),
                None => {
                    let m = spec.trim().parse().expect("bad repeat count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        assert!(
            !alphabet.is_empty() && lo <= hi,
            "unsupported pattern {pattern:?}"
        );
        out.push((alphabet, lo, hi));
    }
    out
}

// ---------------------------------------------------------------------
// arbitrary
// ---------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------
// collection / option modules
// ---------------------------------------------------------------------

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let n = self.len.start + rng.below(span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------

/// Declares property tests (see the real proptest's documentation; this
/// stand-in runs `cases` deterministic random cases without shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat_param in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current property case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Uniform choice between strategy alternatives of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, Union,
    };
}

// ---------------------------------------------------------------------
// self tests
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::for_case("regex", 0);
        for case in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!((1..=7).contains(&s.len()), "case {case}: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn ranges_and_tuples_compose() {
        let mut rng = TestRng::for_case("tuples", 3);
        let strat = (0i64..5, crate::option::of(-1.5f64..1.5));
        for _ in 0..100 {
            let (a, b) = Strategy::generate(&strat, &mut rng);
            assert!((0..5).contains(&a));
            if let Some(f) = b {
                assert!((-1.5..1.5).contains(&f));
            }
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let mut rng = TestRng::for_case("union", 9);
        let strat = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_runs(v in crate::collection::vec(0u32..10, 0..8)) {
            prop_assert!(v.len() < 8);
            for x in v {
                prop_assert!(x < 10, "x = {x}");
            }
        }
    }
}
