//! # dbcp — database connectivity for the SQLoop reproduction
//!
//! The JDBC analog the SQLoop middleware talks through (paper §IV-A):
//!
//! * [`Connection`]/[`Driver`] traits with statement **batching**,
//!   transaction demarcation and isolation control — the JDBC features the
//!   paper calls out as "vital" for correct and efficient execution;
//! * an in-process driver ([`LocalDriver`]) wrapping a [`sqldb::Database`];
//! * a binary **wire protocol** over TCP ([`Server`], [`TcpDriver`]) so the
//!   target engine can genuinely be remote, as the paper's middleware
//!   permits;
//! * a bounded connection [`Pool`] with liveness checking;
//! * a [`RetryPolicy`] (bounded attempts, exponential backoff + jitter)
//!   for transient connectivity failures;
//! * a deterministic fault-injection decorator ([`ChaosDriver`]) for
//!   resilience testing: seeded, reproducible connect refusals, statement
//!   errors, latency, and mid-session connection drops.
//!
//! ## Quick start (remote engine)
//!
//! ```
//! use dbcp::{Driver, Server, TcpDriver};
//! use sqldb::{Database, EngineProfile};
//!
//! # fn main() -> Result<(), sqldb::DbError> {
//! let server = Server::bind(Database::new(EngineProfile::Postgres), "127.0.0.1:0")?;
//! let driver = TcpDriver::connect(&server.addr().to_string())?;
//! let mut conn = driver.connect()?;
//! conn.execute("CREATE TABLE t (a INT)")?;
//! conn.execute("INSERT INTO t VALUES (1), (2)")?;
//! assert_eq!(conn.query("SELECT COUNT(*) FROM t")?.rows[0][0], sqldb::Value::Int(2));
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod cancel;
pub mod chaos;
mod client;
mod driver;
mod metrics_cmd;
mod pool;
mod prepared;
mod retry;
mod server;
mod url;
pub mod wire;

pub use cancel::CancelToken;
pub use chaos::{
    connect_with_retry, with_chaos, ChaosConfig, ChaosConnection, ChaosDriver, ChaosStats,
    FaultKind, FaultWeights, ScheduledFault,
};
pub use client::{TcpConnection, TcpDriver, TcpTimeouts};
pub use driver::{
    Connection, Driver, LocalConnection, LocalDriver, PipelineOutcome, MAX_PREPARED_PER_CONNECTION,
};
pub use metrics_cmd::{prometheus_dump, DIGEST_COLUMNS, PROMETHEUS_DIGEST_TOP_K, SLOW_LOG_COLUMNS};
pub use pool::{Pool, PooledConnection};
pub use prepared::PreparedStatement;
pub use retry::{is_transient, RetryPolicy};
pub use server::{Server, ServerConfig};
pub use url::{driver_for_url, ConnectionUrl};
pub use wire::{MetricsCmd, PipelineStep};

#[cfg(test)]
mod integration {
    use super::*;
    use sqldb::{Database, DbError, EngineProfile, Value};

    #[test]
    fn tcp_end_to_end() {
        let db = Database::new(EngineProfile::MariaDb);
        let server = Server::bind(db, "127.0.0.1:0").unwrap();
        let driver = TcpDriver::connect(&server.addr().to_string()).unwrap();
        assert_eq!(driver.profile(), EngineProfile::MariaDb);

        let mut c = driver.connect().unwrap();
        c.execute("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
            .unwrap();
        let out = c
            .execute_batch(&[
                "INSERT INTO t VALUES (1, 0.5)".into(),
                "INSERT INTO t VALUES (2, 1.5)".into(),
            ])
            .unwrap();
        assert_eq!(out.len(), 2);
        let r = c.query("SELECT SUM(v) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Float(2.0));

        // errors propagate with their kind intact
        let err = c.execute("INSERT INTO t VALUES (1, 0.0)");
        assert!(matches!(err, Err(DbError::Invalid(_))), "{err:?}");

        // transactions over the wire
        c.begin().unwrap();
        c.execute("DELETE FROM t").unwrap();
        c.rollback().unwrap();
        let r = c.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
        server.shutdown();
    }

    #[test]
    fn panicking_statement_errors_one_frame_not_the_connection() {
        let db = Database::new(EngineProfile::Postgres);
        {
            let mut s = db.connect();
            s.execute("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
                .unwrap();
            s.execute("INSERT INTO t VALUES (1, 1.0)").unwrap();
        }
        let server = Server::bind(db.clone(), "127.0.0.1:0").unwrap();
        let driver = TcpDriver::connect(&server.addr().to_string()).unwrap();
        let mut c = driver.connect().unwrap();
        let caught = obs::global().counter("dbcp.server.panics_caught");
        let before = caught.get();

        // the injected panic unwinds inside the handler's per-frame
        // boundary: this client sees a typed, retryable error...
        db.set_panic_probe(Some("t"), 1);
        let err = c.execute("UPDATE t SET v = 2.0");
        assert!(matches!(err, Err(DbError::TxnAborted(_))), "{err:?}");
        assert_eq!(caught.get() - before, 1);

        // ...and the SAME connection keeps working: recovery released the
        // locks the panic left held, so the next statement succeeds
        c.execute("UPDATE t SET v = 3.0").unwrap();
        let r = c.query("SELECT v FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Float(3.0));

        // a second client is also unaffected
        let mut c2 = driver.connect().unwrap();
        c2.execute("DELETE FROM t").unwrap();
        server.shutdown();
    }

    #[test]
    fn tcp_concurrent_clients() {
        let db = Database::new(EngineProfile::Postgres);
        {
            let mut s = db.connect();
            s.execute("CREATE TABLE n (id INT PRIMARY KEY)").unwrap();
        }
        let server = Server::bind(db.clone(), "127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut c = TcpConnection::open(&addr).unwrap();
                    for i in 0..25 {
                        c.execute(&format!("INSERT INTO n VALUES ({})", w * 100 + i))
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut s = db.connect();
        let r = s.query("SELECT COUNT(*) FROM n").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(100));
        server.shutdown();
    }

    #[test]
    fn metrics_scrape_over_the_wire() {
        let db = Database::new(EngineProfile::Postgres);
        let server = Server::bind(db, "127.0.0.1:0").unwrap();
        let driver = TcpDriver::connect(&server.addr().to_string()).unwrap();
        let mut c = driver.connect().unwrap();
        c.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        for id in 0..3 {
            c.execute(&format!("INSERT INTO t VALUES ({id})")).unwrap();
        }

        // the scrape validates and names the insert family
        let text = c.metrics_prometheus().unwrap();
        obs::validate_prometheus_text(&text).unwrap();
        assert!(
            text.contains("digest=\"insert into t values (?)\""),
            "{text}"
        );

        // digest table over the wire, sorted by total time
        let top = c.digest_top(16).unwrap();
        assert_eq!(top.columns, DIGEST_COLUMNS.to_vec());
        assert!(top.rows.iter().any(
            |r| r[0] == Value::Text("insert into t values (?)".into()) && r[1] == Value::Int(3)
        ));

        // misses view: each insert text is unique, so the family shows 3
        let misses = c.digest_top_misses(4).unwrap();
        assert!(misses.rows.iter().any(
            |r| r[0] == Value::Text("insert into t values (?)".into()) && r[8] == Value::Int(3)
        ));

        // setters answer Done and take effect server-side
        c.set_profiling(true).unwrap();
        c.configure_slow_log(1, 1).unwrap();
        c.execute("SELECT COUNT(*) FROM t").unwrap();
        let slow = c.slow_log().unwrap();
        assert_eq!(slow.columns, SLOW_LOG_COLUMNS.to_vec());
        c.reset_engine_stats().unwrap();
        let cleared = c.digest_top(16).unwrap();
        assert!(cleared.rows.is_empty());
        server.shutdown();
    }

    #[test]
    fn bare_session_connection_reports_metrics_unsupported() {
        let db = Database::new(EngineProfile::Postgres);
        let mut c = LocalConnection::from_session(db.connect(), db.profile());
        let err = c.metrics_prometheus();
        assert!(matches!(err, Err(DbError::Unsupported(_))), "{err:?}");
        // driver-minted connections have the handle attached
        let driver = LocalDriver::new(db);
        let mut c = driver.connect().unwrap();
        assert!(c.metrics_prometheus().is_ok());
    }

    #[test]
    fn server_session_rolls_back_on_disconnect() {
        let db = Database::new(EngineProfile::Postgres);
        {
            let mut s = db.connect();
            s.execute("CREATE TABLE t (a INT)").unwrap();
            s.execute("INSERT INTO t VALUES (1)").unwrap();
        }
        let server = Server::bind(db.clone(), "127.0.0.1:0").unwrap();
        {
            let driver = TcpDriver::connect(&server.addr().to_string()).unwrap();
            let mut c = driver.connect().unwrap();
            c.begin().unwrap();
            c.execute("DELETE FROM t").unwrap();
            // dropped without commit
        }
        // wait for the server thread to observe the disconnect
        let mut s = db.connect();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let n = s.query("SELECT COUNT(*) FROM t").unwrap().rows[0][0].clone();
            if n == Value::Int(1) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "rollback never happened"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        server.shutdown();
    }
}
