//! Concurrency across the middleware: two iterative CTEs running at the
//! same time against one database, and regular OLTP-ish traffic on other
//! tables while an iterative query runs (the paper's §IV-C assumption:
//! only the tables involved in the CTE are frozen; "the rest of the tables
//! and queries … can still be executed in parallel").

use dbcp::{Driver, LocalDriver};
use sqldb::{Database, EngineProfile, Value};
use sqloop::{ExecutionMode, SQLoop, SqloopConfig};
use std::sync::Arc;

fn driver_with_graph(g: &graphgen::Graph) -> (Database, Arc<LocalDriver>) {
    let db = Database::new(EngineProfile::Postgres);
    let driver = Arc::new(LocalDriver::new(db.clone()));
    let mut conn = driver.connect().unwrap();
    workloads::load_edges(conn.as_mut(), g).unwrap();
    (db, driver)
}

#[test]
fn two_iterative_ctes_run_concurrently() {
    let g = graphgen::web_graph(80, 3, 3);
    let (_, driver) = driver_with_graph(&g);
    let mk = |mode| {
        SQLoop::new(driver.clone() as Arc<dyn Driver>).with_config(SqloopConfig {
            mode,
            threads: 2,
            partitions: 8,
            ..SqloopConfig::default()
        })
    };
    // distinct CTE names → disjoint scratch tables; both share `edges`
    // read-only, so they interleave freely
    let a = std::thread::spawn({
        let sq = mk(ExecutionMode::Sync);
        move || sq.execute(&workloads::queries::pagerank(6)).unwrap()
    });
    let b = std::thread::spawn({
        let sq = mk(ExecutionMode::Async);
        move || sq.execute(&workloads::queries::sssp_all(0)).unwrap()
    });
    let pr = a.join().unwrap();
    let ss = b.join().unwrap();
    assert_eq!(pr.rows.len(), g.node_count());
    assert_eq!(ss.rows.len(), g.node_count());
    // both still correct
    let oracle = workloads::oracle::sssp(&g, 0);
    for row in &ss.rows {
        let node = row[0].as_i64().unwrap() as u64;
        let d = row[1].as_f64().unwrap();
        match oracle.get(&node) {
            Some(&e) => assert!((d - e).abs() < 1e-9),
            None => assert!(d.is_infinite()),
        }
    }
}

#[test]
fn unrelated_tables_stay_transactional_during_an_iterative_run() {
    let g = graphgen::web_graph(60, 3, 5);
    let (db, driver) = driver_with_graph(&g);
    {
        let mut s = db.connect();
        s.execute("CREATE TABLE accounts (id INT PRIMARY KEY, balance FLOAT)")
            .unwrap();
        s.execute("INSERT INTO accounts VALUES (1, 100.0), (2, 100.0)")
            .unwrap();
    }
    let sq = SQLoop::new(driver.clone() as Arc<dyn Driver>).with_config(SqloopConfig {
        mode: ExecutionMode::Async,
        threads: 2,
        partitions: 8,
        ..SqloopConfig::default()
    });
    let worker = std::thread::spawn(move || sq.execute(&workloads::queries::pagerank(8)).unwrap());
    // concurrent transactional transfers on an unrelated table
    let mut s = db.connect();
    for _ in 0..50 {
        s.execute("BEGIN").unwrap();
        s.execute("UPDATE accounts SET balance = balance - 1.0 WHERE id = 1")
            .unwrap();
        s.execute("UPDATE accounts SET balance = balance + 1.0 WHERE id = 2")
            .unwrap();
        s.execute("COMMIT").unwrap();
    }
    // money is conserved at every point; check the final state
    let total = s.query("SELECT SUM(balance) FROM accounts").unwrap();
    assert_eq!(total.rows[0][0], Value::Float(200.0));
    let moved = s
        .query("SELECT balance FROM accounts WHERE id = 2")
        .unwrap();
    assert_eq!(moved.rows[0][0], Value::Float(150.0));
    let pr = worker.join().unwrap();
    assert_eq!(pr.rows.len(), g.node_count());
}

#[test]
fn same_cte_name_reruns_are_safe_sequentially() {
    // the middleware reuses scratch names per CTE; back-to-back runs must
    // fully clean up and reinitialize
    let g = graphgen::web_graph(50, 3, 8);
    let (_, driver) = driver_with_graph(&g);
    // one worker keeps message-table registration order (and thus float
    // summation order) deterministic, so the runs compare bit-exactly
    let sq = SQLoop::new(driver as Arc<dyn Driver>).with_config(SqloopConfig {
        mode: ExecutionMode::Sync,
        threads: 1,
        partitions: 4,
        ..SqloopConfig::default()
    });
    let first = sq.execute(&workloads::queries::pagerank(5)).unwrap();
    let second = sq.execute(&workloads::queries::pagerank(5)).unwrap();
    assert_eq!(first.rows, second.rows);
}
