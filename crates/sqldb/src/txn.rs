//! Transactions: table-level two-phase locking and undo-based rollback.
//!
//! The engine follows SQLoop's OLAP assumption (paper §IV-C): tables touched
//! by a running iterative query are not concurrently updated, while other
//! tables keep ACID semantics through strict table-granularity 2PL. Locks
//! are *logical* (keyed by table name in the [`LockManager`]) — the physical
//! `RwLock` around each table is only held for the duration of individual
//! scan/mutate operations, so lock acquisition order cannot deadlock with
//! data access.
//!
//! Deadlock handling is timeout-based: an acquisition that cannot proceed
//! within the configured wait budget fails with [`DbError::LockTimeout`],
//! mirroring MySQL's `innodb_lock_wait_timeout` behaviour.

use crate::error::{DbError, DbResult};
use crate::stats::Stats;
use crate::value::Row;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Lock mode for a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (readers).
    Shared,
    /// Exclusive (single writer, no readers).
    Exclusive,
}

/// Transaction isolation level (JDBC-style).
///
/// With table-granularity strict 2PL, `ReadCommitted` releases read locks at
/// statement end while `Serializable` holds them to commit; both hold write
/// locks to commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IsolationLevel {
    /// Read locks released at statement boundaries.
    #[default]
    ReadCommitted,
    /// Strict 2PL: all locks held until commit/rollback.
    Serializable,
}

#[derive(Debug, Default)]
struct LockState {
    readers: HashSet<u64>,
    writer: Option<u64>,
}

/// Database-wide logical lock table.
#[derive(Debug, Default)]
pub struct LockManager {
    inner: Mutex<HashMap<String, LockState>>,
    cond: Condvar,
}

impl LockManager {
    /// Creates an empty lock manager.
    pub fn new() -> LockManager {
        LockManager::default()
    }

    /// Acquires `mode` on `table` for session `sid`, waiting up to `timeout`.
    ///
    /// Re-entrant: a session holding exclusive may re-acquire either mode; a
    /// session holding shared may upgrade to exclusive once no other readers
    /// remain.
    ///
    /// # Errors
    /// Returns [`DbError::LockTimeout`] when the wait budget elapses.
    pub fn acquire(
        &self,
        sid: u64,
        table: &str,
        mode: LockMode,
        timeout: Duration,
        stats: &Stats,
    ) -> DbResult<()> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.inner.lock();
        let mut waited = false;
        loop {
            let state = guard.entry(table.to_owned()).or_default();
            let granted = match mode {
                LockMode::Shared => state.writer.is_none() || state.writer == Some(sid),
                LockMode::Exclusive => {
                    let no_other_readers = state.readers.is_empty()
                        || (state.readers.len() == 1 && state.readers.contains(&sid));
                    (state.writer.is_none() || state.writer == Some(sid)) && no_other_readers
                }
            };
            if granted {
                match mode {
                    LockMode::Shared => {
                        if state.writer != Some(sid) {
                            state.readers.insert(sid);
                        }
                    }
                    LockMode::Exclusive => {
                        state.readers.remove(&sid);
                        state.writer = Some(sid);
                    }
                }
                if waited {
                    stats.add_lock_waits(1);
                }
                return Ok(());
            }
            waited = true;
            if self.cond.wait_until(&mut guard, deadline).timed_out() {
                return Err(DbError::LockTimeout(format!(
                    "session {sid} timed out waiting for {mode:?} lock on {table}"
                )));
            }
        }
    }

    /// Releases whatever lock `sid` holds on `table`.
    pub fn release(&self, sid: u64, table: &str) {
        let mut guard = self.inner.lock();
        if let Some(state) = guard.get_mut(table) {
            state.readers.remove(&sid);
            if state.writer == Some(sid) {
                state.writer = None;
            }
            if state.readers.is_empty() && state.writer.is_none() {
                guard.remove(table);
            }
        }
        drop(guard);
        self.cond.notify_all();
    }

    /// Releases every lock held by `sid` from the given set of table names.
    pub fn release_all(&self, sid: u64, tables: &HashSet<String>) {
        let mut guard = self.inner.lock();
        for table in tables {
            if let Some(state) = guard.get_mut(table) {
                state.readers.remove(&sid);
                if state.writer == Some(sid) {
                    state.writer = None;
                }
                if state.readers.is_empty() && state.writer.is_none() {
                    guard.remove(table);
                }
            }
        }
        drop(guard);
        self.cond.notify_all();
    }
}

/// One reversible data change.
#[derive(Debug)]
pub enum UndoOp {
    /// A row was inserted at `slot`.
    Insert {
        /// Table name.
        table: String,
        /// Slot of the inserted row.
        slot: usize,
    },
    /// The row at `slot` was replaced; `old` restores it.
    Update {
        /// Table name.
        table: String,
        /// Updated slot.
        slot: usize,
        /// Previous row contents.
        old: Row,
    },
    /// The row at `slot` was deleted; `old` restores it.
    Delete {
        /// Table name.
        table: String,
        /// Deleted slot.
        slot: usize,
        /// Previous row contents.
        old: Row,
    },
}

/// Ordered log of data changes made by an open transaction.
///
/// Rollback replays the log in reverse. DDL (create/drop/truncate-created
/// structures) is deliberately *not* undoable — like MySQL, DDL implicitly
/// commits (documented engine behaviour).
#[derive(Debug, Default)]
pub struct UndoLog {
    ops: Vec<UndoOp>,
}

impl UndoLog {
    /// Creates an empty log.
    pub fn new() -> UndoLog {
        UndoLog::default()
    }

    /// Appends an operation.
    pub fn push(&mut self, op: UndoOp) {
        self.ops.push(op);
    }

    /// Current length — use with [`UndoLog::split_off`] for statement-level
    /// atomicity marks.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no changes are logged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drops all operations (on commit).
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// Splits off and returns the operations at index `mark` and beyond
    /// (newest last) so the caller can roll back just one statement.
    pub fn split_off(&mut self, mark: usize) -> Vec<UndoOp> {
        self.ops.split_off(mark)
    }

    /// Takes the whole log (for full rollback).
    pub fn take_all(&mut self) -> Vec<UndoOp> {
        std::mem::take(&mut self.ops)
    }
}

/// Applies undo operations (newest-first) against the catalog.
///
/// # Errors
/// Propagates storage errors (should not occur for well-formed logs).
pub fn apply_undo(catalog: &crate::catalog::Catalog, ops: Vec<UndoOp>) -> DbResult<()> {
    for op in ops.into_iter().rev() {
        match op {
            UndoOp::Insert { table, slot } => {
                // table may have been dropped by later DDL; ignore then
                if let Ok(handle) = catalog.table(&table) {
                    let _ = handle.write().delete_slot(slot);
                }
            }
            UndoOp::Update { table, slot, old } => {
                if let Ok(handle) = catalog.table(&table) {
                    handle.write().update_slot(slot, old)?;
                }
            }
            UndoOp::Delete { table, slot, old } => {
                if let Ok(handle) = catalog.table(&table) {
                    handle.write().restore_slot(slot, old);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn quick(lm: &LockManager, sid: u64, t: &str, m: LockMode) -> DbResult<()> {
        lm.acquire(sid, t, m, Duration::from_millis(50), &Stats::new())
    }

    #[test]
    fn shared_locks_are_compatible() {
        let lm = LockManager::new();
        quick(&lm, 1, "t", LockMode::Shared).unwrap();
        quick(&lm, 2, "t", LockMode::Shared).unwrap();
    }

    #[test]
    fn exclusive_blocks_others() {
        let lm = LockManager::new();
        quick(&lm, 1, "t", LockMode::Exclusive).unwrap();
        assert!(matches!(
            quick(&lm, 2, "t", LockMode::Shared),
            Err(DbError::LockTimeout(_))
        ));
        assert!(matches!(
            quick(&lm, 2, "t", LockMode::Exclusive),
            Err(DbError::LockTimeout(_))
        ));
        lm.release(1, "t");
        quick(&lm, 2, "t", LockMode::Exclusive).unwrap();
    }

    #[test]
    fn reentrant_and_upgrade() {
        let lm = LockManager::new();
        quick(&lm, 1, "t", LockMode::Shared).unwrap();
        // sole reader may upgrade
        quick(&lm, 1, "t", LockMode::Exclusive).unwrap();
        // holder of exclusive may re-acquire shared without downgrading
        quick(&lm, 1, "t", LockMode::Shared).unwrap();
        assert!(quick(&lm, 2, "t", LockMode::Shared).is_err());
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let lm = LockManager::new();
        quick(&lm, 1, "t", LockMode::Shared).unwrap();
        quick(&lm, 2, "t", LockMode::Shared).unwrap();
        assert!(quick(&lm, 1, "t", LockMode::Exclusive).is_err());
    }

    #[test]
    fn waiting_thread_wakes_on_release() {
        let lm = Arc::new(LockManager::new());
        let stats = Arc::new(Stats::new());
        quick(&lm, 1, "t", LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let stats2 = stats.clone();
        let handle = std::thread::spawn(move || {
            lm2.acquire(2, "t", LockMode::Exclusive, Duration::from_secs(5), &stats2)
        });
        std::thread::sleep(Duration::from_millis(20));
        lm.release(1, "t");
        handle.join().unwrap().unwrap();
        assert_eq!(stats.snapshot().lock_waits, 1);
    }

    #[test]
    fn release_all() {
        let lm = LockManager::new();
        quick(&lm, 1, "a", LockMode::Exclusive).unwrap();
        quick(&lm, 1, "b", LockMode::Shared).unwrap();
        let mut held = HashSet::new();
        held.insert("a".to_string());
        held.insert("b".to_string());
        lm.release_all(1, &held);
        quick(&lm, 2, "a", LockMode::Exclusive).unwrap();
        quick(&lm, 2, "b", LockMode::Exclusive).unwrap();
    }

    #[test]
    fn undo_log_marks() {
        let mut log = UndoLog::new();
        log.push(UndoOp::Insert {
            table: "t".into(),
            slot: 0,
        });
        let mark = log.len();
        log.push(UndoOp::Insert {
            table: "t".into(),
            slot: 1,
        });
        let tail = log.split_off(mark);
        assert_eq!(tail.len(), 1);
        assert_eq!(log.len(), 1);
        assert!(!log.is_empty());
        log.clear();
        assert!(log.is_empty());
    }
}
