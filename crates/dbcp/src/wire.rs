//! Binary wire protocol: length-prefixed frames, tagged messages.
//!
//! Layout: every frame is `u32` big-endian payload length followed by the
//! payload; the first payload byte is the message tag. Values use a 1-byte
//! type tag. The protocol is versioned by a magic handshake byte pair.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sqldb::{DbError, DbResult, EngineProfile, IsolationLevel, QueryResult, StmtOutput, Value};

/// Protocol magic sent by clients on connect.
pub const MAGIC: [u8; 2] = [0xD8, 0x01];

/// Maximum accepted frame size (64 MiB) — guards against corrupt lengths.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute one statement.
    Execute(String),
    /// Execute a batch of statements.
    Batch(Vec<String>),
    /// `BEGIN`.
    Begin,
    /// `COMMIT`.
    Commit,
    /// `ROLLBACK`.
    Rollback,
    /// Set the isolation level.
    SetIsolation(IsolationLevel),
    /// Ask for the engine profile.
    Profile,
    /// Close the connection.
    Close,
    /// Set the per-statement execution deadline in milliseconds
    /// (`0` clears it). Applied server-side to the backing session.
    SetStatementTimeout(u64),
    /// Parse once server-side; returns `Prepared { id, param_count }`.
    Prepare(String),
    /// Execute a previously prepared statement with positional parameters.
    ExecutePrepared {
        /// Statement id from `Prepared`.
        stmt_id: u64,
        /// Values for the statement's `?` placeholders, in lexical order.
        params: Vec<Value>,
    },
    /// Discard a prepared statement server-side.
    ClosePrepared(u64),
    /// Pipelined sequence of steps sent in one round-trip; the server stops
    /// at the first failure and returns the successful prefix plus the error.
    Pipeline(Vec<PipelineStep>),
    /// Observability scrape / control (Prometheus dump, digest top-K,
    /// slow log, profiling toggles). Read commands answer with `Rows`,
    /// setters with `Done`.
    Metrics(MetricsCmd),
}

/// One observability command carried by [`Request::Metrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsCmd {
    /// Full metrics snapshot in Prometheus text exposition format
    /// (answered as a 1-column, 1-row result set holding the dump).
    Prometheus,
    /// Top-`k` statement digests by total time, as a typed result set.
    DigestTop(u32),
    /// Top-`k` statement digests by plan-cache misses (miss attribution).
    DigestTopMisses(u32),
    /// Retained slow-statement records, oldest first.
    SlowLog,
    /// Turn per-operator runtime profiling on or off, server-wide.
    SetProfiling(bool),
    /// Configure the slow-statement log: threshold in µs (0 disables)
    /// and keep-every-n sampling.
    SetSlowLog {
        /// Statements at or over this many microseconds are recorded.
        threshold_us: u64,
        /// Keep every n-th qualifying statement.
        sample_every: u64,
    },
    /// Drop all digest entries and slow-log records.
    ResetStats,
}

/// One step of a [`Request::Pipeline`].
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineStep {
    /// Execute SQL text.
    Execute(String),
    /// Execute a prepared statement.
    Prepared {
        /// Statement id from `Prepared`.
        stmt_id: u64,
        /// Values for the statement's `?` placeholders.
        params: Vec<Value>,
    },
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Execution failed.
    Error(DbError),
    /// A result set.
    Rows(QueryResult),
    /// Rows affected.
    Affected(u64),
    /// Success without payload.
    Done,
    /// Batch results (each a non-error output).
    BatchResults(Vec<Response>),
    /// The engine profile.
    ProfileIs(EngineProfile),
    /// A statement was prepared.
    Prepared {
        /// Server-side statement id, scoped to this connection.
        stmt_id: u64,
        /// Number of `?` placeholders the statement declares.
        param_count: u32,
    },
    /// Pipeline outcome: outputs of the successful prefix, plus the error
    /// that stopped execution (if any). The failing step's index equals
    /// `outputs.len()`.
    PipelineResults {
        /// Outputs of the steps that succeeded, in order.
        outputs: Vec<Response>,
        /// The error that stopped the pipeline, if it didn't complete.
        error: Option<DbError>,
    },
}

impl Response {
    /// Converts a successful response into a statement output.
    ///
    /// # Errors
    /// Returns the carried error for `Error`, or [`DbError::Connection`]
    /// for a protocol-inappropriate message.
    pub fn into_output(self) -> DbResult<StmtOutput> {
        match self {
            Response::Rows(r) => Ok(StmtOutput::Rows(r)),
            Response::Affected(n) => Ok(StmtOutput::Affected(n)),
            Response::Done => Ok(StmtOutput::Done),
            Response::Error(e) => Err(e),
            other => Err(DbError::Connection(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Builds a response from an execution result.
    pub fn from_result(result: DbResult<StmtOutput>) -> Response {
        match result {
            Ok(StmtOutput::Rows(r)) => Response::Rows(r),
            Ok(StmtOutput::Affected(n)) => Response::Affected(n),
            Ok(StmtOutput::Done) => Response::Done,
            Err(e) => Response::Error(e),
        }
    }
}

// ---------------------------------------------------------------------
// encoding
// ---------------------------------------------------------------------

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Int(i) => {
            buf.put_u8(1);
            buf.put_i64(*i);
        }
        Value::Float(f) => {
            buf.put_u8(2);
            buf.put_f64(*f);
        }
        Value::Text(s) => {
            buf.put_u8(3);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            buf.put_u8(4);
            buf.put_u8(u8::from(*b));
        }
    }
}

fn put_result(buf: &mut BytesMut, r: &QueryResult) {
    buf.put_u32(r.columns.len() as u32);
    for c in &r.columns {
        put_str(buf, c);
    }
    buf.put_u32(r.rows.len() as u32);
    for row in &r.rows {
        for v in row {
            put_value(buf, v);
        }
    }
}

fn profile_tag(p: EngineProfile) -> u8 {
    match p {
        EngineProfile::Postgres => 0,
        EngineProfile::MySql => 1,
        EngineProfile::MariaDb => 2,
    }
}

fn error_parts(e: &DbError) -> (u8, String) {
    match e {
        DbError::Parse(m) => (0, m.clone()),
        DbError::NotFound(m) => (1, m.clone()),
        DbError::AlreadyExists(m) => (2, m.clone()),
        DbError::Invalid(m) => (3, m.clone()),
        DbError::Eval(m) => (4, m.clone()),
        DbError::LockTimeout(m) => (5, m.clone()),
        DbError::TxnAborted(m) => (6, m.clone()),
        DbError::Unsupported(m) => (7, m.clone()),
        DbError::Connection(m) => (8, m.clone()),
        DbError::BudgetExceeded(m) => (9, m.clone()),
        DbError::Timeout(m) => (10, m.clone()),
        DbError::Overloaded(m) => (11, m.clone()),
    }
}

fn error_from_parts(kind: u8, msg: String) -> DbError {
    match kind {
        0 => DbError::Parse(msg),
        1 => DbError::NotFound(msg),
        2 => DbError::AlreadyExists(msg),
        3 => DbError::Invalid(msg),
        4 => DbError::Eval(msg),
        5 => DbError::LockTimeout(msg),
        6 => DbError::TxnAborted(msg),
        7 => DbError::Unsupported(msg),
        9 => DbError::BudgetExceeded(msg),
        10 => DbError::Timeout(msg),
        11 => DbError::Overloaded(msg),
        // unknown kinds (newer peers) degrade to a connection error
        _ => DbError::Connection(msg),
    }
}

/// Encodes a request payload (without the length prefix).
pub fn encode_request(req: &Request) -> Bytes {
    let mut buf = BytesMut::new();
    match req {
        Request::Execute(sql) => {
            buf.put_u8(1);
            put_str(&mut buf, sql);
        }
        Request::Batch(stmts) => {
            buf.put_u8(2);
            buf.put_u32(stmts.len() as u32);
            for s in stmts {
                put_str(&mut buf, s);
            }
        }
        Request::Begin => buf.put_u8(3),
        Request::Commit => buf.put_u8(4),
        Request::Rollback => buf.put_u8(5),
        Request::SetIsolation(level) => {
            buf.put_u8(6);
            buf.put_u8(match level {
                IsolationLevel::ReadCommitted => 0,
                IsolationLevel::Serializable => 1,
            });
        }
        Request::Profile => buf.put_u8(7),
        Request::Close => buf.put_u8(8),
        Request::SetStatementTimeout(ms) => {
            buf.put_u8(9);
            buf.put_u64(*ms);
        }
        Request::Prepare(sql) => {
            buf.put_u8(10);
            put_str(&mut buf, sql);
        }
        Request::ExecutePrepared { stmt_id, params } => {
            buf.put_u8(11);
            buf.put_u64(*stmt_id);
            buf.put_u32(params.len() as u32);
            for p in params {
                put_value(&mut buf, p);
            }
        }
        Request::ClosePrepared(stmt_id) => {
            buf.put_u8(12);
            buf.put_u64(*stmt_id);
        }
        Request::Pipeline(steps) => {
            buf.put_u8(13);
            buf.put_u32(steps.len() as u32);
            for step in steps {
                match step {
                    PipelineStep::Execute(sql) => {
                        buf.put_u8(0);
                        put_str(&mut buf, sql);
                    }
                    PipelineStep::Prepared { stmt_id, params } => {
                        buf.put_u8(1);
                        buf.put_u64(*stmt_id);
                        buf.put_u32(params.len() as u32);
                        for p in params {
                            put_value(&mut buf, p);
                        }
                    }
                }
            }
        }
        Request::Metrics(cmd) => {
            buf.put_u8(14);
            match cmd {
                MetricsCmd::Prometheus => buf.put_u8(0),
                MetricsCmd::DigestTop(k) => {
                    buf.put_u8(1);
                    buf.put_u32(*k);
                }
                MetricsCmd::DigestTopMisses(k) => {
                    buf.put_u8(2);
                    buf.put_u32(*k);
                }
                MetricsCmd::SlowLog => buf.put_u8(3),
                MetricsCmd::SetProfiling(on) => {
                    buf.put_u8(4);
                    buf.put_u8(u8::from(*on));
                }
                MetricsCmd::SetSlowLog {
                    threshold_us,
                    sample_every,
                } => {
                    buf.put_u8(5);
                    buf.put_u64(*threshold_us);
                    buf.put_u64(*sample_every);
                }
                MetricsCmd::ResetStats => buf.put_u8(6),
            }
        }
    }
    buf.freeze()
}

/// Encodes a response payload (without the length prefix).
pub fn encode_response(resp: &Response) -> Bytes {
    let mut buf = BytesMut::new();
    encode_response_into(resp, &mut buf);
    buf.freeze()
}

fn encode_response_into(resp: &Response, buf: &mut BytesMut) {
    match resp {
        Response::Error(e) => {
            buf.put_u8(0);
            let (kind, msg) = error_parts(e);
            buf.put_u8(kind);
            put_str(buf, &msg);
        }
        Response::Rows(r) => {
            buf.put_u8(1);
            put_result(buf, r);
        }
        Response::Affected(n) => {
            buf.put_u8(2);
            buf.put_u64(*n);
        }
        Response::Done => buf.put_u8(3),
        Response::BatchResults(items) => {
            buf.put_u8(4);
            buf.put_u32(items.len() as u32);
            for item in items {
                encode_response_into(item, buf);
            }
        }
        Response::ProfileIs(p) => {
            buf.put_u8(5);
            buf.put_u8(profile_tag(*p));
        }
        Response::Prepared {
            stmt_id,
            param_count,
        } => {
            buf.put_u8(6);
            buf.put_u64(*stmt_id);
            buf.put_u32(*param_count);
        }
        Response::PipelineResults { outputs, error } => {
            buf.put_u8(7);
            buf.put_u32(outputs.len() as u32);
            for o in outputs {
                encode_response_into(o, buf);
            }
            match error {
                Some(e) => {
                    buf.put_u8(1);
                    let (kind, msg) = error_parts(e);
                    buf.put_u8(kind);
                    put_str(buf, &msg);
                }
                None => buf.put_u8(0),
            }
        }
    }
}

// ---------------------------------------------------------------------
// decoding
// ---------------------------------------------------------------------

fn need(buf: &mut Bytes, n: usize, what: &str) -> DbResult<()> {
    if buf.remaining() < n {
        Err(DbError::Connection(format!(
            "truncated frame reading {what}"
        )))
    } else {
        Ok(())
    }
}

fn get_str(buf: &mut Bytes) -> DbResult<String> {
    need(buf, 4, "string length")?;
    let len = buf.get_u32() as usize;
    need(buf, len, "string body")?;
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec())
        .map_err(|_| DbError::Connection("invalid UTF-8 in frame".into()))
}

fn get_value(buf: &mut Bytes) -> DbResult<Value> {
    need(buf, 1, "value tag")?;
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => {
            need(buf, 8, "int")?;
            Ok(Value::Int(buf.get_i64()))
        }
        2 => {
            need(buf, 8, "float")?;
            Ok(Value::Float(buf.get_f64()))
        }
        3 => Ok(Value::Text(get_str(buf)?)),
        4 => {
            need(buf, 1, "bool")?;
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        t => Err(DbError::Connection(format!("unknown value tag {t}"))),
    }
}

fn get_result(buf: &mut Bytes) -> DbResult<QueryResult> {
    need(buf, 4, "column count")?;
    let ncols = buf.get_u32() as usize;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        columns.push(get_str(buf)?);
    }
    need(buf, 4, "row count")?;
    let nrows = buf.get_u32() as usize;
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(get_value(buf)?);
        }
        rows.push(row);
    }
    Ok(QueryResult { columns, rows })
}

/// Decodes a request payload.
///
/// # Errors
/// Returns [`DbError::Connection`] on malformed frames.
pub fn decode_request(mut buf: Bytes) -> DbResult<Request> {
    need(&mut buf, 1, "request tag")?;
    match buf.get_u8() {
        1 => Ok(Request::Execute(get_str(&mut buf)?)),
        2 => {
            need(&mut buf, 4, "batch count")?;
            let n = buf.get_u32() as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(get_str(&mut buf)?);
            }
            Ok(Request::Batch(v))
        }
        3 => Ok(Request::Begin),
        4 => Ok(Request::Commit),
        5 => Ok(Request::Rollback),
        6 => {
            need(&mut buf, 1, "isolation")?;
            Ok(Request::SetIsolation(match buf.get_u8() {
                0 => IsolationLevel::ReadCommitted,
                _ => IsolationLevel::Serializable,
            }))
        }
        7 => Ok(Request::Profile),
        8 => Ok(Request::Close),
        9 => {
            need(&mut buf, 8, "statement timeout")?;
            Ok(Request::SetStatementTimeout(buf.get_u64()))
        }
        10 => Ok(Request::Prepare(get_str(&mut buf)?)),
        11 => {
            need(&mut buf, 12, "prepared exec header")?;
            let stmt_id = buf.get_u64();
            let n = buf.get_u32() as usize;
            let mut params = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                params.push(get_value(&mut buf)?);
            }
            Ok(Request::ExecutePrepared { stmt_id, params })
        }
        12 => {
            need(&mut buf, 8, "stmt id")?;
            Ok(Request::ClosePrepared(buf.get_u64()))
        }
        13 => {
            need(&mut buf, 4, "pipeline count")?;
            let n = buf.get_u32() as usize;
            let mut steps = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                need(&mut buf, 1, "pipeline step tag")?;
                match buf.get_u8() {
                    0 => steps.push(PipelineStep::Execute(get_str(&mut buf)?)),
                    1 => {
                        need(&mut buf, 12, "prepared step header")?;
                        let stmt_id = buf.get_u64();
                        let np = buf.get_u32() as usize;
                        let mut params = Vec::with_capacity(np.min(1024));
                        for _ in 0..np {
                            params.push(get_value(&mut buf)?);
                        }
                        steps.push(PipelineStep::Prepared { stmt_id, params });
                    }
                    t => {
                        return Err(DbError::Connection(format!(
                            "unknown pipeline step tag {t}"
                        )))
                    }
                }
            }
            Ok(Request::Pipeline(steps))
        }
        14 => {
            need(&mut buf, 1, "metrics command tag")?;
            let cmd = match buf.get_u8() {
                0 => MetricsCmd::Prometheus,
                1 => {
                    need(&mut buf, 4, "digest top k")?;
                    MetricsCmd::DigestTop(buf.get_u32())
                }
                2 => {
                    need(&mut buf, 4, "digest top misses k")?;
                    MetricsCmd::DigestTopMisses(buf.get_u32())
                }
                3 => MetricsCmd::SlowLog,
                4 => {
                    need(&mut buf, 1, "profiling flag")?;
                    MetricsCmd::SetProfiling(buf.get_u8() != 0)
                }
                5 => {
                    need(&mut buf, 16, "slow log config")?;
                    MetricsCmd::SetSlowLog {
                        threshold_us: buf.get_u64(),
                        sample_every: buf.get_u64(),
                    }
                }
                6 => MetricsCmd::ResetStats,
                t => {
                    return Err(DbError::Connection(format!(
                        "unknown metrics command tag {t}"
                    )))
                }
            };
            Ok(Request::Metrics(cmd))
        }
        t => Err(DbError::Connection(format!("unknown request tag {t}"))),
    }
}

/// Decodes a response payload.
///
/// # Errors
/// Returns [`DbError::Connection`] on malformed frames.
pub fn decode_response(mut buf: Bytes) -> DbResult<Response> {
    decode_response_inner(&mut buf)
}

fn decode_response_inner(buf: &mut Bytes) -> DbResult<Response> {
    need(buf, 1, "response tag")?;
    match buf.get_u8() {
        0 => {
            need(buf, 1, "error kind")?;
            let kind = buf.get_u8();
            let msg = get_str(buf)?;
            Ok(Response::Error(error_from_parts(kind, msg)))
        }
        1 => Ok(Response::Rows(get_result(buf)?)),
        2 => {
            need(buf, 8, "affected")?;
            Ok(Response::Affected(buf.get_u64()))
        }
        3 => Ok(Response::Done),
        4 => {
            need(buf, 4, "batch count")?;
            let n = buf.get_u32() as usize;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_response_inner(buf)?);
            }
            Ok(Response::BatchResults(items))
        }
        5 => {
            need(buf, 1, "profile")?;
            Ok(Response::ProfileIs(match buf.get_u8() {
                0 => EngineProfile::Postgres,
                1 => EngineProfile::MySql,
                _ => EngineProfile::MariaDb,
            }))
        }
        6 => {
            need(buf, 12, "prepared")?;
            Ok(Response::Prepared {
                stmt_id: buf.get_u64(),
                param_count: buf.get_u32(),
            })
        }
        7 => {
            need(buf, 4, "pipeline output count")?;
            let n = buf.get_u32() as usize;
            let mut outputs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                outputs.push(decode_response_inner(buf)?);
            }
            need(buf, 1, "pipeline error flag")?;
            let error = if buf.get_u8() != 0 {
                need(buf, 1, "pipeline error kind")?;
                let kind = buf.get_u8();
                let msg = get_str(buf)?;
                Some(error_from_parts(kind, msg))
            } else {
                None
            };
            Ok(Response::PipelineResults { outputs, error })
        }
        t => Err(DbError::Connection(format!("unknown response tag {t}"))),
    }
}

// ---------------------------------------------------------------------
// framing over std::io
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
/// Returns [`DbError::Connection`] on I/O failure.
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> DbResult<()> {
    let len = payload.len() as u32;
    if len > MAX_FRAME {
        return Err(DbError::Connection(format!("frame too large: {len}")));
    }
    w.write_all(&len.to_be_bytes())
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|e| DbError::Connection(format!("write failed: {e}")))
}

/// Reads one length-prefixed frame.
///
/// # Errors
/// Returns [`DbError::Connection`] on I/O failure, oversized frames, or a
/// cleanly closed peer.
pub fn read_frame(r: &mut impl std::io::Read) -> DbResult<Bytes> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)
        .map_err(|e| DbError::Connection(format!("read failed: {e}")))?;
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(DbError::Connection(format!("frame too large: {len}")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| DbError::Connection(format!("read failed: {e}")))?;
    Ok(Bytes::from(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let enc = encode_request(&req);
        assert_eq!(decode_request(enc).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let enc = encode_response(&resp);
        assert_eq!(decode_response(enc).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Execute("SELECT 1".into()));
        roundtrip_req(Request::Batch(vec!["a".into(), "b".into()]));
        roundtrip_req(Request::Begin);
        roundtrip_req(Request::Commit);
        roundtrip_req(Request::Rollback);
        roundtrip_req(Request::SetIsolation(IsolationLevel::Serializable));
        roundtrip_req(Request::Profile);
        roundtrip_req(Request::Close);
        roundtrip_req(Request::SetStatementTimeout(1500));
        roundtrip_req(Request::SetStatementTimeout(0));
        roundtrip_req(Request::Prepare("SELECT a FROM t WHERE a > ?".into()));
        roundtrip_req(Request::ExecutePrepared {
            stmt_id: 7,
            params: vec![Value::Int(1), Value::Null, Value::Text("x".into())],
        });
        roundtrip_req(Request::ExecutePrepared {
            stmt_id: 0,
            params: vec![],
        });
        roundtrip_req(Request::ClosePrepared(7));
        roundtrip_req(Request::Pipeline(vec![
            PipelineStep::Execute("DELETE FROM tmp".into()),
            PipelineStep::Prepared {
                stmt_id: 3,
                params: vec![Value::Float(0.5)],
            },
            PipelineStep::Prepared {
                stmt_id: 4,
                params: vec![],
            },
        ]));
        roundtrip_req(Request::Metrics(MetricsCmd::Prometheus));
        roundtrip_req(Request::Metrics(MetricsCmd::DigestTop(10)));
        roundtrip_req(Request::Metrics(MetricsCmd::DigestTopMisses(5)));
        roundtrip_req(Request::Metrics(MetricsCmd::SlowLog));
        roundtrip_req(Request::Metrics(MetricsCmd::SetProfiling(true)));
        roundtrip_req(Request::Metrics(MetricsCmd::SetProfiling(false)));
        roundtrip_req(Request::Metrics(MetricsCmd::SetSlowLog {
            threshold_us: 2500,
            sample_every: 4,
        }));
        roundtrip_req(Request::Metrics(MetricsCmd::ResetStats));
    }

    #[test]
    fn truncated_metrics_frames_rejected() {
        let enc = encode_request(&Request::Metrics(MetricsCmd::SetSlowLog {
            threshold_us: 1,
            sample_every: 2,
        }));
        for cut in 0..enc.len() {
            assert!(decode_request(enc.slice(0..cut)).is_err(), "cut at {cut}");
        }
        // unknown metrics sub-command is a clean decode error
        let mut buf = bytes::BytesMut::new();
        buf.put_u8(14);
        buf.put_u8(250);
        assert!(decode_request(buf.freeze()).is_err());
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(Response::Done);
        roundtrip_resp(Response::Affected(42));
        roundtrip_resp(Response::Error(DbError::LockTimeout("t".into())));
        roundtrip_resp(Response::ProfileIs(EngineProfile::MariaDb));
        roundtrip_resp(Response::Rows(QueryResult {
            columns: vec!["a".into(), "b".into()],
            rows: vec![
                vec![Value::Int(1), Value::Null],
                vec![Value::Float(f64::INFINITY), Value::Text("it's".into())],
                vec![Value::Bool(true), Value::Float(-0.0)],
            ],
        }));
        roundtrip_resp(Response::BatchResults(vec![
            Response::Affected(1),
            Response::Done,
        ]));
        roundtrip_resp(Response::Prepared {
            stmt_id: 42,
            param_count: 3,
        });
        roundtrip_resp(Response::PipelineResults {
            outputs: vec![Response::Affected(2), Response::Done],
            error: None,
        });
        roundtrip_resp(Response::PipelineResults {
            outputs: vec![Response::Affected(2)],
            error: Some(DbError::LockTimeout("t".into())),
        });
        roundtrip_resp(Response::PipelineResults {
            outputs: vec![],
            error: Some(DbError::NotFound("prepared statement 9".into())),
        });
    }

    #[test]
    fn truncated_prepared_frames_rejected() {
        let enc = encode_request(&Request::ExecutePrepared {
            stmt_id: 7,
            params: vec![Value::Int(1)],
        });
        for cut in 0..enc.len() {
            assert!(decode_request(enc.slice(0..cut)).is_err(), "cut at {cut}");
        }
        let enc = encode_response(&Response::PipelineResults {
            outputs: vec![Response::Done],
            error: Some(DbError::Invalid("x".into())),
        });
        for cut in 0..enc.len() {
            assert!(decode_response(enc.slice(0..cut)).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn truncated_frames_rejected() {
        let enc = encode_response(&Response::Affected(42));
        for cut in 0..enc.len() {
            let sliced = enc.slice(0..cut);
            assert!(decode_response(sliced).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn framing_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(&read_frame(&mut r).unwrap()[..], b"hello");
        assert_eq!(read_frame(&mut r).unwrap().len(), 0);
        assert!(read_frame(&mut r).is_err()); // EOF
    }

    #[test]
    fn all_error_kinds_roundtrip() {
        let errors = vec![
            DbError::Parse("a".into()),
            DbError::NotFound("b".into()),
            DbError::AlreadyExists("c".into()),
            DbError::Invalid("d".into()),
            DbError::Eval("e".into()),
            DbError::LockTimeout("f".into()),
            DbError::TxnAborted("g".into()),
            DbError::Unsupported("h".into()),
            DbError::Connection("i".into()),
            DbError::BudgetExceeded("j".into()),
            DbError::Timeout("k".into()),
            DbError::Overloaded("l".into()),
        ];
        for e in errors {
            roundtrip_resp(Response::Error(e));
        }
    }

    #[test]
    fn unknown_error_kind_degrades_to_connection() {
        // an error frame with a future kind decodes, not fails
        let mut buf = bytes::BytesMut::new();
        buf.put_u8(0); // Error tag
        buf.put_u8(200); // unknown kind
        buf.put_u32(2);
        buf.put_slice(b"zz");
        match decode_response(buf.freeze()).unwrap() {
            Response::Error(DbError::Connection(m)) => assert_eq!(m, "zz"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
