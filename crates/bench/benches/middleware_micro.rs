//! Middleware micro-benchmarks: extended-CTE grammar parsing, query
//! analysis, dialect translation, and partition bucketing — SQLoop's own
//! per-statement costs ("SQLoop implementation is lightweight", paper §I).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sqldb::Value;
use sqloop::parallel_sql::stable_hash;
use sqloop::{analyze, parse, AnalysisOutcome, SqloopQuery};

fn pagerank_sql() -> String {
    workloads::queries::pagerank(100)
}

fn bench_grammar(c: &mut Criterion) {
    let sql = pagerank_sql();
    c.bench_function("grammar/parse_iterative_cte", |b| {
        b.iter(|| parse(black_box(&sql)).unwrap())
    });
    let fib = "WITH RECURSIVE f(n, pn) AS (VALUES (0,1) UNION ALL \
               SELECT n + pn, n FROM f WHERE n < 1000) SELECT SUM(n) FROM f";
    c.bench_function("grammar/parse_recursive_cte", |b| {
        b.iter(|| parse(black_box(fib)).unwrap())
    });
    c.bench_function("grammar/plain_passthrough_detect", |b| {
        b.iter(|| parse(black_box("SELECT * FROM edges WHERE src = 5")).unwrap())
    });
}

fn bench_analysis(c: &mut Criterion) {
    let cte = match parse(&pagerank_sql()).unwrap() {
        SqloopQuery::Iterative(c) => c,
        _ => unreachable!(),
    };
    let cols = vec!["node".to_string(), "rank".to_string(), "delta".to_string()];
    c.bench_function("analysis/pagerank_plan", |b| {
        b.iter(|| match analyze(black_box(&cte), &cols).unwrap() {
            AnalysisOutcome::Parallelizable(p) => p,
            _ => unreachable!(),
        })
    });
}

fn bench_translation(c: &mut Criterion) {
    let gather = "UPDATE pr__pt3 SET delta = delta + inc.val FROM \
                  (SELECT id, SUM(val) AS val FROM \
                   (SELECT id, val FROM m1 UNION ALL SELECT id, val FROM m2) AS msgs \
                   GROUP BY id) AS inc WHERE pr__pt3.node = inc.id";
    for profile in sqldb::EngineProfile::ALL {
        c.bench_function(&format!("translate/gather_for_{profile}"), |b| {
            b.iter(|| sqloop::translate::translate_sql(black_box(gather), profile).unwrap())
        });
    }
}

fn bench_bucketing(c: &mut Criterion) {
    let values: Vec<Value> = (0..10_000).map(Value::Int).collect();
    c.bench_function("partition/bucket_10k_int_keys", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in &values {
                acc = acc.wrapping_add(stable_hash(black_box(v)) % 256);
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_grammar,
    bench_analysis,
    bench_translation,
    bench_bucketing
);
criterion_main!(benches);
