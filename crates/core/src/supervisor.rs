//! Worker supervision primitives: lock-free heartbeats and the
//! completion-vs-abandonment handshake (DESIGN.md §16).
//!
//! Each scheduler worker owns one [`HeartbeatSlot`] that it updates with
//! plain atomic stores while it works; the scheduler (running on the
//! master thread) reads the slots every barrier poll tick. Two verdicts
//! come out of those reads:
//!
//! * **dead** — the worker's thread finished while its slot still says
//!   `BUSY` (a panic escaped the task boundary);
//! * **stalled** — the heartbeat has been silent longer than the
//!   configured `stall_timeout`.
//!
//! Either way the scheduler must *abandon* the worker and replay its task
//! on a replacement. The danger is the race where the worker completes in
//! the instant between the verdict and the remediation — replaying a task
//! whose `Done` is about to land would apply the round's non-idempotent
//! final `UPDATE` twice. The slot's state machine makes the decision
//! atomic:
//!
//! ```text
//!             begin_task                    try_complete (worker CAS)
//!   IDLE ────────────────────▶ BUSY ────────────────────▶ DONE_PENDING
//!                                │                             │ finish
//!                                │ try_abandon (master CAS)    ▼
//!                                └───────────▶ ABANDONED     IDLE
//! ```
//!
//! Exactly one of the two compare-and-swaps out of `BUSY` can win. A
//! worker that loses (finds itself `ABANDONED`) discards its result and
//! exits without sending; a supervisor that loses (the worker reached
//! `DONE_PENDING` first) skips remediation because the `Done` is already
//! en route.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

/// Slot state: worker waiting for a task.
pub const STATE_IDLE: u8 = 0;
/// Slot state: worker executing a task.
pub const STATE_BUSY: u8 = 1;
/// Slot state: worker finished the task and is about to send its `Done`.
pub const STATE_DONE_PENDING: u8 = 2;
/// Slot state: the supervisor gave up on this worker; any result it
/// produces must be discarded.
pub const STATE_ABANDONED: u8 = 3;

/// One worker's lock-free heartbeat: last-progress timestamp plus what it
/// is working on (task id, partition, round, statement offset). Written
/// by the worker, read by the scheduler; all accesses are relaxed — the
/// `Done` channel provides the ordering that matters, and a heartbeat
/// read that is a tick stale only delays a verdict by one poll.
#[derive(Debug)]
pub struct HeartbeatSlot {
    state: AtomicU8,
    /// Microseconds since the pool's epoch at the last sign of progress.
    beat_us: AtomicU64,
    task_id: AtomicU64,
    partition: AtomicU64,
    round: AtomicU64,
    /// Statement offset the in-flight batch started at.
    stmt: AtomicU64,
}

impl HeartbeatSlot {
    /// A fresh slot in `IDLE` with its heartbeat at `now_us`.
    pub fn new(now_us: u64) -> HeartbeatSlot {
        HeartbeatSlot {
            state: AtomicU8::new(STATE_IDLE),
            beat_us: AtomicU64::new(now_us),
            task_id: AtomicU64::new(0),
            partition: AtomicU64::new(0),
            round: AtomicU64::new(0),
            stmt: AtomicU64::new(0),
        }
    }

    /// Worker: publish the task it just claimed and enter `BUSY`.
    pub fn begin_task(&self, now_us: u64, task_id: u64, partition: usize, round: u64, stmt: usize) {
        self.task_id.store(task_id, Ordering::Relaxed);
        self.partition.store(partition as u64, Ordering::Relaxed);
        self.round.store(round, Ordering::Relaxed);
        self.stmt.store(stmt as u64, Ordering::Relaxed);
        self.beat_us.store(now_us, Ordering::Relaxed);
        self.state.store(STATE_BUSY, Ordering::Relaxed);
    }

    /// Worker: record progress (connect finished, retry about to sleep, …).
    pub fn beat(&self, now_us: u64) {
        self.beat_us.store(now_us, Ordering::Relaxed);
    }

    /// Worker: try to move `BUSY → DONE_PENDING` before sending the
    /// `Done`. Returns `false` when the supervisor abandoned this worker
    /// first — the result must be discarded and the worker should exit.
    pub fn try_complete(&self) -> bool {
        self.state
            .compare_exchange(
                STATE_BUSY,
                STATE_DONE_PENDING,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Worker: back to `IDLE` after the `Done` was sent.
    pub fn finish(&self, now_us: u64) {
        self.beat_us.store(now_us, Ordering::Relaxed);
        self.state.store(STATE_IDLE, Ordering::Relaxed);
    }

    /// Supervisor: try to move `BUSY → ABANDONED`. Returns `false` when
    /// the worker completed first (its `Done` is en route) — remediation
    /// must be skipped.
    pub fn try_abandon(&self) -> bool {
        self.state
            .compare_exchange(
                STATE_BUSY,
                STATE_ABANDONED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Current state (one of the `STATE_*` constants).
    pub fn state(&self) -> u8 {
        self.state.load(Ordering::Relaxed)
    }

    /// Worker: has the supervisor given up on us?
    pub fn is_abandoned(&self) -> bool {
        self.state() == STATE_ABANDONED
    }

    /// Last heartbeat, in microseconds since the pool's epoch.
    pub fn beat_us(&self) -> u64 {
        self.beat_us.load(Ordering::Relaxed)
    }

    /// Task id of the (last) task this slot worked on.
    pub fn task_id(&self) -> u64 {
        self.task_id.load(Ordering::Relaxed)
    }

    /// Partition of the (last) task this slot worked on.
    pub fn partition(&self) -> usize {
        self.partition.load(Ordering::Relaxed) as usize
    }

    /// Round of the (last) task this slot worked on.
    pub fn round(&self) -> u64 {
        self.round.load(Ordering::Relaxed)
    }

    /// Statement offset the in-flight batch started at.
    pub fn stmt(&self) -> usize {
        self.stmt.load(Ordering::Relaxed) as usize
    }
}

/// Microseconds elapsed since `epoch` — the clock heartbeats are stamped
/// with. Saturates instead of panicking on pathological clocks.
pub fn now_us(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Handles to the `sqloop.supervisor.*` metrics, resolved once per run so
/// the per-tick hot path is a single atomic increment.
#[derive(Debug, Clone)]
pub struct SupervisorMetrics {
    /// `sqloop.supervisor.stalls_detected` — stall verdicts fired.
    pub stalls_detected: std::sync::Arc<obs::Counter>,
    /// `sqloop.supervisor.worker_replacements` — replacement workers spawned.
    pub worker_replacements: std::sync::Arc<obs::Counter>,
    /// `sqloop.supervisor.panics_caught` — worker panics absorbed (caught
    /// at the task boundary, discovered at join, or dead-thread verdicts).
    pub panics_caught: std::sync::Arc<obs::Counter>,
    /// `sqloop.supervisor.zombie_results_dropped` — results from abandoned
    /// workers that were discarded instead of applied.
    pub zombie_results_dropped: std::sync::Arc<obs::Counter>,
}

impl SupervisorMetrics {
    /// Resolves the counters from the global metrics registry.
    pub fn new() -> SupervisorMetrics {
        let m = obs::global();
        SupervisorMetrics {
            stalls_detected: m.counter("sqloop.supervisor.stalls_detected"),
            worker_replacements: m.counter("sqloop.supervisor.worker_replacements"),
            panics_caught: m.counter("sqloop.supervisor.panics_caught"),
            zombie_results_dropped: m.counter("sqloop.supervisor.zombie_results_dropped"),
        }
    }
}

impl Default for SupervisorMetrics {
    fn default() -> Self {
        SupervisorMetrics::new()
    }
}

/// Renders a `catch_unwind` payload as text: `&str` and `String` payloads
/// (everything `panic!` produces in practice) come through verbatim.
pub fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn completion_beats_abandonment() {
        let slot = HeartbeatSlot::new(0);
        slot.begin_task(10, 7, 3, 2, 1);
        assert_eq!(slot.state(), STATE_BUSY);
        assert_eq!(slot.task_id(), 7);
        assert_eq!(slot.partition(), 3);
        assert_eq!(slot.round(), 2);
        assert_eq!(slot.stmt(), 1);
        // worker wins the race…
        assert!(slot.try_complete());
        // …so the supervisor must not remediate
        assert!(!slot.try_abandon());
        slot.finish(20);
        assert_eq!(slot.state(), STATE_IDLE);
        assert_eq!(slot.beat_us(), 20);
    }

    #[test]
    fn abandonment_beats_completion() {
        let slot = HeartbeatSlot::new(0);
        slot.begin_task(10, 7, 3, 2, 0);
        // supervisor wins the race…
        assert!(slot.try_abandon());
        assert!(slot.is_abandoned());
        // …so the worker must discard its result
        assert!(!slot.try_complete());
        // and the verdict is sticky
        assert!(!slot.try_abandon());
    }

    #[test]
    fn exactly_one_side_wins_under_contention() {
        for _ in 0..200 {
            let slot = Arc::new(HeartbeatSlot::new(0));
            slot.begin_task(1, 1, 0, 0, 0);
            let a = Arc::clone(&slot);
            let b = Arc::clone(&slot);
            let t1 = std::thread::spawn(move || a.try_complete());
            let t2 = std::thread::spawn(move || b.try_abandon());
            let completed = t1.join().unwrap();
            let abandoned = t2.join().unwrap();
            assert!(
                completed ^ abandoned,
                "exactly one CAS out of BUSY may succeed (completed={completed}, abandoned={abandoned})"
            );
        }
    }

    #[test]
    fn heartbeat_is_visible_to_the_reader() {
        let slot = HeartbeatSlot::new(5);
        assert_eq!(slot.beat_us(), 5);
        slot.beat(99);
        assert_eq!(slot.beat_us(), 99);
    }

    #[test]
    fn panic_payloads_render() {
        let p = std::panic::catch_unwind(|| panic!("boom {}", 42)).unwrap_err();
        assert_eq!(panic_detail(p.as_ref()), "boom 42");
        let p = std::panic::catch_unwind(|| panic!("plain")).unwrap_err();
        assert_eq!(panic_detail(p.as_ref()), "plain");
        let p = std::panic::catch_unwind(|| std::panic::panic_any(17u32)).unwrap_err();
        assert_eq!(panic_detail(p.as_ref()), "non-string panic payload");
    }

    #[test]
    fn now_us_is_monotonicish() {
        let epoch = Instant::now();
        let a = now_us(epoch);
        let b = now_us(epoch);
        assert!(b >= a);
    }
}
