//! Directed-graph container used by the workloads and benches.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Node identifier (contiguous `0..node_count` for generated graphs).
pub type NodeId = u64;

/// A directed graph stored as an edge list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    edges: Vec<(NodeId, NodeId)>,
    nodes: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph from an edge list; the node set is the union of all
    /// endpoints. Duplicate edges are kept (they model multi-links, as SNAP
    /// edge lists do after deduplication upstream — dedupe first if needed).
    pub fn from_edges(edges: Vec<(NodeId, NodeId)>) -> Graph {
        let mut nodes: Vec<NodeId> = edges
            .iter()
            .flat_map(|&(s, d)| [s, d])
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        nodes.sort_unstable();
        Graph { edges, nodes }
    }

    /// The edge list.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// All node ids, sorted.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Removes duplicate edges and self-loops, preserving first occurrence.
    pub fn simplified(&self) -> Graph {
        let mut seen = HashSet::with_capacity(self.edges.len());
        let edges: Vec<_> = self
            .edges
            .iter()
            .copied()
            .filter(|&(s, d)| s != d && seen.insert((s, d)))
            .collect();
        Graph::from_edges(edges)
    }

    /// Out-degree per node (absent key = 0).
    pub fn out_degrees(&self) -> HashMap<NodeId, usize> {
        let mut d = HashMap::with_capacity(self.nodes.len());
        for &(s, _) in &self.edges {
            *d.entry(s).or_insert(0) += 1;
        }
        d
    }

    /// Edges with the paper's weights: `weight(src→dst) = 1 / outdegree(src)`
    /// (§III-C).
    pub fn weighted_edges(&self) -> Vec<(NodeId, NodeId, f64)> {
        let deg = self.out_degrees();
        self.edges
            .iter()
            .map(|&(s, d)| (s, d, 1.0 / deg[&s] as f64))
            .collect()
    }

    /// Forward adjacency lists.
    pub fn adjacency(&self) -> HashMap<NodeId, Vec<NodeId>> {
        let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::with_capacity(self.nodes.len());
        for &(s, d) in &self.edges {
            adj.entry(s).or_default().push(d);
        }
        adj
    }

    /// Unweighted BFS hop counts from `source` (unreachable nodes absent).
    pub fn bfs_hops(&self, source: NodeId) -> HashMap<NodeId, u64> {
        let adj = self.adjacency();
        let mut dist = HashMap::new();
        if !self.nodes.contains(&source) {
            return dist;
        }
        dist.insert(source, 0u64);
        let mut queue = VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            let du = dist[&u];
            if let Some(next) = adj.get(&u) {
                for &v in next {
                    if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                        e.insert(du + 1);
                        queue.push_back(v);
                    }
                }
            }
        }
        dist
    }

    /// Finds a node roughly `hops` BFS steps from `source` (the farthest
    /// reachable one if the graph is shallower). Returns `(node, actual_hops)`.
    pub fn node_at_distance(&self, source: NodeId, hops: u64) -> Option<(NodeId, u64)> {
        let dist = self.bfs_hops(source);
        dist.iter()
            .filter(|&(_, &d)| d <= hops)
            .max_by_key(|&(node, &d)| (d, std::cmp::Reverse(*node)))
            .map(|(&n, &d)| (n, d))
    }

    /// Serializes as `src,dst` CSV lines (no header).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.edges.len() * 8);
        for &(s, d) in &self.edges {
            out.push_str(&format!("{s},{d}\n"));
        }
        out
    }

    /// Parses `src,dst` CSV (ignores blank lines and `#` comments, accepts
    /// tab or comma separators — SNAP files use tabs).
    ///
    /// # Errors
    /// Returns a message naming the first malformed line.
    pub fn from_csv(text: &str) -> Result<Graph, String> {
        let mut edges = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split([',', '\t', ' ']);
            let parse = |p: Option<&str>| -> Result<NodeId, String> {
                p.ok_or_else(|| format!("line {}: missing field", i + 1))?
                    .trim()
                    .parse::<NodeId>()
                    .map_err(|_| format!("line {}: bad node id", i + 1))
            };
            let s = parse(parts.next())?;
            let d = parse(parts.next())?;
            edges.push((s, d));
        }
        Ok(Graph::from_edges(edges))
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph({} nodes, {} edges)",
            self.node_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        Graph::from_edges(vec![(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn node_and_edge_counts() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.nodes(), &[0, 1, 2, 3]);
    }

    #[test]
    fn weights_are_one_over_outdegree() {
        let g = diamond();
        let w = g.weighted_edges();
        for (s, _, weight) in w {
            if s == 0 {
                assert_eq!(weight, 0.5);
            } else {
                assert_eq!(weight, 1.0);
            }
        }
    }

    #[test]
    fn bfs_hops_diamond() {
        let g = diamond();
        let d = g.bfs_hops(0);
        assert_eq!(d[&0], 0);
        assert_eq!(d[&1], 1);
        assert_eq!(d[&3], 2);
        // from a leaf nothing else is reachable
        let d = g.bfs_hops(3);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn node_at_distance_picks_farthest_within_budget() {
        let g = Graph::from_edges(vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(g.node_at_distance(0, 2), Some((2, 2)));
        assert_eq!(g.node_at_distance(0, 100), Some((4, 4)));
    }

    #[test]
    fn csv_roundtrip() {
        let g = diamond();
        let csv = g.to_csv();
        let g2 = Graph::from_csv(&csv).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn csv_accepts_snap_style_comments_and_tabs() {
        let g = Graph::from_csv("# comment\n0\t1\n1\t2\n").unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(Graph::from_csv("0,x").is_err());
    }

    #[test]
    fn simplified_removes_loops_and_dupes() {
        let g = Graph::from_edges(vec![(0, 1), (0, 1), (1, 1), (1, 2)]);
        let s = g.simplified();
        assert_eq!(s.edge_count(), 2);
    }
}
