//! Columnar batches and compiled expression kernels — the vectorized
//! executor's data plane.
//!
//! The row executor walks a [`BoundExpr`] tree once per row, paying an enum
//! match and a `Value` clone per node per row (the interpretation overhead
//! Neumann's compilation paper targets). The vectorized executor instead
//! compiles each bound expression **once per statement** into a [`Kernel`]
//! and evaluates it over [`ColumnBatch`]es: typed column vectors (`Vec<i64>`
//! / `Vec<f64>` / …) with a validity bitmap, so the hot loops are plain
//! slices of machine types.
//!
//! # Semantics contract
//!
//! The batch path must be observationally identical to the row path —
//! results, row order, *and* errors. Three rules deliver that:
//!
//! 1. Kernels replicate `Value` semantics exactly: comparisons use
//!    `f64::total_cmp` (NaN-aware, `-0.0 < 0.0`), integer arithmetic stays
//!    checked, NULL propagates through the validity bitmap.
//! 2. `AND`/`OR` are vectorized eagerly only when the right operand is
//!    provably infallible; otherwise the whole node falls back to row-wise
//!    evaluation so short-circuiting still suppresses right-side errors.
//! 3. If a kernel errors anywhere in a batch, the driver re-evaluates that
//!    batch row-by-row with the original [`BoundExpr`] — rows are stored in
//!    order, so the rerun surfaces exactly the row path's first error (or
//!    succeeds, for errors the row path would have skipped).

use crate::ast::{BinaryOp, UnaryOp};
use crate::bind::BoundExpr;
use crate::error::{DbError, DbResult};
use crate::value::{Row, Value};
use std::cmp::Ordering;

/// Typed payload of one column in a batch. Lanes whose validity bit is
/// clear hold an arbitrary placeholder and must never be read as data.
#[derive(Debug, Clone, PartialEq)]
pub enum ColData {
    /// All non-null lanes are `Value::Int`.
    Int(Vec<i64>),
    /// All non-null lanes are `Value::Float`.
    Float(Vec<f64>),
    /// All non-null lanes are `Value::Bool`.
    Bool(Vec<bool>),
    /// Mixed types, text, or anything the typed layouts cannot hold;
    /// lanes carry full `Value`s (`Value::Null` where validity is clear).
    Mixed(Vec<Value>),
}

/// One column vector plus its validity bitmap (`true` = non-null).
#[derive(Debug, Clone, PartialEq)]
pub struct Col {
    /// Typed lane data.
    pub data: ColData,
    /// Per-lane non-null flags.
    pub valid: Vec<bool>,
}

impl Col {
    /// A column of `len` NULLs.
    pub fn nulls(len: usize) -> Col {
        Col {
            data: ColData::Mixed(vec![Value::Null; len]),
            valid: vec![false; len],
        }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.valid.len()
    }

    /// True when the column has no lanes.
    pub fn is_empty(&self) -> bool {
        self.valid.is_empty()
    }

    /// Reconstructs the `Value` at `lane`.
    pub fn value_at(&self, lane: usize) -> Value {
        if !self.valid[lane] {
            return Value::Null;
        }
        match &self.data {
            ColData::Int(v) => Value::Int(v[lane]),
            ColData::Float(v) => Value::Float(v[lane]),
            ColData::Bool(v) => Value::Bool(v[lane]),
            ColData::Mixed(v) => v[lane].clone(),
        }
    }

    /// Builds a typed column from owned values (single pass; falls back to
    /// the `Mixed` layout as soon as two non-null lanes disagree on type).
    pub fn from_values(values: Vec<Value>) -> Col {
        #[derive(Clone, Copy, PartialEq)]
        enum Tag {
            Unseen,
            Int,
            Float,
            Bool,
            Mixed,
        }
        let mut tag = Tag::Unseen;
        for v in &values {
            let t = match v {
                Value::Null => continue,
                Value::Int(_) => Tag::Int,
                Value::Float(_) => Tag::Float,
                Value::Bool(_) => Tag::Bool,
                Value::Text(_) => Tag::Mixed,
            };
            if tag == Tag::Unseen {
                tag = t;
            } else if tag != t {
                tag = Tag::Mixed;
            }
            if tag == Tag::Mixed {
                break;
            }
        }
        let valid: Vec<bool> = values.iter().map(|v| !v.is_null()).collect();
        let data = match tag {
            Tag::Int => ColData::Int(
                values
                    .iter()
                    .map(|v| if let Value::Int(i) = v { *i } else { 0 })
                    .collect(),
            ),
            Tag::Float => ColData::Float(
                values
                    .iter()
                    .map(|v| if let Value::Float(f) = v { *f } else { 0.0 })
                    .collect(),
            ),
            Tag::Bool => ColData::Bool(
                values
                    .iter()
                    .map(|v| matches!(v, Value::Bool(true)))
                    .collect(),
            ),
            Tag::Unseen | Tag::Mixed => ColData::Mixed(values),
        };
        Col { data, valid }
    }

    /// Keeps only the lanes whose `keep` flag is set.
    pub fn compact(&self, keep: &[bool]) -> Col {
        let pick = |i: &usize| keep[*i];
        let idx: Vec<usize> = (0..self.len()).filter(pick).collect();
        let valid = idx.iter().map(|&i| self.valid[i]).collect();
        let data = match &self.data {
            ColData::Int(v) => ColData::Int(idx.iter().map(|&i| v[i]).collect()),
            ColData::Float(v) => ColData::Float(idx.iter().map(|&i| v[i]).collect()),
            ColData::Bool(v) => ColData::Bool(idx.iter().map(|&i| v[i]).collect()),
            ColData::Mixed(v) => ColData::Mixed(idx.iter().map(|&i| v[i].clone()).collect()),
        };
        Col { data, valid }
    }
}

/// A fixed-size batch of rows in columnar layout.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBatch {
    len: usize,
    cols: Vec<Col>,
}

impl ColumnBatch {
    /// Builds a batch from row-major data, consuming the rows.
    pub fn from_rows(rows: Vec<Row>, arity: usize) -> ColumnBatch {
        let len = rows.len();
        let mut columns: Vec<Vec<Value>> = (0..arity).map(|_| Vec::with_capacity(len)).collect();
        for mut row in rows {
            // right-to-left pop moves values without shifting
            for c in (0..arity).rev() {
                let v = if c < row.len() {
                    row.pop().unwrap_or(Value::Null)
                } else {
                    Value::Null
                };
                columns[c].push(v);
            }
        }
        ColumnBatch {
            len,
            cols: columns.into_iter().map(Col::from_values).collect(),
        }
    }

    /// Builds a batch directly from pre-built columns (the batched-scan
    /// entry point). All columns must share `len` lanes.
    pub fn from_cols(cols: Vec<Col>, len: usize) -> ColumnBatch {
        debug_assert!(cols.iter().all(|c| c.len() == len));
        ColumnBatch { len, cols }
    }

    /// Splits row-major data into batches of at most `batch_size` rows.
    pub fn chunk_rows(rows: Vec<Row>, arity: usize, batch_size: usize) -> Vec<ColumnBatch> {
        let batch_size = batch_size.max(1);
        let mut out = Vec::with_capacity(rows.len() / batch_size + 1);
        if rows.is_empty() {
            return out;
        }
        let mut rest = rows;
        loop {
            if rest.len() <= batch_size {
                out.push(ColumnBatch::from_rows(rest, arity));
                return out;
            }
            let tail = rest.split_off(batch_size);
            out.push(ColumnBatch::from_rows(rest, arity));
            rest = tail;
        }
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The `i`-th column.
    pub fn col(&self, i: usize) -> &Col {
        &self.cols[i]
    }

    /// Reconstructs the row at `lane`.
    pub fn row_at(&self, lane: usize) -> Row {
        self.cols.iter().map(|c| c.value_at(lane)).collect()
    }

    /// Materializes all rows, appending to `out`.
    pub fn append_rows_to(&self, out: &mut Vec<Row>) {
        for lane in 0..self.len {
            out.push(self.row_at(lane));
        }
    }

    /// Keeps only the lanes whose `keep` flag is set.
    pub fn compact(&self, keep: &[bool]) -> ColumnBatch {
        let len = keep.iter().filter(|k| **k).count();
        ColumnBatch {
            len,
            cols: self.cols.iter().map(|c| c.compact(keep)).collect(),
        }
    }
}

/// Result of one kernel evaluation over a batch: a fresh column, a borrowed
/// input column (projection of a bare column reference never copies), or a
/// broadcast constant.
#[derive(Debug)]
pub enum EvalOut {
    /// A newly computed column.
    Owned(Col),
    /// Input column `i` of the batch, unchanged.
    Ref(usize),
    /// The same value in every lane.
    Const(Value),
}

impl EvalOut {
    /// The `Value` at `lane`, resolving references against `batch`.
    pub fn value_at(&self, batch: &ColumnBatch, lane: usize) -> Value {
        match self {
            EvalOut::Owned(c) => c.value_at(lane),
            EvalOut::Ref(i) => batch.col(*i).value_at(lane),
            EvalOut::Const(v) => v.clone(),
        }
    }

    fn as_operand<'a>(&'a self, batch: &'a ColumnBatch) -> Operand<'a> {
        match self {
            EvalOut::Owned(c) => Operand::Col(c),
            EvalOut::Ref(i) => Operand::Col(batch.col(*i)),
            EvalOut::Const(v) => Operand::Const(v),
        }
    }

    /// The lanes as a plain `&[i64]` when the output is a fully-valid
    /// `Int` column. The single-key hash aggregate keys directly off this
    /// slice, skipping per-lane `Value` construction; `None` for constants,
    /// other layouts, or any NULL lane.
    pub fn as_int_lanes<'a>(&'a self, batch: &'a ColumnBatch) -> Option<&'a [i64]> {
        let c = match self {
            EvalOut::Owned(c) => c,
            EvalOut::Ref(i) => batch.col(*i),
            EvalOut::Const(_) => return None,
        };
        match &c.data {
            ColData::Int(v) if c.valid.iter().all(|&ok| ok) => Some(v),
            _ => None,
        }
    }

    /// The lanes as a plain `&[f64]` when the output is a fully-valid
    /// `Float` column — same contract as [`EvalOut::as_int_lanes`], used by
    /// the aggregate accumulators to skip per-lane `Value` construction.
    pub fn as_float_lanes<'a>(&'a self, batch: &'a ColumnBatch) -> Option<&'a [f64]> {
        let c = match self {
            EvalOut::Owned(c) => c,
            EvalOut::Ref(i) => batch.col(*i),
            EvalOut::Const(_) => return None,
        };
        match &c.data {
            ColData::Float(v) if c.valid.iter().all(|&ok| ok) => Some(v),
            _ => None,
        }
    }

    /// The per-lane `is_truthy` mask (`true` only for a valid `Bool(true)`
    /// lane — exactly [`Value::is_truthy`]).
    pub fn truthy_mask(&self, batch: &ColumnBatch) -> Vec<bool> {
        let n = batch.len();
        match self.as_operand(batch) {
            Operand::Const(v) => vec![v.is_truthy(); n],
            Operand::Col(c) => match &c.data {
                ColData::Bool(b) => (0..n).map(|i| c.valid[i] && b[i]).collect(),
                ColData::Mixed(v) => v.iter().map(Value::is_truthy).collect(),
                _ => vec![false; n],
            },
        }
    }
}

enum Operand<'a> {
    Col(&'a Col),
    Const(&'a Value),
}

impl<'a> Operand<'a> {
    fn value_at(&self, lane: usize) -> Value {
        match self {
            Operand::Col(c) => c.value_at(lane),
            Operand::Const(v) => (*v).clone(),
        }
    }
}

/// Lane classification for three-valued `AND`/`OR`: exactly `Bool(true)`,
/// exactly `Bool(false)`, or anything else (NULL and non-boolean values
/// take the same `else => Null` arm in the row evaluator).
#[derive(Clone, Copy, PartialEq)]
enum Tri {
    True,
    False,
    Other,
}

fn tri_lanes(op: &Operand<'_>, n: usize) -> Vec<Tri> {
    let of_value = |v: &Value| match v {
        Value::Bool(true) => Tri::True,
        Value::Bool(false) => Tri::False,
        _ => Tri::Other,
    };
    match op {
        Operand::Const(v) => vec![of_value(v); n],
        Operand::Col(c) => match &c.data {
            ColData::Bool(b) => (0..n)
                .map(|i| {
                    if !c.valid[i] {
                        Tri::Other
                    } else if b[i] {
                        Tri::True
                    } else {
                        Tri::False
                    }
                })
                .collect(),
            ColData::Mixed(v) => v.iter().map(of_value).collect(),
            _ => vec![Tri::Other; n],
        },
    }
}

/// A compiled per-batch evaluation plan for one bound expression.
#[derive(Debug, Clone)]
pub enum Kernel {
    /// Pass input column `i` through.
    Column(usize),
    /// Broadcast a constant.
    Literal(Value),
    /// Vectorized binary operator.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand kernel.
        left: Box<Kernel>,
        /// Right operand kernel.
        right: Box<Kernel>,
    },
    /// Vectorized unary operator.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand kernel.
        inner: Box<Kernel>,
    },
    /// Vectorized `IS [NOT] NULL` (reads only the validity bitmap).
    IsNull {
        /// Operand kernel.
        inner: Box<Kernel>,
        /// `IS NOT NULL` when set.
        negated: bool,
    },
    /// Row-wise interpretation of a subtree the vectorizer does not cover
    /// (CASE, casts, builtins, IN lists, fallible AND/OR right sides, …).
    Fallback(BoundExpr),
}

/// True when evaluating `e` can never return an error for any row: bare
/// columns and literals, and comparison/logic trees built from them
/// (`sql_eq`/`sql_cmp` and the three-valued connectives are total).
/// Arithmetic is fallible (integer overflow, division by zero, type
/// errors), as are casts, builtins, and `NOT` on non-boolean input.
fn infallible(e: &BoundExpr) -> bool {
    match e {
        BoundExpr::Literal(_) | BoundExpr::Column(_) => true,
        BoundExpr::IsNull { expr, .. } => infallible(expr),
        BoundExpr::Binary { left, op, right } => {
            matches!(
                op,
                BinaryOp::Eq
                    | BinaryOp::NotEq
                    | BinaryOp::Lt
                    | BinaryOp::LtEq
                    | BinaryOp::Gt
                    | BinaryOp::GtEq
                    | BinaryOp::And
                    | BinaryOp::Or
            ) && infallible(left)
                && infallible(right)
        }
        BoundExpr::Between {
            expr, low, high, ..
        } => infallible(expr) && infallible(low) && infallible(high),
        BoundExpr::InList { expr, list, .. } => infallible(expr) && list.iter().all(infallible),
        _ => false,
    }
}

/// Process-wide kernel-dispatch counters (exported via the obs registry).
fn count_vector_node() {
    obs::global().counter("sqloop.exec.kernel.vector").inc();
}

fn count_fallback_node() {
    obs::global().counter("sqloop.exec.kernel.fallback").inc();
}

impl Kernel {
    /// Compiles a bound expression into a kernel tree. Subtrees the
    /// vectorizer cannot evaluate with identical semantics compile to
    /// [`Kernel::Fallback`] (row-wise interpretation inside the batch).
    pub fn compile(expr: &BoundExpr) -> Kernel {
        match expr {
            BoundExpr::Literal(v) => {
                count_vector_node();
                Kernel::Literal(v.clone())
            }
            BoundExpr::Column(i) => {
                count_vector_node();
                Kernel::Column(*i)
            }
            BoundExpr::Binary { left, op, right } => {
                // eager vectorized AND/OR would evaluate right sides the
                // row path short-circuits past — only safe when the right
                // side cannot error
                if matches!(op, BinaryOp::And | BinaryOp::Or) && !infallible(right) {
                    count_fallback_node();
                    return Kernel::Fallback(expr.clone());
                }
                count_vector_node();
                Kernel::Binary {
                    op: *op,
                    left: Box::new(Kernel::compile(left)),
                    right: Box::new(Kernel::compile(right)),
                }
            }
            BoundExpr::Unary { op, expr: inner } => {
                count_vector_node();
                Kernel::Unary {
                    op: *op,
                    inner: Box::new(Kernel::compile(inner)),
                }
            }
            BoundExpr::IsNull {
                expr: inner,
                negated,
            } => {
                count_vector_node();
                Kernel::IsNull {
                    inner: Box::new(Kernel::compile(inner)),
                    negated: *negated,
                }
            }
            other => {
                count_fallback_node();
                Kernel::Fallback(other.clone())
            }
        }
    }

    /// Evaluates the kernel over one batch.
    ///
    /// # Errors
    /// Returns the first error in kernel evaluation order. Callers must
    /// treat any error as "re-evaluate this batch row-wise" — see the
    /// module docs — which [`CompiledExpr::try_eval`]'s callers do.
    pub fn eval(&self, batch: &ColumnBatch) -> DbResult<EvalOut> {
        match self {
            Kernel::Column(i) => {
                if *i >= batch.arity() {
                    return Err(DbError::Eval(format!("row too short for column {i}")));
                }
                Ok(EvalOut::Ref(*i))
            }
            Kernel::Literal(v) => Ok(EvalOut::Const(v.clone())),
            Kernel::Binary { op, left, right } => {
                let l = left.eval(batch)?;
                let r = right.eval(batch)?;
                eval_binary_cols(*op, &l, &r, batch)
            }
            Kernel::Unary { op, inner } => {
                let v = inner.eval(batch)?;
                eval_unary_col(*op, &v, batch)
            }
            Kernel::IsNull { inner, negated } => {
                let v = inner.eval(batch)?;
                let n = batch.len();
                let lanes: Vec<bool> = match v.as_operand(batch) {
                    Operand::Const(c) => vec![c.is_null() != *negated; n],
                    Operand::Col(c) => c.valid.iter().map(|&ok| ok == *negated).collect(),
                };
                Ok(EvalOut::Owned(Col {
                    data: ColData::Bool(lanes),
                    valid: vec![true; n],
                }))
            }
            Kernel::Fallback(expr) => {
                let mut out = Vec::with_capacity(batch.len());
                for lane in 0..batch.len() {
                    out.push(expr.eval(&batch.row_at(lane), &[])?);
                }
                Ok(EvalOut::Owned(Col::from_values(out)))
            }
        }
    }
}

fn eval_binary_cols(
    op: BinaryOp,
    l: &EvalOut,
    r: &EvalOut,
    batch: &ColumnBatch,
) -> DbResult<EvalOut> {
    let n = batch.len();
    let lo = l.as_operand(batch);
    let ro = r.as_operand(batch);
    match op {
        BinaryOp::And | BinaryOp::Or => {
            let lt = tri_lanes(&lo, n);
            let rt = tri_lanes(&ro, n);
            let mut data = vec![false; n];
            let mut valid = vec![false; n];
            for i in 0..n {
                let out = if op == BinaryOp::And {
                    match (lt[i], rt[i]) {
                        (Tri::False, _) | (_, Tri::False) => Some(false),
                        (Tri::True, Tri::True) => Some(true),
                        _ => None,
                    }
                } else {
                    match (lt[i], rt[i]) {
                        (Tri::True, _) | (_, Tri::True) => Some(true),
                        (Tri::False, Tri::False) => Some(false),
                        _ => None,
                    }
                };
                if let Some(b) = out {
                    data[i] = b;
                    valid[i] = true;
                }
            }
            Ok(EvalOut::Owned(Col {
                data: ColData::Bool(data),
                valid,
            }))
        }
        BinaryOp::Eq
        | BinaryOp::NotEq
        | BinaryOp::Lt
        | BinaryOp::LtEq
        | BinaryOp::Gt
        | BinaryOp::GtEq => Ok(EvalOut::Owned(eval_cmp_cols(op, &lo, &ro, n))),
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            eval_arith_cols(op, &lo, &ro, n)
        }
        BinaryOp::Concat => {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let a = lo.value_at(i);
                let b = ro.value_at(i);
                out.push(if a.is_null() || b.is_null() {
                    Value::Null
                } else {
                    Value::Text(format!("{a}{b}"))
                });
            }
            Ok(EvalOut::Owned(Col::from_values(out)))
        }
    }
}

fn cmp_to_bool(op: BinaryOp, o: Ordering) -> bool {
    match op {
        BinaryOp::Eq => o == Ordering::Equal,
        BinaryOp::NotEq => o != Ordering::Equal,
        BinaryOp::Lt => o == Ordering::Less,
        BinaryOp::LtEq => o != Ordering::Greater,
        BinaryOp::Gt => o == Ordering::Greater,
        BinaryOp::GtEq => o != Ordering::Less,
        _ => unreachable!("not a comparison"),
    }
}

/// Vectorized comparison with [`Value::sql_cmp`] semantics: NULL lanes
/// compare to NULL, numeric lanes use `total_cmp` (so NaN equals NaN and
/// `-0.0 < 0.0`, matching the row path exactly).
fn eval_cmp_cols(op: BinaryOp, lo: &Operand<'_>, ro: &Operand<'_>, n: usize) -> Col {
    let mut data = vec![false; n];
    let mut valid = vec![false; n];
    // typed fast paths over numeric columns; everything else goes lane-wise
    // through Value::sql_cmp (identical semantics, just slower)
    match (lo, ro) {
        (Operand::Col(a), Operand::Col(b)) => match (&a.data, &b.data) {
            (ColData::Int(x), ColData::Int(y)) => {
                for i in 0..n {
                    if a.valid[i] && b.valid[i] {
                        valid[i] = true;
                        data[i] = cmp_to_bool(op, x[i].cmp(&y[i]));
                    }
                }
            }
            (ColData::Float(x), ColData::Float(y)) => {
                for i in 0..n {
                    if a.valid[i] && b.valid[i] {
                        valid[i] = true;
                        data[i] = cmp_to_bool(op, x[i].total_cmp(&y[i]));
                    }
                }
            }
            (ColData::Int(x), ColData::Float(y)) => {
                for i in 0..n {
                    if a.valid[i] && b.valid[i] {
                        valid[i] = true;
                        data[i] = cmp_to_bool(op, (x[i] as f64).total_cmp(&y[i]));
                    }
                }
            }
            (ColData::Float(x), ColData::Int(y)) => {
                for i in 0..n {
                    if a.valid[i] && b.valid[i] {
                        valid[i] = true;
                        data[i] = cmp_to_bool(op, x[i].total_cmp(&(y[i] as f64)));
                    }
                }
            }
            _ => {
                for i in 0..n {
                    if let Some(o) = a.value_at(i).sql_cmp(&b.value_at(i)) {
                        valid[i] = true;
                        data[i] = cmp_to_bool(op, o);
                    }
                }
            }
        },
        (Operand::Col(a), Operand::Const(k)) | (Operand::Const(k), Operand::Col(a)) => {
            let flipped = matches!(lo, Operand::Const(_));
            let ord = |x: Ordering| if flipped { x.reverse() } else { x };
            if k.is_null() {
                // all lanes NULL
            } else {
                match (&a.data, k) {
                    (ColData::Int(x), Value::Int(kv)) => {
                        for i in 0..n {
                            if a.valid[i] {
                                valid[i] = true;
                                data[i] = cmp_to_bool(op, ord(x[i].cmp(kv)));
                            }
                        }
                    }
                    (ColData::Float(x), Value::Float(kv)) => {
                        for i in 0..n {
                            if a.valid[i] {
                                valid[i] = true;
                                data[i] = cmp_to_bool(op, ord(x[i].total_cmp(kv)));
                            }
                        }
                    }
                    (ColData::Int(x), Value::Float(kv)) => {
                        for i in 0..n {
                            if a.valid[i] {
                                valid[i] = true;
                                data[i] = cmp_to_bool(op, ord((x[i] as f64).total_cmp(kv)));
                            }
                        }
                    }
                    (ColData::Float(x), Value::Int(kv)) => {
                        let kf = *kv as f64;
                        for i in 0..n {
                            if a.valid[i] {
                                valid[i] = true;
                                data[i] = cmp_to_bool(op, ord(x[i].total_cmp(&kf)));
                            }
                        }
                    }
                    _ => {
                        for i in 0..n {
                            if let Some(o) = a.value_at(i).sql_cmp(k) {
                                valid[i] = true;
                                data[i] = cmp_to_bool(op, ord(o));
                            }
                        }
                    }
                }
            }
        }
        (Operand::Const(a), Operand::Const(b)) => {
            if let Some(o) = a.sql_cmp(b) {
                let v = cmp_to_bool(op, o);
                data = vec![v; n];
                valid = vec![true; n];
            }
        }
    }
    Col {
        data: ColData::Bool(data),
        valid,
    }
}

/// Vectorized arithmetic. Pure-float lane combinations run as raw `f64`
/// loops (IEEE semantics, infallible — identical to the row path's float
/// promotion); anything involving integers, text, or mixed lanes calls the
/// checked `Value` operators lane-wise so overflow/div-by-zero/type errors
/// keep their exact row-path messages.
fn eval_arith_cols(
    op: BinaryOp,
    lo: &Operand<'_>,
    ro: &Operand<'_>,
    n: usize,
) -> DbResult<EvalOut> {
    let float_op = |a: f64, b: f64| -> f64 {
        match op {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
            BinaryOp::Mod => a % b,
            _ => unreachable!(),
        }
    };
    // float ⊗ float fast path
    if let (Operand::Col(a), Operand::Col(b)) = (lo, ro) {
        if let (ColData::Float(x), ColData::Float(y)) = (&a.data, &b.data) {
            let mut data = vec![0.0f64; n];
            let mut valid = vec![false; n];
            for i in 0..n {
                if a.valid[i] && b.valid[i] {
                    valid[i] = true;
                    data[i] = float_op(x[i], y[i]);
                }
            }
            return Ok(EvalOut::Owned(Col {
                data: ColData::Float(data),
                valid,
            }));
        }
    }
    // float ⊗ float-constant fast paths
    match (lo, ro) {
        (Operand::Col(a), Operand::Const(Value::Float(k))) => {
            if let ColData::Float(x) = &a.data {
                let mut data = vec![0.0f64; n];
                let mut valid = vec![false; n];
                for i in 0..n {
                    if a.valid[i] {
                        valid[i] = true;
                        data[i] = float_op(x[i], *k);
                    }
                }
                return Ok(EvalOut::Owned(Col {
                    data: ColData::Float(data),
                    valid,
                }));
            }
        }
        (Operand::Const(Value::Float(k)), Operand::Col(b)) => {
            if let ColData::Float(y) = &b.data {
                let mut data = vec![0.0f64; n];
                let mut valid = vec![false; n];
                for i in 0..n {
                    if b.valid[i] {
                        valid[i] = true;
                        data[i] = float_op(*k, y[i]);
                    }
                }
                return Ok(EvalOut::Owned(Col {
                    data: ColData::Float(data),
                    valid,
                }));
            }
        }
        _ => {}
    }
    // generic lane-wise path through the checked Value operators
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let a = lo.value_at(i);
        let b = ro.value_at(i);
        out.push(match op {
            BinaryOp::Add => a.add(&b)?,
            BinaryOp::Sub => a.sub(&b)?,
            BinaryOp::Mul => a.mul(&b)?,
            BinaryOp::Div => a.div(&b)?,
            BinaryOp::Mod => a.rem(&b)?,
            _ => unreachable!(),
        });
    }
    Ok(EvalOut::Owned(Col::from_values(out)))
}

fn eval_unary_col(op: UnaryOp, v: &EvalOut, batch: &ColumnBatch) -> DbResult<EvalOut> {
    let n = batch.len();
    let o = v.as_operand(batch);
    match op {
        UnaryOp::Neg => {
            if let Operand::Col(c) = &o {
                if let ColData::Float(x) = &c.data {
                    let data: Vec<f64> = x.iter().map(|f| -f).collect();
                    return Ok(EvalOut::Owned(Col {
                        data: ColData::Float(data),
                        valid: c.valid.clone(),
                    }));
                }
            }
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(o.value_at(i).neg()?);
            }
            Ok(EvalOut::Owned(Col::from_values(out)))
        }
        UnaryOp::Not => {
            if let Operand::Col(c) = &o {
                if let ColData::Bool(b) = &c.data {
                    let data: Vec<bool> = b.iter().map(|x| !x).collect();
                    return Ok(EvalOut::Owned(Col {
                        data: ColData::Bool(data),
                        valid: c.valid.clone(),
                    }));
                }
            }
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(match o.value_at(i) {
                    Value::Null => Value::Null,
                    Value::Bool(b) => Value::Bool(!b),
                    other => {
                        return Err(DbError::Eval(format!(
                            "NOT requires boolean, got {}",
                            other.type_name()
                        )))
                    }
                });
            }
            Ok(EvalOut::Owned(Col::from_values(out)))
        }
    }
}

/// A bound expression compiled for batch evaluation, retaining the original
/// tree for the row-wise error path.
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    kernel: Kernel,
    expr: BoundExpr,
}

impl CompiledExpr {
    /// Compiles `expr` (done once per statement execution).
    pub fn new(expr: &BoundExpr) -> CompiledExpr {
        CompiledExpr {
            kernel: Kernel::compile(expr),
            expr: expr.clone(),
        }
    }

    /// The original bound expression.
    pub fn expr(&self) -> &BoundExpr {
        &self.expr
    }

    /// Evaluates the kernel only, with *no* row-wise rerun on error. Phases
    /// that evaluate several expressions per batch (projection, grouping)
    /// use this and fall back to row-wise evaluation of the whole batch
    /// themselves, so cross-expression error ordering matches the row path.
    ///
    /// # Errors
    /// May over-approximate: an error here can come from a lane/branch the
    /// row path would never evaluate. Callers must rerun row-wise.
    pub fn try_eval(&self, batch: &ColumnBatch) -> DbResult<EvalOut> {
        self.kernel.eval(batch)
    }

    /// Evaluates over one batch with exact row-path semantics: if the
    /// vectorized kernel errors anywhere in the batch, the batch is
    /// re-evaluated row-by-row in order, which either reproduces the row
    /// path's first error exactly or succeeds where eager evaluation
    /// over-approximated (e.g. an error in an untaken CASE branch).
    ///
    /// # Errors
    /// Exactly the errors the row-at-a-time evaluator would produce.
    pub fn eval_batch(&self, batch: &ColumnBatch) -> DbResult<EvalOut> {
        match self.kernel.eval(batch) {
            Ok(out) => Ok(out),
            Err(_) => {
                let mut out = Vec::with_capacity(batch.len());
                for lane in 0..batch.len() {
                    out.push(self.expr.eval(&batch.row_at(lane), &[])?);
                }
                Ok(EvalOut::Owned(Col::from_values(out)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinaryOp;

    fn batch_1col(values: Vec<Value>) -> ColumnBatch {
        let rows: Vec<Row> = values.into_iter().map(|v| vec![v]).collect();
        ColumnBatch::from_rows(rows, 1)
    }

    #[test]
    fn from_rows_types_columns_and_round_trips() {
        let rows = vec![
            vec![Value::Int(1), Value::Float(0.5), Value::Text("a".into())],
            vec![Value::Null, Value::Float(f64::NAN), Value::Null],
            vec![Value::Int(-3), Value::Null, Value::Text("b".into())],
        ];
        let b = ColumnBatch::from_rows(rows.clone(), 3);
        assert_eq!(b.len(), 3);
        assert!(matches!(b.col(0).data, ColData::Int(_)));
        assert!(matches!(b.col(1).data, ColData::Float(_)));
        assert!(matches!(b.col(2).data, ColData::Mixed(_)));
        let mut out = Vec::new();
        b.append_rows_to(&mut out);
        // NaN round-trips bit-wise through the Float column
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], rows[0]);
        assert!(matches!(out[1][1], Value::Float(f) if f.is_nan()));
        assert_eq!(out[2], rows[2]);
    }

    #[test]
    fn mixed_numeric_column_stays_mixed() {
        let b = batch_1col(vec![Value::Int(1), Value::Float(2.0)]);
        // Int and Float lanes must not be silently promoted: grouping and
        // hashing treat Int(2) and Float(2.0) as equal but distinct values
        assert!(matches!(b.col(0).data, ColData::Mixed(_)));
    }

    #[test]
    fn chunk_rows_splits_exactly() {
        let rows: Vec<Row> = (0..10).map(|i| vec![Value::Int(i)]).collect();
        let batches = ColumnBatch::chunk_rows(rows, 1, 4);
        assert_eq!(
            batches.iter().map(ColumnBatch::len).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
        assert_eq!(batches[2].col(0).value_at(1), Value::Int(9));
    }

    fn eval_both(expr: &BoundExpr, rows: Vec<Row>, arity: usize) -> (Vec<Value>, Vec<Value>) {
        let row_results: Vec<Value> = rows
            .iter()
            .map(|r| expr.eval(r, &[]).expect("row eval"))
            .collect();
        let batch = ColumnBatch::from_rows(rows, arity);
        let compiled = CompiledExpr::new(expr);
        let out = compiled.eval_batch(&batch).expect("batch eval");
        let batch_results: Vec<Value> = (0..batch.len()).map(|i| out.value_at(&batch, i)).collect();
        (row_results, batch_results)
    }

    fn assert_same(expr: &BoundExpr, rows: Vec<Row>, arity: usize) {
        let (row, batch) = eval_both(expr, rows, arity);
        for (i, (r, b)) in row.iter().zip(&batch).enumerate() {
            // compare through total_cmp so NaN == NaN
            let same = match (r, b) {
                (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
                _ => r == b,
            };
            assert!(same, "lane {i}: row={r:?} batch={b:?} for {expr:?}");
        }
    }

    #[test]
    fn comparison_kernels_match_row_semantics_on_hostile_floats() {
        let hostile = vec![
            vec![Value::Float(f64::NAN), Value::Float(f64::NAN)],
            vec![Value::Float(0.0), Value::Float(-0.0)],
            vec![Value::Float(f64::INFINITY), Value::Float(1.0)],
            vec![Value::Float(f64::NEG_INFINITY), Value::Null],
            vec![Value::Null, Value::Null],
            vec![Value::Float(2.5), Value::Float(2.5)],
        ];
        for op in [
            BinaryOp::Eq,
            BinaryOp::NotEq,
            BinaryOp::Lt,
            BinaryOp::LtEq,
            BinaryOp::Gt,
            BinaryOp::GtEq,
        ] {
            let expr = BoundExpr::Binary {
                left: Box::new(BoundExpr::Column(0)),
                op,
                right: Box::new(BoundExpr::Column(1)),
            };
            assert_same(&expr, hostile.clone(), 2);
        }
    }

    #[test]
    fn int_float_cross_comparison_matches() {
        let rows = vec![
            vec![Value::Int(3), Value::Float(3.0)],
            vec![Value::Int(3), Value::Float(3.5)],
            vec![Value::Int(i64::MAX), Value::Float(9.3e18)],
            vec![Value::Null, Value::Float(1.0)],
        ];
        let expr = BoundExpr::Binary {
            left: Box::new(BoundExpr::Column(0)),
            op: BinaryOp::Eq,
            right: Box::new(BoundExpr::Column(1)),
        };
        assert_same(&expr, rows, 2);
    }

    #[test]
    fn arithmetic_kernels_match_and_propagate_null() {
        let rows = vec![
            vec![Value::Float(1.5), Value::Float(2.5)],
            vec![Value::Float(f64::INFINITY), Value::Float(-1.0)],
            vec![Value::Null, Value::Float(4.0)],
            vec![Value::Float(1.0), Value::Null],
            vec![Value::Int(7), Value::Float(2.0)],
        ];
        for op in [BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Div] {
            let expr = BoundExpr::Binary {
                left: Box::new(BoundExpr::Column(0)),
                op,
                right: Box::new(BoundExpr::Column(1)),
            };
            assert_same(&expr, rows.clone(), 2);
        }
    }

    #[test]
    fn integer_overflow_keeps_row_path_error() {
        let rows = vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(i64::MAX), Value::Int(1)],
        ];
        let expr = BoundExpr::Binary {
            left: Box::new(BoundExpr::Column(0)),
            op: BinaryOp::Add,
            right: Box::new(BoundExpr::Column(1)),
        };
        let batch = ColumnBatch::from_rows(rows, 2);
        let err = CompiledExpr::new(&expr).eval_batch(&batch).unwrap_err();
        assert!(err.to_string().contains("integer overflow in +"), "{err}");
    }

    #[test]
    fn division_by_integer_zero_keeps_row_path_error() {
        let rows = vec![vec![Value::Int(4), Value::Int(0)]];
        let expr = BoundExpr::Binary {
            left: Box::new(BoundExpr::Column(0)),
            op: BinaryOp::Div,
            right: Box::new(BoundExpr::Column(1)),
        };
        let batch = ColumnBatch::from_rows(rows, 2);
        let err = CompiledExpr::new(&expr).eval_batch(&batch).unwrap_err();
        assert!(err.to_string().contains("division by zero"), "{err}");
    }

    #[test]
    fn and_with_fallible_right_side_short_circuits_like_rows() {
        // b != 0 AND 10 / b > 1 — the row path never divides where b = 0;
        // the kernel must compile this to a row-wise fallback, not error
        let guard = BoundExpr::Binary {
            left: Box::new(BoundExpr::Column(0)),
            op: BinaryOp::NotEq,
            right: Box::new(BoundExpr::Literal(Value::Int(0))),
        };
        let div = BoundExpr::Binary {
            left: Box::new(BoundExpr::Binary {
                left: Box::new(BoundExpr::Literal(Value::Int(10))),
                op: BinaryOp::Div,
                right: Box::new(BoundExpr::Column(0)),
            }),
            op: BinaryOp::Gt,
            right: Box::new(BoundExpr::Literal(Value::Int(1))),
        };
        let expr = BoundExpr::Binary {
            left: Box::new(guard),
            op: BinaryOp::And,
            right: Box::new(div),
        };
        let rows = vec![
            vec![Value::Int(0)],
            vec![Value::Int(2)],
            vec![Value::Int(100)],
        ];
        assert_same(&expr, rows, 1);
    }

    #[test]
    fn and_or_three_valued_logic_matches() {
        let mk = |c: usize| Box::new(BoundExpr::Column(c));
        let rows: Vec<Row> = {
            let vals = [Value::Bool(true), Value::Bool(false), Value::Null];
            let mut rows = Vec::new();
            for a in &vals {
                for b in &vals {
                    rows.push(vec![a.clone(), b.clone()]);
                }
            }
            rows
        };
        for op in [BinaryOp::And, BinaryOp::Or] {
            let expr = BoundExpr::Binary {
                left: mk(0),
                op,
                right: mk(1),
            };
            assert_same(&expr, rows.clone(), 2);
        }
    }

    #[test]
    fn is_null_and_not_kernels_match() {
        let rows = vec![
            vec![Value::Null],
            vec![Value::Bool(true)],
            vec![Value::Bool(false)],
        ];
        let isn = BoundExpr::IsNull {
            expr: Box::new(BoundExpr::Column(0)),
            negated: false,
        };
        assert_same(&isn, rows.clone(), 1);
        let not = BoundExpr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(BoundExpr::Column(0)),
        };
        assert_same(&not, rows, 1);
    }

    #[test]
    fn fallback_covers_case_expressions() {
        // CASE WHEN c0 > 0 THEN c0 ELSE 0 - c0 END
        let cond = BoundExpr::Binary {
            left: Box::new(BoundExpr::Column(0)),
            op: BinaryOp::Gt,
            right: Box::new(BoundExpr::Literal(Value::Int(0))),
        };
        let neg = BoundExpr::Binary {
            left: Box::new(BoundExpr::Literal(Value::Int(0))),
            op: BinaryOp::Sub,
            right: Box::new(BoundExpr::Column(0)),
        };
        let expr = BoundExpr::Case {
            branches: vec![(cond, BoundExpr::Column(0))],
            else_result: Some(Box::new(neg)),
        };
        let rows = vec![vec![Value::Int(-5)], vec![Value::Int(7)], vec![Value::Null]];
        assert_same(&expr, rows, 1);
    }

    #[test]
    fn compact_keeps_selected_lanes() {
        let b = batch_1col(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let c = b.compact(&[true, false, true]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.col(0).value_at(0), Value::Int(1));
        assert_eq!(c.col(0).value_at(1), Value::Int(3));
    }

    #[test]
    fn truthy_mask_matches_is_truthy() {
        let b = batch_1col(vec![
            Value::Bool(true),
            Value::Bool(false),
            Value::Null,
            Value::Int(1),
        ]);
        let out = Kernel::Column(0).eval(&b).unwrap();
        assert_eq!(out.truthy_mask(&b), vec![true, false, false, false]);
    }
}
