//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! Implements the subset of the API this workspace uses: `Mutex`,
//! `Condvar` (with `wait_for`/`wait_until`), and `RwLock`, all with
//! parking_lot's poison-free semantics (a poisoned std lock is recovered
//! by taking its inner guard).

use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// Mutual exclusion primitive (poison-free `lock()` like parking_lot's).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable usable with [`Mutex`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.replace_guard(guard, |g| {
            (
                self.0.wait(g).unwrap_or_else(PoisonError::into_inner),
                false,
            )
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let timed_out = self.replace_guard(guard, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            (g, r.timed_out())
        });
        WaitTimeoutResult(timed_out)
    }

    /// Blocks until notified or `deadline` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if deadline <= now {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Temporarily moves the std guard out of our wrapper so the std
    /// condvar (which takes guards by value) can be used in place.
    fn replace_guard<T, R>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        f: impl FnOnce(sync::MutexGuard<'_, T>) -> (sync::MutexGuard<'_, T>, R),
    ) -> R {
        // SAFETY: the guard slot is written back before returning and `f`
        // only swaps it for another guard of the same mutex; a panic inside
        // the std condvar would abort the wait with the lock released,
        // which is the same observable state as parking_lot's.
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let (inner, out) = f(inner);
            std::ptr::write(&mut guard.0, inner);
            out
        }
    }
}

/// Reader-writer lock (poison-free like parking_lot's).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        assert!(c.wait_for(&mut g, Duration::from_millis(10)).timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        std::thread::spawn(move || {
            *pair2.0.lock() = true;
            pair2.1.notify_all();
        });
        let mut done = pair.0.lock();
        while !*done {
            assert!(!pair
                .1
                .wait_for(&mut done, Duration::from_secs(5))
                .timed_out());
        }
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
