//! Client-side prepared-statement handles.
//!
//! A [`PreparedStatement`] pins one SQL text and lazily prepares it on
//! whatever physical connection executes it. Server-side statement ids are
//! only valid for one physical connection (identified by
//! [`Connection::prepared_epoch`]), so after a retry/reconnect the handle
//! notices the epoch change and transparently re-prepares — composing with
//! [`crate::RetryPolicy`] replay without any caller involvement. Transports
//! that answer [`DbError::Unsupported`] degrade permanently (per handle) to
//! splicing parameter literals into the SQL text and using plain `execute`.

use crate::driver::Connection;
use crate::wire::PipelineStep;
use sqldb::{DbError, DbResult, StmtOutput, Value};

/// A reusable statement bound to no particular connection.
///
/// Cheap to clone; clones share nothing (each re-prepares independently).
#[derive(Debug, Clone)]
pub struct PreparedStatement {
    sql: String,
    /// `(epoch, stmt_id)` of the live server-side statement, when prepared.
    cached: Option<(u64, u64)>,
    /// The transport refused to prepare; splice literals from now on.
    fallback: bool,
}

impl PreparedStatement {
    /// Wraps canonical SQL (with optional `?` placeholders).
    pub fn new(sql: impl Into<String>) -> PreparedStatement {
        PreparedStatement {
            sql: sql.into(),
            cached: None,
            fallback: false,
        }
    }

    /// The SQL text this handle executes.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// True once the transport declined preparation and the handle degraded
    /// to literal splicing.
    pub fn is_fallback(&self) -> bool {
        self.fallback
    }

    /// Ensures a live server-side statement on `conn`, re-preparing after
    /// reconnects. Returns `None` when the transport can't prepare.
    fn ensure(&mut self, conn: &mut dyn Connection) -> DbResult<Option<u64>> {
        if self.fallback {
            return Ok(None);
        }
        let epoch = conn.prepared_epoch();
        if epoch == 0 {
            // epoch-free transport: never prepares
            return Ok(None);
        }
        if let Some((ep, id)) = self.cached {
            if ep == epoch {
                return Ok(Some(id));
            }
        }
        match conn.prepare_statement(&self.sql) {
            Ok((id, _)) => {
                self.cached = Some((epoch, id));
                Ok(Some(id))
            }
            Err(DbError::Unsupported(_)) => {
                self.fallback = true;
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Executes on `conn` with `params` filling the `?` placeholders,
    /// preparing (or re-preparing) first as needed.
    ///
    /// # Errors
    /// Everything [`Connection::execute_prepared`] can return; on the
    /// splicing fallback, everything [`Connection::execute`] can return.
    pub fn execute(&mut self, conn: &mut dyn Connection, params: &[Value]) -> DbResult<StmtOutput> {
        match self.ensure(conn)? {
            Some(id) => match conn.execute_prepared(id, params) {
                Err(DbError::NotFound(_)) => {
                    // the server dropped our statement (e.g. session was
                    // rebuilt under the same transport object) — one retry
                    // with a forced re-prepare
                    self.cached = None;
                    match self.ensure(conn)? {
                        Some(id) => conn.execute_prepared(id, params),
                        None => conn.execute(&splice_params(&self.sql, params)?),
                    }
                }
                other => other,
            },
            None => conn.execute(&splice_params(&self.sql, params)?),
        }
    }

    /// Converts this handle into one pipeline step for `conn`, preparing
    /// first as needed. Fallback handles become plain `Execute` steps.
    ///
    /// # Errors
    /// Prepare/transport errors, or a parameter-count mismatch on the
    /// splicing fallback.
    pub fn pipeline_step(
        &mut self,
        conn: &mut dyn Connection,
        params: &[Value],
    ) -> DbResult<PipelineStep> {
        match self.ensure(conn)? {
            Some(stmt_id) => Ok(PipelineStep::Prepared {
                stmt_id,
                params: params.to_vec(),
            }),
            None => Ok(PipelineStep::Execute(splice_params(&self.sql, params)?)),
        }
    }

    /// Drops the server-side statement (best effort, idempotent).
    ///
    /// # Errors
    /// Transport failures from the close message.
    pub fn close(&mut self, conn: &mut dyn Connection) -> DbResult<()> {
        if let Some((ep, id)) = self.cached.take() {
            if ep == conn.prepared_epoch() {
                conn.close_prepared(id)?;
            }
        }
        Ok(())
    }
}

/// Renders `v` as a canonical-dialect SQL literal.
fn value_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".into(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            if f.is_infinite() {
                (if *f > 0.0 { "Infinity" } else { "-Infinity" }).into()
            } else if f.fract() == 0.0 && f.abs() < 1e15 {
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Bool(b) => (if *b { "TRUE" } else { "FALSE" }).into(),
    }
}

/// Replaces the `?` placeholders in `sql` with literals, skipping `?` inside
/// single-quoted strings.
///
/// # Errors
/// [`DbError::Invalid`] when the placeholder and parameter counts differ.
pub(crate) fn splice_params(sql: &str, params: &[Value]) -> DbResult<String> {
    if params.is_empty() && !sql.contains('?') {
        return Ok(sql.to_owned());
    }
    let mut out = String::with_capacity(sql.len() + params.len() * 8);
    let mut next = 0usize;
    let mut in_string = false;
    for ch in sql.chars() {
        match ch {
            '\'' => {
                // '' escapes inside strings toggle twice — harmless
                in_string = !in_string;
                out.push(ch);
            }
            '?' if !in_string => {
                let v = params.get(next).ok_or_else(|| {
                    DbError::Invalid(format!(
                        "statement has more than {} placeholder(s) but only {} value(s) were bound",
                        next,
                        params.len()
                    ))
                })?;
                out.push_str(&value_literal(v));
                next += 1;
            }
            _ => out.push(ch),
        }
    }
    if next != params.len() {
        return Err(DbError::Invalid(format!(
            "statement has {next} placeholder(s) but {} value(s) were bound",
            params.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{Driver, LocalDriver};
    use sqldb::{Database, EngineProfile};

    #[test]
    fn splice_basics() {
        assert_eq!(
            splice_params(
                "SELECT * FROM t WHERE a > ? AND b = ?",
                &[Value::Int(3), Value::Text("x'y".into())]
            )
            .unwrap(),
            "SELECT * FROM t WHERE a > 3 AND b = 'x''y'"
        );
        // ? inside string literals is not a placeholder
        assert_eq!(
            splice_params("SELECT '?' FROM t WHERE a = ?", &[Value::Float(2.0)]).unwrap(),
            "SELECT '?' FROM t WHERE a = 2.0"
        );
        assert!(splice_params("SELECT ?", &[]).is_err());
        assert!(splice_params("SELECT 1", &[Value::Int(1)]).is_err());
    }

    #[test]
    fn prepared_roundtrip_on_local_connection() {
        let db = Database::new(EngineProfile::Postgres);
        let driver = LocalDriver::new(db);
        let mut conn = driver.connect().unwrap();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
            .unwrap();
        let mut ins = PreparedStatement::new("INSERT INTO t VALUES (?, ?)");
        for i in 0..5i64 {
            ins.execute(conn.as_mut(), &[Value::Int(i), Value::Float(i as f64)])
                .unwrap();
        }
        let mut sel = PreparedStatement::new("SELECT COUNT(*) FROM t WHERE v >= ?");
        match sel.execute(conn.as_mut(), &[Value::Float(2.0)]).unwrap() {
            StmtOutput::Rows(r) => assert_eq!(r.rows[0][0], Value::Int(3)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!sel.is_fallback());
        sel.close(conn.as_mut()).unwrap();
        ins.close(conn.as_mut()).unwrap();
    }

    #[test]
    fn epoch_change_triggers_transparent_re_prepare() {
        let db = Database::new(EngineProfile::Postgres);
        let driver = LocalDriver::new(db);
        let mut a = driver.connect().unwrap();
        a.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        let mut stmt = PreparedStatement::new("INSERT INTO t VALUES (?)");
        stmt.execute(a.as_mut(), &[Value::Int(1)]).unwrap();
        // a different physical connection (new epoch): the handle must
        // re-prepare rather than use the stale id
        let mut b = driver.connect().unwrap();
        assert_ne!(a.prepared_epoch(), b.prepared_epoch());
        stmt.execute(b.as_mut(), &[Value::Int(2)]).unwrap();
        let r = b.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
    }
}
