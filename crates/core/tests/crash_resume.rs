//! Hard-kill crash test for the CLI: run a checkpointed SSSP, SIGKILL the
//! process as soon as the first checkpoint manifest lands, then start a
//! fresh process with `--resume` and check it completes with the exact
//! fixpoint. The second process has an empty engine — only the recreated
//! base table plus the checkpoint directory survive the "crash", like a
//! real restart.

use std::io::Write;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const NODES: u64 = 60;

/// Session script: recreate the base table, configure the run, execute a
/// chain SSSP that needs ~NODES rounds to converge. Both process lives use
/// the exact same statement text — the resume fingerprint requires it.
fn session_script() -> String {
    let values: Vec<String> = (0..NODES - 1)
        .map(|i| format!("({i},{},1.0)", i + 1))
        .collect();
    format!(
        "\\mode sync\n\\partitions 8\n\\threads 3\n\
         CREATE TABLE edges (src INT, dst INT, weight FLOAT);\n\
         INSERT INTO edges VALUES {};\n{};\n\\q\n",
        values.join(","),
        workloads::queries::sssp_all(0)
    )
}

fn spawn_cli(extra_args: &[&str], dir: &std::path::Path) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sqloop-cli"));
    cmd.arg("local://postgres")
        .arg("--checkpoint")
        .arg(format!("{}:1", dir.display()))
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn sqloop-cli");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(session_script().as_bytes())
        .unwrap();
    child
}

#[test]
fn kill_and_resume_completes_the_run() {
    let dir = std::env::temp_dir().join(format!("sqloop-cli-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // first life: kill -9 as soon as the first checkpoint is durable
    let mut child = spawn_cli(&[], &dir);
    let manifest = dir.join("MANIFEST.json");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !manifest.is_file() && Instant::now() < deadline {
        if let Ok(Some(_)) = child.try_wait() {
            break; // finished before we could kill it — resume still works
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        manifest.is_file(),
        "no checkpoint manifest appeared within 30s"
    );
    let _ = child.kill();
    let _ = child.wait();

    // second life: fresh process, fresh engine, --resume from the manifest
    let resume_arg = dir.display().to_string();
    let child = spawn_cli(&["--resume", &resume_arg], &dir);
    let out = child.wait_with_output().expect("resumed cli exits");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}\nstdout: {stdout}");
    assert!(
        stdout.contains("-- iterative"),
        "resumed run should report an iterative strategy: {stdout}"
    );
    assert!(stdout.contains(&format!("({NODES} rows)")), "{stdout}");
    // the chain fixpoint: node i at distance i; spot-check the far end,
    // which only a fully converged (not merely resumed-and-stopped) run has
    let last = format!("{}", NODES - 1);
    assert!(
        stdout.lines().any(|l| {
            let cells: Vec<&str> = l.split('|').map(str::trim).collect();
            cells.len() >= 3 && cells[1] == last && cells[2] == last
        }),
        "missing converged distance for node {last}: {stdout}"
    );
    assert!(
        stderr.is_empty(),
        "resumed session should be clean: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
