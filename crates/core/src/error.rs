//! Middleware error type.

use sqldb::DbError;
use std::fmt;

/// Errors produced by the SQLoop middleware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqloopError {
    /// The extended CTE grammar could not be parsed.
    Grammar(String),
    /// The query is valid but violates a middleware assumption
    /// (e.g. the iterative part returns a different key set).
    Semantic(String),
    /// Configuration problem (zero partitions, bad priority query, …).
    Config(String),
    /// An underlying engine/driver error.
    Db(DbError),
    /// A worker thread or its channel died unexpectedly (panic, poisoned
    /// state). Retryable: the downgrade path can finish the run on the
    /// single-threaded executor instead of aborting the process.
    Worker(String),
    /// A checkpoint could not be written, read, or validated (corrupt
    /// manifest, checksum mismatch, fingerprint mismatch on resume). Never
    /// retryable — resuming from bad state would give a wrong answer.
    Checkpoint(String),
    /// The watchdog detected numeric divergence in the iterating state:
    /// a NaN/±infinity aggregate, or deltas that stopped shrinking past
    /// the configured window. Never retryable — the same computation
    /// diverges identically; fix the query or its parameters. The run
    /// still quiesces and writes a final checkpoint first.
    NumericDivergence {
        /// The partition where divergence was observed (`None` when
        /// detected on the whole CTE, e.g. single-threaded execution).
        partition: Option<usize>,
        /// The round/iteration at which the verdict fired.
        round: u64,
        /// Human-readable description of the evidence.
        detail: String,
    },
    /// A resource budget (rounds, wall clock, memory) was exhausted at
    /// `round`. Not retryable as-is — but the governed abort writes a
    /// final checkpoint, so the run *resumes* correctly under a larger
    /// budget.
    BudgetExceeded {
        /// Which budget ran out ("max_rounds", "memory", "deadline", …).
        what: String,
        /// The round/iteration at which the budget tripped.
        round: u64,
    },
    /// A worker thread panicked — caught at the worker's `catch_unwind`
    /// boundary, discovered when a worker thread exited mid-task, or
    /// surfaced when every worker died with tasks still in flight.
    /// Retryable: the connection is dropped (the engine session rolls
    /// back on drop), a replacement worker replays the task, and the
    /// downgrade path can finish the run single-threaded.
    WorkerPanic {
        /// The panicking worker's id (`None` when the whole pool died
        /// and no single culprit is known).
        worker: Option<u32>,
        /// The panic payload (or a description of how the death was
        /// detected).
        detail: String,
    },
    /// A worker's heartbeat went silent past the configured
    /// `stall_timeout` while a task was in flight, and the supervisor
    /// abandoned it. Retryable: a replacement worker replays the
    /// partition's round from the failed statement.
    WorkerStalled {
        /// The stalled worker's id.
        worker: u32,
        /// The partition whose task was abandoned.
        partition: usize,
        /// How long the heartbeat had been silent when the verdict fired.
        waited_ms: u64,
    },
    /// A parallel Compute/Gather task failed after `attempt` attempts;
    /// `source` is the error of the last attempt. Produced when the
    /// scheduler's replay budget is exhausted (or immediately for errors
    /// that replay cannot fix).
    Task {
        /// The partition whose task failed.
        partition: usize,
        /// Attempts made (1 = the original dispatch, no replays).
        attempt: u32,
        /// The last attempt's error.
        source: Box<SqloopError>,
    },
}

impl SqloopError {
    /// True when a retry/replay or a fallback executor could plausibly
    /// succeed: transient connectivity and congestion failures. Grammar,
    /// semantic and configuration errors are deterministic and not
    /// retryable. A [`SqloopError::Task`] delegates to the error of its
    /// last attempt, so "budget exhausted on a transient fault" stays
    /// retryable (the downgrade path uses this) while "task hit a
    /// semantic error" does not.
    pub fn is_retryable(&self) -> bool {
        match self {
            SqloopError::Db(e) => matches!(
                e,
                DbError::Connection(_)
                    | DbError::LockTimeout(_)
                    | DbError::TxnAborted(_)
                    | DbError::Overloaded(_)
            ),
            SqloopError::Task { source, .. } => source.is_retryable(),
            SqloopError::Worker(_) => true,
            SqloopError::WorkerPanic { .. } => true,
            SqloopError::WorkerStalled { .. } => true,
            _ => false,
        }
    }
}

impl fmt::Display for SqloopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqloopError::Grammar(m) => write!(f, "grammar error: {m}"),
            SqloopError::Semantic(m) => write!(f, "semantic error: {m}"),
            SqloopError::Config(m) => write!(f, "configuration error: {m}"),
            SqloopError::Db(e) => write!(f, "engine error: {e}"),
            SqloopError::Worker(m) => write!(f, "worker failure: {m}"),
            SqloopError::WorkerPanic { worker, detail } => match worker {
                Some(w) => write!(f, "worker {w} panicked: {detail}"),
                None => write!(f, "panic absorbed: {detail}"),
            },
            SqloopError::WorkerStalled {
                worker,
                partition,
                waited_ms,
            } => write!(
                f,
                "worker {worker} stalled on partition {partition}: no heartbeat for {waited_ms}ms"
            ),
            SqloopError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            SqloopError::NumericDivergence {
                partition,
                round,
                detail,
            } => match partition {
                Some(p) => write!(
                    f,
                    "numeric divergence on partition {p} at round {round}: {detail}"
                ),
                None => write!(f, "numeric divergence at round {round}: {detail}"),
            },
            SqloopError::BudgetExceeded { what, round } => {
                write!(f, "{what} budget exhausted at round {round}")
            }
            SqloopError::Task {
                partition,
                attempt,
                source,
            } => write!(
                f,
                "task on partition {partition} failed after {attempt} attempt(s): {source}"
            ),
        }
    }
}

impl std::error::Error for SqloopError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqloopError::Db(e) => Some(e),
            SqloopError::Task { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<DbError> for SqloopError {
    fn from(e: DbError) -> Self {
        SqloopError::Db(e)
    }
}

/// Result alias for middleware operations.
pub type SqloopResult<T> = Result<T, SqloopError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SqloopError::from(DbError::NotFound("table r".into()));
        assert!(e.to_string().contains("not found"));
        assert!(std::error::Error::source(&e).is_some());
        let g = SqloopError::Grammar("expected UNTIL".into());
        assert!(std::error::Error::source(&g).is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SqloopError>();
    }

    #[test]
    fn task_display_and_source() {
        let e = SqloopError::Task {
            partition: 7,
            attempt: 3,
            source: Box::new(SqloopError::from(DbError::Connection("dropped".into()))),
        };
        let text = e.to_string();
        assert!(text.contains("partition 7"), "{text}");
        assert!(text.contains("3 attempt"), "{text}");
        assert!(text.contains("dropped"), "{text}");
        let src = std::error::Error::source(&e).expect("task has a source");
        assert!(src.to_string().contains("dropped"));
    }

    #[test]
    fn retryability_classification() {
        assert!(SqloopError::from(DbError::Connection("x".into())).is_retryable());
        assert!(SqloopError::from(DbError::LockTimeout("x".into())).is_retryable());
        assert!(SqloopError::from(DbError::TxnAborted("x".into())).is_retryable());
        assert!(!SqloopError::from(DbError::Parse("x".into())).is_retryable());
        assert!(!SqloopError::from(DbError::NotFound("x".into())).is_retryable());
        assert!(!SqloopError::Grammar("x".into()).is_retryable());
        assert!(!SqloopError::Semantic("x".into()).is_retryable());
        assert!(!SqloopError::Config("x".into()).is_retryable());
        assert!(SqloopError::Worker("pool died".into()).is_retryable());
        assert!(SqloopError::WorkerPanic {
            worker: Some(2),
            detail: "chaos: injected panic".into(),
        }
        .is_retryable());
        assert!(SqloopError::WorkerPanic {
            worker: None,
            detail: "every worker exited".into(),
        }
        .is_retryable());
        assert!(SqloopError::WorkerStalled {
            worker: 1,
            partition: 4,
            waited_ms: 500,
        }
        .is_retryable());
        assert!(!SqloopError::Checkpoint("bad checksum".into()).is_retryable());
        // load shedding backs off and retries; governance verdicts do not
        assert!(SqloopError::from(DbError::Overloaded("shed".into())).is_retryable());
        assert!(!SqloopError::from(DbError::BudgetExceeded("mem".into())).is_retryable());
        assert!(!SqloopError::from(DbError::Timeout("deadline".into())).is_retryable());
        assert!(!SqloopError::NumericDivergence {
            partition: Some(3),
            round: 9,
            detail: "SUM(rank) is inf".into(),
        }
        .is_retryable());
        assert!(!SqloopError::BudgetExceeded {
            what: "max_rounds".into(),
            round: 50,
        }
        .is_retryable());
    }

    #[test]
    fn governance_errors_display_their_evidence() {
        let d = SqloopError::NumericDivergence {
            partition: Some(3),
            round: 9,
            detail: "SUM(rank) is inf".into(),
        };
        let text = d.to_string();
        assert!(text.contains("partition 3"), "{text}");
        assert!(text.contains("round 9"), "{text}");
        assert!(text.contains("inf"), "{text}");
        let whole = SqloopError::NumericDivergence {
            partition: None,
            round: 2,
            detail: "delta not shrinking".into(),
        };
        assert!(!whole.to_string().contains("partition"), "{whole}");
        let b = SqloopError::BudgetExceeded {
            what: "max_rounds".into(),
            round: 50,
        };
        let text = b.to_string();
        assert!(text.contains("max_rounds"), "{text}");
        assert!(text.contains("round 50"), "{text}");
    }

    #[test]
    fn supervision_errors_display_their_evidence() {
        let p = SqloopError::WorkerPanic {
            worker: Some(3),
            detail: "chaos: injected panic".into(),
        };
        let text = p.to_string();
        assert!(text.contains("worker 3"), "{text}");
        assert!(text.contains("injected panic"), "{text}");
        let pool = SqloopError::WorkerPanic {
            worker: None,
            detail: "every worker exited with 2 task(s) in flight".into(),
        };
        assert!(pool.to_string().contains("every worker exited"), "{pool}");
        let s = SqloopError::WorkerStalled {
            worker: 1,
            partition: 4,
            waited_ms: 750,
        };
        let text = s.to_string();
        assert!(text.contains("worker 1"), "{text}");
        assert!(text.contains("partition 4"), "{text}");
        assert!(text.contains("750ms"), "{text}");
    }

    #[test]
    fn task_retryability_delegates_to_its_source() {
        let transient = SqloopError::Task {
            partition: 0,
            attempt: 4,
            source: Box::new(SqloopError::from(DbError::LockTimeout("busy".into()))),
        };
        assert!(transient.is_retryable());
        let fatal = SqloopError::Task {
            partition: 0,
            attempt: 1,
            source: Box::new(SqloopError::Semantic("bad plan".into())),
        };
        assert!(!fatal.is_retryable());
        // nesting keeps delegating
        let nested = SqloopError::Task {
            partition: 1,
            attempt: 2,
            source: Box::new(transient),
        };
        assert!(nested.is_retryable());
    }
}
