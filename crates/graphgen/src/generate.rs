//! Seeded synthetic graph generators.
//!
//! Each generator reproduces the *structural property* of one SNAP dataset
//! that the paper's corresponding experiment exercises (DESIGN.md §2):
//! power-law in-degrees for PageRank convergence, community structure with a
//! traversal frontier for SSSP, and long click-paths for the descendant
//! query. All generators are deterministic in their seed.

use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Preferential-attachment web graph (stand-in for SNAP `web-Google`).
///
/// Every new node links to `edges_per_node` targets chosen proportionally to
/// current in-degree (plus one smoothing), yielding the heavy-tailed
/// in-degree distribution that makes PageRank converge unevenly across
/// partitions — the effect the asynchronous schedulers exploit.
///
/// # Panics
/// Panics if `nodes < 2` or `edges_per_node == 0`.
pub fn web_graph(nodes: usize, edges_per_node: usize, seed: u64) -> Graph {
    assert!(nodes >= 2, "need at least two nodes");
    assert!(edges_per_node >= 1, "need at least one edge per node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(nodes * edges_per_node);
    // repeated-endpoint list implements preferential attachment in O(1)
    let mut targets: Vec<NodeId> = vec![0, 1];
    edges.push((0, 1));
    edges.push((1, 0));
    for v in 2..nodes as NodeId {
        for _ in 0..edges_per_node {
            let t = targets[rng.gen_range(0..targets.len())];
            if t != v {
                edges.push((v, t));
                targets.push(t);
            }
        }
        targets.push(v);
    }
    // sprinkle back-links so the graph is not a DAG (web graphs have cycles)
    let back_links = nodes / 10;
    for _ in 0..back_links {
        let s = rng.gen_range(0..nodes as NodeId);
        let d = rng.gen_range(0..nodes as NodeId);
        if s != d {
            edges.push((s, d));
        }
    }
    Graph::from_edges(edges).simplified()
}

/// Ego/social network with dense circles and sparse bridges (stand-in for
/// the SNAP Twitter ego-network dataset).
///
/// Nodes are grouped into circles of `circle_size`; within a circle each
/// node links to `intra_links` random members; consecutive circles are
/// bridged by a single edge, which gives SSSP a real frontier to traverse —
/// only a few partitions are active at a time, the property prioritized
/// scheduling exploits (paper §VI-B).
///
/// # Panics
/// Panics if `circles == 0` or `circle_size < 2`.
pub fn ego_network(circles: usize, circle_size: usize, intra_links: usize, seed: u64) -> Graph {
    assert!(circles >= 1, "need at least one circle");
    assert!(circle_size >= 2, "circles need at least two members");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for c in 0..circles {
        let base = (c * circle_size) as NodeId;
        for i in 0..circle_size as NodeId {
            let u = base + i;
            for _ in 0..intra_links.max(1) {
                let v = base + rng.gen_range(0..circle_size) as NodeId;
                if u != v {
                    edges.push((u, v));
                }
            }
            // ring inside the circle keeps it strongly connected
            edges.push((u, base + (i + 1) % circle_size as NodeId));
        }
        if c + 1 < circles {
            // one bridge to the next circle
            let from = base + rng.gen_range(0..circle_size) as NodeId;
            let to = ((c + 1) * circle_size) as NodeId + rng.gen_range(0..circle_size) as NodeId;
            edges.push((from, to));
        }
    }
    Graph::from_edges(edges).simplified()
}

/// Two-domain hyperlink graph with deep click-paths (stand-in for SNAP
/// `web-BerkStan`).
///
/// Pages form `depth` layers per domain; most links go one layer deeper
/// within the domain (long shortest paths — the descendant query's "how many
/// clicks" structure), some stay in-layer, and a few cross domains. The
/// returned graph contains paths of length ≥ `depth - 1` from node 0.
///
/// # Panics
/// Panics if `depth == 0` or `width == 0`.
pub fn two_domain_web(depth: usize, width: usize, seed: u64) -> Graph {
    assert!(depth >= 1 && width >= 1, "need positive depth and width");
    let mut rng = StdRng::seed_from_u64(seed);
    let node = |domain: usize, layer: usize, i: usize| -> NodeId {
        ((domain * depth + layer) * width + i) as NodeId
    };
    let mut edges = Vec::new();
    for domain in 0..2 {
        for layer in 0..depth {
            for i in 0..width {
                let u = node(domain, layer, i);
                if layer + 1 < depth {
                    // the "next click" chain: guarantees a path down the layers
                    edges.push((u, node(domain, layer + 1, i)));
                    // one extra deeper link for branching
                    edges.push((u, node(domain, layer + 1, rng.gen_range(0..width))));
                }
                // in-layer link
                if width > 1 {
                    let j = rng.gen_range(0..width);
                    if j != i {
                        edges.push((u, node(domain, layer, j)));
                    }
                }
                // occasional cross-domain link at matching depth
                if rng.gen_bool(0.05) {
                    edges.push((u, node(1 - domain, layer, rng.gen_range(0..width))));
                }
            }
        }
    }
    Graph::from_edges(edges).simplified()
}

/// Uniform random digraph `G(n, m)` (baseline/testing).
///
/// # Panics
/// Panics if `nodes < 2`.
pub fn uniform_random(nodes: usize, edges: usize, seed: u64) -> Graph {
    assert!(nodes >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut list = Vec::with_capacity(edges);
    while list.len() < edges {
        let s = rng.gen_range(0..nodes as NodeId);
        let d = rng.gen_range(0..nodes as NodeId);
        if s != d {
            list.push((s, d));
        }
    }
    Graph::from_edges(list)
}

/// A simple directed chain `0 → 1 → … → n-1` (tests and DQ depth probes).
///
/// # Panics
/// Panics if `nodes < 2`.
pub fn chain(nodes: usize) -> Graph {
    assert!(nodes >= 2, "need at least two nodes");
    Graph::from_edges((0..nodes as NodeId - 1).map(|i| (i, i + 1)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(web_graph(200, 3, 42), web_graph(200, 3, 42));
        assert_ne!(web_graph(200, 3, 42), web_graph(200, 3, 43));
        assert_eq!(ego_network(5, 10, 3, 1), ego_network(5, 10, 3, 1));
        assert_eq!(two_domain_web(10, 5, 7), two_domain_web(10, 5, 7));
        assert_eq!(uniform_random(50, 200, 9), uniform_random(50, 200, 9));
    }

    #[test]
    fn web_graph_has_heavy_tail() {
        let g = web_graph(2000, 3, 7);
        // in-degree distribution: max should far exceed the mean
        let mut indeg = std::collections::HashMap::new();
        for &(_, d) in g.edges() {
            *indeg.entry(d).or_insert(0usize) += 1;
        }
        let max = *indeg.values().max().unwrap();
        let mean = g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            max as f64 > mean * 10.0,
            "expected heavy tail, max={max} mean={mean}"
        );
    }

    #[test]
    fn ego_network_is_traversable_across_circles() {
        let g = ego_network(8, 12, 3, 3);
        let d = g.bfs_hops(0);
        // nodes in the last circle are reachable
        let last_circle_node = (7 * 12) as NodeId;
        assert!(
            d.keys().any(|&n| n >= last_circle_node),
            "bridges should connect circles"
        );
    }

    #[test]
    fn two_domain_web_has_deep_paths() {
        let depth = 120;
        let g = two_domain_web(depth, 4, 11);
        let d = g.bfs_hops(0);
        let max_hops = d.values().copied().max().unwrap();
        assert!(
            max_hops >= (depth as u64) - 1,
            "expected ≥{} hops, got {max_hops}",
            depth - 1
        );
    }

    #[test]
    fn chain_depth() {
        let g = chain(101);
        let d = g.bfs_hops(0);
        assert_eq!(d[&100], 100);
    }

    #[test]
    fn uniform_random_has_requested_edges() {
        let g = uniform_random(100, 500, 5);
        assert_eq!(g.edge_count(), 500);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_graph_panics() {
        let _ = web_graph(1, 1, 0);
    }
}
