//! Deterministic fault injection for resilience testing.
//!
//! [`ChaosDriver`] wraps any [`Driver`] and injects seeded, reproducible
//! faults into the connections it mints: refused connects, failed
//! statements, added latency, and mid-session connection drops. Faults are
//! injected *before* the wrapped operation runs, so a faulted statement has
//! no partial effect — which is what makes statement-level replay by the
//! caller safe.
//!
//! Injection is driven by one RNG per connection, seeded from
//! `(config.seed, connection index)`, so a given topology of connections
//! sees the same fault sequence on every run regardless of wall-clock
//! timing. An exact-position `schedule` can pin faults to specific global
//! operation indices for tests.

use crate::driver::{Connection, Driver};
use crate::retry::RetryPolicy;
use sqldb::{DbError, DbResult, EngineProfile, IsolationLevel, StmtOutput, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The kinds of fault [`ChaosDriver`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `Driver::connect` fails with [`DbError::Connection`].
    ConnectRefused,
    /// A statement fails with [`DbError::LockTimeout`] before executing;
    /// the connection stays usable.
    StmtError,
    /// A statement is delayed by [`ChaosConfig::latency`] and then runs
    /// normally.
    Latency,
    /// The connection "drops": the statement fails with
    /// [`DbError::Connection`] and every later use of this connection
    /// fails the same way.
    Drop,
    /// The statement hangs for [`ChaosConfig::stall`] (interruptible via
    /// [`ChaosStats::heal_stalls`]) and then runs normally — a slow
    /// statement, not a dead worker. Long enough to trip a tight
    /// stall detector, which is exactly the hazard [`FaultKind`] exists
    /// to exercise.
    StallMs,
    /// The statement hangs forever: the injecting thread sleeps until
    /// [`ChaosStats::heal_stalls`] releases it, then fails with
    /// [`DbError::Connection`] *without executing* — so a supervisor that
    /// abandoned the worker and replayed its task elsewhere never sees
    /// the statement applied twice. Models a truly hung worker.
    StallForever,
    /// The statement panics (`panic!`) before executing — models a bug in
    /// the driver/engine boundary unwinding through a worker thread.
    Panic,
}

/// Relative weights for randomly chosen fault kinds (a zero weight
/// disables that kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWeights {
    /// Weight of [`FaultKind::ConnectRefused`].
    pub connect_refused: u32,
    /// Weight of [`FaultKind::StmtError`].
    pub stmt_error: u32,
    /// Weight of [`FaultKind::Latency`].
    pub latency: u32,
    /// Weight of [`FaultKind::Drop`].
    pub drop: u32,
    /// Weight of [`FaultKind::StallMs`] (off by default — stalls change
    /// run timing, so tests opt in).
    pub stall: u32,
    /// Weight of [`FaultKind::Panic`] (off by default).
    pub panic: u32,
}

impl Default for FaultWeights {
    fn default() -> FaultWeights {
        FaultWeights {
            connect_refused: 1,
            stmt_error: 4,
            latency: 2,
            drop: 1,
            stall: 0,
            panic: 0,
        }
    }
}

/// A fault pinned to an exact global operation index (0-based count of
/// statements and connects passing through the driver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Which operation (in global arrival order) to fault.
    pub nth_op: u64,
    /// What to inject.
    pub kind: FaultKind,
}

/// Configuration for a [`ChaosDriver`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed for all randomized decisions; same seed → same per-connection
    /// fault stream.
    pub seed: u64,
    /// Probability in `[0, 1]` that an eligible operation faults.
    pub fault_rate: f64,
    /// Relative likelihood of each fault kind when one fires.
    pub weights: FaultWeights,
    /// Delay injected by [`FaultKind::Latency`].
    pub latency: Duration,
    /// How long a [`FaultKind::StallMs`] statement hangs before
    /// proceeding.
    pub stall: Duration,
    /// Total fault budget across the driver (`None` = unlimited). Once
    /// spent, the outage "heals" and operations pass through untouched.
    pub max_faults: Option<u64>,
    /// When set, only statements containing this substring are eligible
    /// for statement-level faults (connect faults are unaffected). Lets
    /// tests target one subsystem's SQL while leaving the rest reliable.
    pub match_substring: Option<String>,
    /// Exact-position faults checked before any random draw.
    pub schedule: Vec<ScheduledFault>,
    /// The first N connections are never faulted (and their statements
    /// pass through untouched) — useful to shield setup/control
    /// connections while chaosing workers.
    pub skip_connections: usize,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            fault_rate: 0.05,
            weights: FaultWeights::default(),
            latency: Duration::from_millis(2),
            stall: Duration::from_millis(50),
            max_faults: None,
            match_substring: None,
            schedule: Vec::new(),
            skip_connections: 0,
        }
    }
}

impl ChaosConfig {
    /// A config with the given seed and fault rate, defaults elsewhere.
    pub fn seeded(seed: u64, fault_rate: f64) -> ChaosConfig {
        ChaosConfig {
            seed,
            fault_rate,
            ..ChaosConfig::default()
        }
    }
}

#[derive(Debug, Default)]
struct StatsInner {
    ops: AtomicU64,
    faults: AtomicU64,
    connects_refused: AtomicU64,
    stmt_errors: AtomicU64,
    latencies: AtomicU64,
    drops: AtomicU64,
    stalls: AtomicU64,
    panics: AtomicU64,
    /// When set, every in-flight or future stall (finite or forever)
    /// releases immediately instead of sleeping.
    stalls_released: std::sync::atomic::AtomicBool,
}

/// Counters of everything a [`ChaosDriver`] injected. Cheap to clone;
/// clones share the same counters.
#[derive(Debug, Clone, Default)]
pub struct ChaosStats(Arc<StatsInner>);

impl ChaosStats {
    /// Operations (connects + statements) that passed through the driver.
    pub fn ops(&self) -> u64 {
        self.0.ops.load(Ordering::Relaxed)
    }

    /// Total faults injected, of any kind.
    pub fn faults(&self) -> u64 {
        self.0.faults.load(Ordering::Relaxed)
    }

    /// Injected connect refusals.
    pub fn connects_refused(&self) -> u64 {
        self.0.connects_refused.load(Ordering::Relaxed)
    }

    /// Injected statement errors.
    pub fn stmt_errors(&self) -> u64 {
        self.0.stmt_errors.load(Ordering::Relaxed)
    }

    /// Injected latency delays.
    pub fn latencies(&self) -> u64 {
        self.0.latencies.load(Ordering::Relaxed)
    }

    /// Injected connection drops.
    pub fn drops(&self) -> u64 {
        self.0.drops.load(Ordering::Relaxed)
    }

    /// Injected stalls (finite and forever).
    pub fn stalls(&self) -> u64 {
        self.0.stalls.load(Ordering::Relaxed)
    }

    /// Injected panics.
    pub fn panics(&self) -> u64 {
        self.0.panics.load(Ordering::Relaxed)
    }

    /// Releases every stalled thread, now and in the future. A released
    /// [`FaultKind::StallForever`] fails with [`DbError::Connection`]
    /// without executing its statement; a released [`FaultKind::StallMs`]
    /// stops sleeping and proceeds. Call this at the end of a stall test
    /// so abandoned worker threads exit instead of leaking.
    pub fn heal_stalls(&self) {
        self.0.stalls_released.store(true, Ordering::SeqCst);
    }

    fn stalls_released(&self) -> bool {
        self.0.stalls_released.load(Ordering::SeqCst)
    }

    /// Tries to claim one unit of fault budget.
    fn claim(&self, max: Option<u64>) -> bool {
        match max {
            None => {
                self.0.faults.fetch_add(1, Ordering::Relaxed);
                true
            }
            Some(cap) => {
                let mut cur = self.0.faults.load(Ordering::Relaxed);
                loop {
                    if cur >= cap {
                        return false;
                    }
                    match self.0.faults.compare_exchange_weak(
                        cur,
                        cur + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return true,
                        Err(seen) => cur = seen,
                    }
                }
            }
        }
    }

    fn record(&self, kind: FaultKind) {
        let (counter, name) = match kind {
            FaultKind::ConnectRefused => (
                &self.0.connects_refused,
                "dbcp.chaos.injected.connect_refused",
            ),
            FaultKind::StmtError => (&self.0.stmt_errors, "dbcp.chaos.injected.stmt_error"),
            FaultKind::Latency => (&self.0.latencies, "dbcp.chaos.injected.latency"),
            FaultKind::Drop => (&self.0.drops, "dbcp.chaos.injected.drop"),
            FaultKind::StallMs | FaultKind::StallForever => {
                (&self.0.stalls, "dbcp.chaos.injected.stall")
            }
            FaultKind::Panic => (&self.0.panics, "dbcp.chaos.injected.panic"),
        };
        counter.fetch_add(1, Ordering::Relaxed);
        let reg = obs::global();
        reg.counter("dbcp.chaos.injected.total").inc();
        reg.counter(name).inc();
    }
}

/// How often a stalled thread re-checks [`ChaosStats::heal_stalls`].
const STALL_POLL: Duration = Duration::from_millis(5);

/// SplitMix64 — deterministic, cheap, good enough for fault placement.
#[derive(Debug, Clone)]
struct ChaosRng(u64);

impl ChaosRng {
    fn for_connection(seed: u64, conn_index: u64) -> ChaosRng {
        ChaosRng(seed ^ conn_index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5851_F42D_4C95_7F2D)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A [`Driver`] decorator injecting deterministic faults (see the module
/// docs).
pub struct ChaosDriver {
    inner: Arc<dyn Driver>,
    config: ChaosConfig,
    stats: ChaosStats,
    conn_counter: AtomicU64,
}

impl std::fmt::Debug for ChaosDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosDriver")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl ChaosDriver {
    /// Wraps `inner` with fault injection per `config`.
    pub fn new(inner: Arc<dyn Driver>, config: ChaosConfig) -> ChaosDriver {
        ChaosDriver {
            inner,
            config,
            stats: ChaosStats::default(),
            conn_counter: AtomicU64::new(0),
        }
    }

    /// The shared injection counters.
    pub fn stats(&self) -> ChaosStats {
        self.stats.clone()
    }

    /// The active configuration.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }
}

/// Picks a fault kind for this operation, or `None` to pass through.
/// `for_connect` limits the draw to connect-applicable kinds.
fn draw_fault(
    config: &ChaosConfig,
    stats: &ChaosStats,
    rng: &mut ChaosRng,
    op: u64,
    for_connect: bool,
) -> Option<FaultKind> {
    if let Some(s) = config.schedule.iter().find(|s| s.nth_op == op) {
        return stats.claim(config.max_faults).then_some(s.kind);
    }
    if rng.unit_f64() >= config.fault_rate {
        return None;
    }
    let w = config.weights;
    let (kinds, weights): (&[FaultKind], &[u32]) = if for_connect {
        (&[FaultKind::ConnectRefused], &[w.connect_refused])
    } else {
        (
            &[
                FaultKind::StmtError,
                FaultKind::Latency,
                FaultKind::Drop,
                FaultKind::StallMs,
                FaultKind::Panic,
            ],
            &[w.stmt_error, w.latency, w.drop, w.stall, w.panic],
        )
    };
    let total: u64 = weights.iter().map(|&x| u64::from(x)).sum();
    if total == 0 {
        return None;
    }
    let mut roll = rng.next_u64() % total;
    for (&kind, &weight) in kinds.iter().zip(weights) {
        let weight = u64::from(weight);
        if roll < weight {
            return stats.claim(config.max_faults).then_some(kind);
        }
        roll -= weight;
    }
    None
}

impl Driver for ChaosDriver {
    fn connect(&self) -> DbResult<Box<dyn Connection>> {
        let conn_index = self.conn_counter.fetch_add(1, Ordering::Relaxed);
        let op = self.stats.0.ops.fetch_add(1, Ordering::Relaxed);
        let mut rng = ChaosRng::for_connection(self.config.seed, conn_index);
        let shielded = (conn_index as usize) < self.config.skip_connections;
        if !shielded {
            if let Some(FaultKind::ConnectRefused) =
                draw_fault(&self.config, &self.stats, &mut rng, op, true)
            {
                self.stats.record(FaultKind::ConnectRefused);
                return Err(DbError::Connection(format!(
                    "chaos: connect refused (connection {conn_index})"
                )));
            }
        }
        let inner = self.inner.connect()?;
        Ok(Box::new(ChaosConnection {
            inner,
            driver_stats: self.stats.clone(),
            config: self.config.clone(),
            rng,
            shielded,
            dropped: false,
            stmt_sqls: HashMap::new(),
        }))
    }

    fn profile(&self) -> EngineProfile {
        self.inner.profile()
    }

    fn engine_stats(&self) -> Option<sqldb::StatsSnapshot> {
        self.inner.engine_stats()
    }

    fn plan_cache_stats(&self) -> Option<sqldb::PlanCacheStats> {
        self.inner.plan_cache_stats()
    }
}

/// A connection minted by [`ChaosDriver`]; injects statement-level faults.
pub struct ChaosConnection {
    inner: Box<dyn Connection>,
    driver_stats: ChaosStats,
    config: ChaosConfig,
    rng: ChaosRng,
    shielded: bool,
    dropped: bool,
    /// SQL text per prepared id, so prepared executions can be scoped by
    /// [`ChaosConfig::match_substring`] like their textual twins.
    stmt_sqls: HashMap<u64, String>,
}

impl std::fmt::Debug for ChaosConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosConnection")
            .field("dropped", &self.dropped)
            .finish_non_exhaustive()
    }
}

impl ChaosConnection {
    /// Runs the injection decision before a statement. `Ok(())` means the
    /// statement should proceed (possibly after injected latency).
    fn before_stmt(&mut self, sql: &str) -> DbResult<()> {
        if self.dropped {
            return Err(DbError::Connection("chaos: connection was dropped".into()));
        }
        let op = self.driver_stats.0.ops.fetch_add(1, Ordering::Relaxed);
        if self.shielded {
            return Ok(());
        }
        if let Some(pat) = &self.config.match_substring {
            if !sql.contains(pat.as_str()) {
                return Ok(());
            }
        }
        match draw_fault(&self.config, &self.driver_stats, &mut self.rng, op, false) {
            None => Ok(()),
            Some(FaultKind::Latency) => {
                self.driver_stats.record(FaultKind::Latency);
                std::thread::sleep(self.config.latency);
                Ok(())
            }
            Some(FaultKind::StmtError) => {
                self.driver_stats.record(FaultKind::StmtError);
                Err(DbError::LockTimeout(
                    "chaos: injected statement failure".into(),
                ))
            }
            Some(FaultKind::Drop) | Some(FaultKind::ConnectRefused) => {
                self.driver_stats.record(FaultKind::Drop);
                self.dropped = true;
                Err(DbError::Connection("chaos: connection dropped".into()))
            }
            Some(FaultKind::StallMs) => {
                self.driver_stats.record(FaultKind::StallMs);
                let deadline = std::time::Instant::now() + self.config.stall;
                while std::time::Instant::now() < deadline {
                    if self.driver_stats.stalls_released() {
                        break;
                    }
                    std::thread::sleep(STALL_POLL.min(self.config.stall));
                }
                Ok(())
            }
            Some(FaultKind::StallForever) => {
                self.driver_stats.record(FaultKind::StallForever);
                while !self.driver_stats.stalls_released() {
                    std::thread::sleep(STALL_POLL);
                }
                // released: fail WITHOUT executing, and poison the
                // connection — by now a supervisor has replayed this
                // statement elsewhere, so running it here would apply it
                // twice
                self.dropped = true;
                Err(DbError::Connection(
                    "chaos: stalled connection released without executing".into(),
                ))
            }
            Some(FaultKind::Panic) => {
                self.driver_stats.record(FaultKind::Panic);
                panic!("chaos: injected panic before statement");
            }
        }
    }
}

impl Connection for ChaosConnection {
    fn execute(&mut self, sql: &str) -> DbResult<StmtOutput> {
        self.before_stmt(sql)?;
        self.inner.execute(sql)
    }

    fn begin(&mut self) -> DbResult<()> {
        if self.dropped {
            return Err(DbError::Connection("chaos: connection was dropped".into()));
        }
        self.inner.begin()
    }

    fn commit(&mut self) -> DbResult<()> {
        if self.dropped {
            return Err(DbError::Connection("chaos: connection was dropped".into()));
        }
        self.inner.commit()
    }

    fn rollback(&mut self) -> DbResult<()> {
        if self.dropped {
            return Err(DbError::Connection("chaos: connection was dropped".into()));
        }
        self.inner.rollback()
    }

    fn set_isolation(&mut self, level: IsolationLevel) -> DbResult<()> {
        if self.dropped {
            return Err(DbError::Connection("chaos: connection was dropped".into()));
        }
        self.inner.set_isolation(level)
    }

    fn ping(&mut self) -> bool {
        !self.dropped && self.inner.ping()
    }

    fn set_statement_timeout(&mut self, timeout: Option<Duration>) -> DbResult<bool> {
        if self.dropped {
            return Err(DbError::Connection("chaos: connection was dropped".into()));
        }
        self.inner.set_statement_timeout(timeout)
    }

    fn prepare_statement(&mut self, sql: &str) -> DbResult<(u64, usize)> {
        self.before_stmt(sql)?;
        let (id, n) = self.inner.prepare_statement(sql)?;
        self.stmt_sqls.insert(id, sql.to_owned());
        Ok((id, n))
    }

    fn execute_prepared(&mut self, stmt_id: u64, params: &[Value]) -> DbResult<StmtOutput> {
        // injection sees the statement's SQL text, so substring scoping
        // treats prepared and textual execution alike
        let sql = self.stmt_sqls.get(&stmt_id).cloned().unwrap_or_default();
        self.before_stmt(&sql)?;
        self.inner.execute_prepared(stmt_id, params)
    }

    fn close_prepared(&mut self, stmt_id: u64) -> DbResult<()> {
        if self.dropped {
            return Err(DbError::Connection("chaos: connection was dropped".into()));
        }
        self.stmt_sqls.remove(&stmt_id);
        self.inner.close_prepared(stmt_id)
    }

    fn prepared_epoch(&self) -> u64 {
        self.inner.prepared_epoch()
    }

    // run_pipeline deliberately uses the trait default (statement-at-a-time
    // through `execute`/`execute_prepared` above), so each step passes its
    // own injection decision — a pipeline under chaos faults exactly like
    // the equivalent statement sequence.

    fn profile(&self) -> EngineProfile {
        self.inner.profile()
    }
}

/// Convenience: wrap a driver and return both the chaos driver and its
/// stats handle.
pub fn with_chaos(inner: Arc<dyn Driver>, config: ChaosConfig) -> (Arc<ChaosDriver>, ChaosStats) {
    let driver = Arc::new(ChaosDriver::new(inner, config));
    let stats = driver.stats();
    (driver, stats)
}

/// Opens a connection through `driver` under `policy`, treating injected
/// refusals like any other transient connect failure.
///
/// # Errors
/// The last connect error once the policy's attempts are exhausted.
pub fn connect_with_retry(
    driver: &Arc<dyn Driver>,
    policy: &RetryPolicy,
) -> DbResult<Box<dyn Connection>> {
    policy.run(|_| driver.connect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::LocalDriver;
    use sqldb::{Database, EngineProfile};

    fn local() -> Arc<dyn Driver> {
        let db = Database::new(EngineProfile::Postgres);
        let mut s = db.connect();
        s.execute("CREATE TABLE t (a INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        Arc::new(LocalDriver::new(db))
    }

    /// Runs `n` statements through a fresh chaos driver and returns the
    /// outcome pattern (true = ok).
    fn run_pattern(config: ChaosConfig, n: usize) -> (Vec<bool>, ChaosStats) {
        let (driver, stats) = with_chaos(local(), config);
        let driver: Arc<dyn Driver> = driver;
        // seeded connect refusals are possible; ride through them
        let mut conn = connect_with_retry(&driver, &RetryPolicy::new(20, Duration::ZERO)).unwrap();
        let pattern = (0..n)
            .map(|_| conn.execute("SELECT a FROM t").is_ok())
            .collect();
        (pattern, stats)
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let config = ChaosConfig::seeded(42, 0.3);
        let (a, stats_a) = run_pattern(config.clone(), 200);
        let (b, stats_b) = run_pattern(config, 200);
        assert_eq!(a, b);
        assert_eq!(stats_a.faults(), stats_b.faults());
        assert!(stats_a.faults() > 0, "0.3 rate over 200 ops must fault");
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = run_pattern(ChaosConfig::seeded(1, 0.3), 200);
        let (b, _) = run_pattern(ChaosConfig::seeded(2, 0.3), 200);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let (pattern, stats) = run_pattern(ChaosConfig::seeded(9, 0.0), 100);
        assert!(pattern.iter().all(|&ok| ok));
        assert_eq!(stats.faults(), 0);
    }

    #[test]
    fn fault_budget_heals_the_outage() {
        let config = ChaosConfig {
            max_faults: Some(3),
            weights: FaultWeights {
                connect_refused: 0,
                stmt_error: 1,
                latency: 0,
                drop: 0,
                ..FaultWeights::default()
            },
            ..ChaosConfig::seeded(7, 1.0)
        };
        let (pattern, stats) = run_pattern(config, 50);
        assert_eq!(stats.faults(), 3);
        assert_eq!(pattern.iter().filter(|&&ok| !ok).count(), 3);
        // after the budget, everything passes
        assert!(pattern[3..].iter().all(|&ok| ok));
    }

    #[test]
    fn match_substring_scopes_faults() {
        let config = ChaosConfig {
            match_substring: Some("__msg_".into()),
            weights: FaultWeights {
                connect_refused: 0,
                stmt_error: 1,
                latency: 0,
                drop: 0,
                ..FaultWeights::default()
            },
            ..ChaosConfig::seeded(5, 1.0)
        };
        let (driver, stats) = with_chaos(local(), config);
        let mut conn = (driver.as_ref() as &dyn Driver).connect().unwrap();
        // non-matching statements always pass
        for _ in 0..20 {
            conn.execute("SELECT a FROM t").unwrap();
        }
        assert_eq!(stats.faults(), 0);
        // matching statements fault at rate 1.0
        let err = conn.execute("DROP TABLE IF EXISTS pr__msg_0_0");
        assert!(matches!(err, Err(DbError::LockTimeout(_))), "{err:?}");
        assert_eq!(stats.stmt_errors(), 1);
    }

    #[test]
    fn drop_poisons_the_connection() {
        let config = ChaosConfig {
            weights: FaultWeights {
                connect_refused: 0,
                stmt_error: 0,
                latency: 0,
                drop: 1,
                ..FaultWeights::default()
            },
            ..ChaosConfig::seeded(3, 1.0)
        };
        let (driver, stats) = with_chaos(local(), config);
        let mut conn = (driver.as_ref() as &dyn Driver).connect().unwrap();
        let first = conn.execute("SELECT a FROM t");
        assert!(matches!(first, Err(DbError::Connection(_))), "{first:?}");
        // poisoned: every later use fails without touching the budget
        let faults_after_drop = stats.faults();
        for _ in 0..5 {
            assert!(matches!(
                conn.execute("SELECT a FROM t"),
                Err(DbError::Connection(_))
            ));
            assert!(!conn.ping());
        }
        assert_eq!(stats.faults(), faults_after_drop);
        // a fresh connection from the driver works again (budget permitting)
        let (driver2, _) = with_chaos(
            local(),
            ChaosConfig {
                max_faults: Some(1),
                weights: FaultWeights {
                    connect_refused: 0,
                    stmt_error: 0,
                    latency: 0,
                    drop: 1,
                    ..FaultWeights::default()
                },
                ..ChaosConfig::seeded(3, 1.0)
            },
        );
        let mut c = (driver2.as_ref() as &dyn Driver).connect().unwrap();
        assert!(c.execute("SELECT a FROM t").is_err());
        let mut c2 = (driver2.as_ref() as &dyn Driver).connect().unwrap();
        assert!(c2.execute("SELECT a FROM t").is_ok());
    }

    #[test]
    fn scheduled_faults_fire_at_exact_ops() {
        let config = ChaosConfig {
            fault_rate: 0.0, // only the schedule fires
            schedule: vec![
                ScheduledFault {
                    nth_op: 3,
                    kind: FaultKind::StmtError,
                },
                ScheduledFault {
                    nth_op: 5,
                    kind: FaultKind::Latency,
                },
            ],
            latency: Duration::from_millis(1),
            ..ChaosConfig::seeded(0, 0.0)
        };
        let (driver, stats) = with_chaos(local(), config);
        // op 0 is the connect
        let mut conn = (driver.as_ref() as &dyn Driver).connect().unwrap();
        let mut outcomes = Vec::new();
        for _ in 1..=6 {
            outcomes.push(conn.execute("SELECT a FROM t").is_ok());
        }
        // ops 1..=6; op 3 errors, op 5 only delays
        assert_eq!(outcomes, vec![true, true, false, true, true, true]);
        assert_eq!(stats.stmt_errors(), 1);
        assert_eq!(stats.latencies(), 1);
    }

    #[test]
    fn connect_refusal_and_retry_recovery() {
        let config = ChaosConfig {
            max_faults: Some(2),
            weights: FaultWeights {
                connect_refused: 1,
                stmt_error: 0,
                latency: 0,
                drop: 0,
                ..FaultWeights::default()
            },
            ..ChaosConfig::seeded(11, 1.0)
        };
        let (driver, stats) = with_chaos(local(), config);
        let driver: Arc<dyn Driver> = driver;
        // two refusals, then the budget heals the outage
        let policy = RetryPolicy::new(5, Duration::ZERO);
        let mut conn = connect_with_retry(&driver, &policy).unwrap();
        assert!(conn.execute("SELECT a FROM t").is_ok());
        assert_eq!(stats.connects_refused(), 2);
    }

    #[test]
    fn stall_ms_delays_then_proceeds() {
        let config = ChaosConfig {
            fault_rate: 0.0,
            stall: Duration::from_millis(30),
            schedule: vec![ScheduledFault {
                nth_op: 1,
                kind: FaultKind::StallMs,
            }],
            ..ChaosConfig::seeded(0, 0.0)
        };
        let (driver, stats) = with_chaos(local(), config);
        let mut conn = (driver.as_ref() as &dyn Driver).connect().unwrap();
        let t0 = std::time::Instant::now();
        conn.execute("SELECT a FROM t").unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(25),
            "stall should delay the statement"
        );
        assert_eq!(stats.stalls(), 1);
        // the connection stays healthy afterwards
        conn.execute("SELECT a FROM t").unwrap();
    }

    #[test]
    fn stall_forever_blocks_until_healed_and_never_executes() {
        let config = ChaosConfig {
            fault_rate: 0.0,
            schedule: vec![ScheduledFault {
                nth_op: 1,
                kind: FaultKind::StallForever,
            }],
            ..ChaosConfig::seeded(0, 0.0)
        };
        let (driver, stats) = with_chaos(local(), config);
        let mut conn = (driver.as_ref() as &dyn Driver).connect().unwrap();
        let stats2 = stats.clone();
        let h = std::thread::spawn(move || conn.execute("INSERT INTO t VALUES (2)"));
        // the statement is stalled, not running
        std::thread::sleep(Duration::from_millis(40));
        assert!(!h.is_finished(), "StallForever must hang until healed");
        stats2.heal_stalls();
        let out = h.join().unwrap();
        assert!(matches!(out, Err(DbError::Connection(_))), "{out:?}");
        assert_eq!(stats.stalls(), 1);
        // the row was NOT inserted: a healed stall must not execute
        let mut check = (driver.as_ref() as &dyn Driver).connect().unwrap();
        let rows = check.query("SELECT a FROM t").unwrap().rows;
        assert_eq!(rows.len(), 1, "stalled INSERT must not have applied");
    }

    #[test]
    fn panic_fault_unwinds_before_the_statement_runs() {
        let config = ChaosConfig {
            fault_rate: 0.0,
            schedule: vec![ScheduledFault {
                nth_op: 1,
                kind: FaultKind::Panic,
            }],
            ..ChaosConfig::seeded(0, 0.0)
        };
        let (driver, stats) = with_chaos(local(), config);
        let mut conn = (driver.as_ref() as &dyn Driver).connect().unwrap();
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            conn.execute("INSERT INTO t VALUES (3)")
        }));
        assert!(out.is_err(), "the injected panic must unwind");
        assert_eq!(stats.panics(), 1);
        let mut check = (driver.as_ref() as &dyn Driver).connect().unwrap();
        let rows = check.query("SELECT a FROM t").unwrap().rows;
        assert_eq!(rows.len(), 1, "panicked INSERT must not have applied");
    }

    #[test]
    fn skip_connections_shields_early_connections() {
        let config = ChaosConfig {
            skip_connections: 1,
            weights: FaultWeights {
                connect_refused: 1,
                stmt_error: 1,
                latency: 0,
                drop: 1,
                ..FaultWeights::default()
            },
            ..ChaosConfig::seeded(13, 1.0)
        };
        let (driver, stats) = with_chaos(local(), config);
        let mut first = (driver.as_ref() as &dyn Driver).connect().unwrap();
        for _ in 0..20 {
            first.execute("SELECT a FROM t").unwrap();
        }
        assert_eq!(stats.faults(), 0);
        // the second connection is not shielded
        let second = (driver.as_ref() as &dyn Driver).connect();
        assert!(
            second.is_err() || {
                let mut c = second.unwrap();
                (0..20).any(|_| c.execute("SELECT a FROM t").is_err())
            }
        );
        assert!(stats.faults() > 0);
    }
}
