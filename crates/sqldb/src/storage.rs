//! In-memory heap storage with primary-key and secondary indexes.

use crate::budget::{row_bytes, MemoryBudget};
use crate::error::{DbError, DbResult};
use crate::types::Schema;
use crate::value::{Row, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A heap table: slotted rows plus indexes.
///
/// Row slots are stable across updates; deletes tombstone the slot. The
/// primary-key index (present when the schema declares a PK) maps key value →
/// slot and enforces uniqueness, matching the `Rid` assumption SQLoop relies
/// on for partitioning and updating the CTE table.
#[derive(Debug)]
pub struct Table {
    schema: Schema,
    rows: Vec<Option<Row>>,
    live_count: usize,
    pk_index: Option<HashMap<Value, usize>>,
    secondary: Vec<SecondaryIndex>,
    /// Database-wide byte budget this table charges row payloads against
    /// (attached by the catalog on registration; detached tables — e.g.
    /// mid-construction — are unaccounted).
    budget: Option<Arc<MemoryBudget>>,
    /// Bytes this table has charged and not yet refunded.
    tracked_bytes: u64,
}

/// A single-column secondary index.
#[derive(Debug)]
pub struct SecondaryIndex {
    /// Index name (unique within the database).
    pub name: String,
    /// Indexed column offset.
    pub column: usize,
    /// Uniqueness enforced on insert/update.
    pub unique: bool,
    map: HashMap<Value, Vec<usize>>,
}

impl SecondaryIndex {
    fn insert(&mut self, key: Value, slot: usize) -> DbResult<()> {
        let entry = self.map.entry(key).or_default();
        if self.unique && !entry.is_empty() {
            return Err(DbError::Invalid(format!(
                "unique index {} violated",
                self.name
            )));
        }
        entry.push(slot);
        Ok(())
    }

    fn remove(&mut self, key: &Value, slot: usize) {
        if let Some(v) = self.map.get_mut(key) {
            v.retain(|s| *s != slot);
            if v.is_empty() {
                self.map.remove(key);
            }
        }
    }

    /// Slots whose indexed column equals `key`.
    pub fn lookup(&self, key: &Value) -> &[usize] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

impl Table {
    /// Creates an empty table for `schema`.
    pub fn new(schema: Schema) -> Table {
        let pk_index = schema.primary_key().map(|_| HashMap::new());
        Table {
            schema,
            rows: Vec::new(),
            live_count: 0,
            pk_index,
            secondary: Vec::new(),
            budget: None,
            tracked_bytes: 0,
        }
    }

    /// Attaches a memory budget, charging every live row already stored.
    ///
    /// # Errors
    /// Returns [`DbError::BudgetExceeded`] when the existing rows do not
    /// fit; the partial charge is refunded and the table stays detached.
    pub fn attach_budget(&mut self, budget: &Arc<MemoryBudget>) -> DbResult<()> {
        let mut charged = 0u64;
        for (_, row) in self.iter() {
            let n = row_bytes(row);
            if let Err(e) = budget.charge(n) {
                budget.refund(charged);
                return Err(e);
            }
            charged += n;
        }
        self.budget = Some(budget.clone());
        self.tracked_bytes = charged;
        Ok(())
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live (non-deleted) rows.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// True when the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Total slots including tombstones (used by undo bookkeeping).
    pub fn slot_count(&self) -> usize {
        self.rows.len()
    }

    /// Inserts a row (already coerced to the schema), returning its slot.
    ///
    /// # Errors
    /// Returns [`DbError::Invalid`] on primary-key or unique-index violation,
    /// or a NULL primary key.
    pub fn insert(&mut self, row: Row) -> DbResult<usize> {
        debug_assert_eq!(row.len(), self.schema.arity());
        let charge = match &self.budget {
            Some(b) => {
                let n = row_bytes(&row);
                b.charge(n)?;
                n
            }
            None => 0,
        };
        match self.insert_inner(row) {
            Ok(slot) => {
                self.tracked_bytes += charge;
                Ok(slot)
            }
            Err(e) => {
                if let Some(b) = &self.budget {
                    b.refund(charge);
                }
                Err(e)
            }
        }
    }

    fn insert_inner(&mut self, row: Row) -> DbResult<usize> {
        let slot = self.rows.len();
        if let (Some(pk_col), Some(idx)) = (self.schema.primary_key(), self.pk_index.as_mut()) {
            let key = row[pk_col].clone();
            if key.is_null() {
                return Err(DbError::Invalid("primary key cannot be NULL".into()));
            }
            if idx.contains_key(&key) {
                return Err(DbError::Invalid(format!("duplicate primary key {key}")));
            }
            idx.insert(key, slot);
        }
        for sec in &mut self.secondary {
            sec.insert(row[sec.column].clone(), slot)?;
        }
        self.rows.push(Some(row));
        self.live_count += 1;
        Ok(slot)
    }

    /// Reads the row at `slot` if live.
    pub fn row(&self, slot: usize) -> Option<&Row> {
        self.rows.get(slot).and_then(|r| r.as_ref())
    }

    /// Replaces the row at `slot`, maintaining all indexes.
    ///
    /// Returns the previous row.
    ///
    /// # Errors
    /// Returns [`DbError::Invalid`] when the slot is dead, or the new row
    /// violates the primary key or a unique index.
    pub fn update_slot(&mut self, slot: usize, new_row: Row) -> DbResult<Row> {
        debug_assert_eq!(new_row.len(), self.schema.arity());
        let old = self
            .rows
            .get(slot)
            .and_then(|r| r.clone())
            .ok_or_else(|| DbError::Invalid(format!("update of dead slot {slot}")))?;
        let (grow, shrink) = match &self.budget {
            Some(b) => {
                let nb = row_bytes(&new_row);
                let ob = row_bytes(&old);
                if nb > ob {
                    b.charge(nb - ob)?;
                    (nb - ob, 0)
                } else {
                    (0, ob - nb)
                }
            }
            None => (0, 0),
        };
        match self.update_slot_inner(slot, new_row, &old) {
            Ok(()) => {
                self.tracked_bytes = self.tracked_bytes + grow - shrink;
                if shrink > 0 {
                    if let Some(b) = &self.budget {
                        b.refund(shrink);
                    }
                }
                Ok(old)
            }
            Err(e) => {
                if grow > 0 {
                    if let Some(b) = &self.budget {
                        b.refund(grow);
                    }
                }
                Err(e)
            }
        }
    }

    fn update_slot_inner(&mut self, slot: usize, new_row: Row, old: &Row) -> DbResult<()> {
        if let (Some(pk_col), Some(idx)) = (self.schema.primary_key(), self.pk_index.as_mut()) {
            let old_key = &old[pk_col];
            let new_key = &new_row[pk_col];
            if old_key != new_key {
                if new_key.is_null() {
                    return Err(DbError::Invalid("primary key cannot be NULL".into()));
                }
                if idx.contains_key(new_key) {
                    return Err(DbError::Invalid(format!("duplicate primary key {new_key}")));
                }
                idx.remove(old_key);
                idx.insert(new_key.clone(), slot);
            }
        }
        for sec in &mut self.secondary {
            let old_key = &old[sec.column];
            let new_key = &new_row[sec.column];
            if old_key != new_key {
                sec.remove(old_key, slot);
                sec.insert(new_key.clone(), slot)?;
            }
        }
        self.rows[slot] = Some(new_row);
        Ok(())
    }

    /// Tombstones the row at `slot`, returning it.
    ///
    /// # Errors
    /// Returns [`DbError::Invalid`] when the slot is already dead.
    pub fn delete_slot(&mut self, slot: usize) -> DbResult<Row> {
        let old = self
            .rows
            .get(slot)
            .and_then(|r| r.clone())
            .ok_or_else(|| DbError::Invalid(format!("delete of dead slot {slot}")))?;
        if let (Some(pk_col), Some(idx)) = (self.schema.primary_key(), self.pk_index.as_mut()) {
            idx.remove(&old[pk_col]);
        }
        for sec in &mut self.secondary {
            sec.remove(&old[sec.column], slot);
        }
        self.rows[slot] = None;
        self.live_count -= 1;
        if let Some(b) = &self.budget {
            let n = row_bytes(&old);
            b.refund(n);
            self.tracked_bytes = self.tracked_bytes.saturating_sub(n);
        }
        Ok(old)
    }

    /// Restores a previously deleted row into its original slot (undo).
    ///
    /// # Panics
    /// Panics if the slot is occupied — undo must replay in reverse order.
    pub fn restore_slot(&mut self, slot: usize, row: Row) {
        assert!(
            self.rows.get(slot).map(|r| r.is_none()).unwrap_or(false),
            "restore into occupied or out-of-range slot"
        );
        if let (Some(pk_col), Some(idx)) = (self.schema.primary_key(), self.pk_index.as_mut()) {
            idx.insert(row[pk_col].clone(), slot);
        }
        for sec in &mut self.secondary {
            // restores never violate uniqueness: the row was present before
            let _ = sec.insert(row[sec.column].clone(), slot);
        }
        // undo replay must never fail, so the limit is not enforced here
        if let Some(b) = &self.budget {
            let n = row_bytes(&row);
            b.charge_unchecked(n);
            self.tracked_bytes += n;
        }
        self.rows[slot] = Some(row);
        self.live_count += 1;
    }

    /// Iterates `(slot, row)` over live rows.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|row| (i, row)))
    }

    /// Copies all live rows out.
    pub fn scan(&self) -> Vec<Row> {
        self.iter().map(|(_, r)| r.clone()).collect()
    }

    /// Copies all live rows out as column batches of at most `batch_size`
    /// rows, in slot order — the vectorized executor's scan entry point.
    /// Builds each typed column vector directly from the storage slots, so
    /// a scan of an N-row table costs O(arity) vector allocations per
    /// batch instead of N per-row allocations.
    pub fn scan_batches(&self, batch_size: usize) -> Vec<crate::batch::ColumnBatch> {
        use crate::batch::{Col, ColumnBatch};
        let batch_size = batch_size.max(1);
        let arity = self.schema.arity();
        let mut out = Vec::with_capacity(self.live_count / batch_size + 1);
        let mut columns: Vec<Vec<Value>> =
            (0..arity).map(|_| Vec::with_capacity(batch_size)).collect();
        let mut lanes = 0usize;
        for (_, row) in self.iter() {
            for (c, v) in row.iter().enumerate().take(arity) {
                columns[c].push(v.clone());
            }
            lanes += 1;
            if lanes == batch_size {
                let cols = std::mem::replace(
                    &mut columns,
                    (0..arity).map(|_| Vec::with_capacity(batch_size)).collect(),
                );
                out.push(ColumnBatch::from_cols(
                    cols.into_iter().map(Col::from_values).collect(),
                    lanes,
                ));
                lanes = 0;
            }
        }
        if lanes > 0 {
            out.push(ColumnBatch::from_cols(
                columns.into_iter().map(Col::from_values).collect(),
                lanes,
            ));
        }
        out
    }

    /// Looks up a slot by primary key, if a PK exists.
    pub fn lookup_pk(&self, key: &Value) -> Option<usize> {
        self.pk_index.as_ref().and_then(|m| m.get(key).copied())
    }

    /// Removes every row.
    pub fn truncate(&mut self) {
        if let Some(b) = &self.budget {
            b.refund(self.tracked_bytes);
            self.tracked_bytes = 0;
        }
        self.rows.clear();
        self.live_count = 0;
        if let Some(idx) = self.pk_index.as_mut() {
            idx.clear();
        }
        for sec in &mut self.secondary {
            sec.map.clear();
        }
    }

    /// Adds (and builds) a secondary index on `column`.
    ///
    /// # Errors
    /// Returns [`DbError::AlreadyExists`] for duplicate index names and
    /// [`DbError::Invalid`] if existing data violates uniqueness.
    pub fn create_index(&mut self, name: &str, column: usize, unique: bool) -> DbResult<()> {
        if self.secondary.iter().any(|s| s.name == name) {
            return Err(DbError::AlreadyExists(format!("index {name}")));
        }
        let mut idx = SecondaryIndex {
            name: name.to_owned(),
            column,
            unique,
            map: HashMap::new(),
        };
        for (slot, row) in self.rows.iter().enumerate() {
            if let Some(r) = row {
                idx.insert(r[column].clone(), slot)?;
            }
        }
        self.secondary.push(idx);
        Ok(())
    }

    /// Drops a secondary index by name; returns whether it existed.
    pub fn drop_index(&mut self, name: &str) -> bool {
        let before = self.secondary.len();
        self.secondary.retain(|s| s.name != name);
        self.secondary.len() != before
    }

    /// Finds any index (primary or secondary) usable for equality lookups on
    /// `column`; returns slots matching `key`.
    pub fn index_lookup(&self, column: usize, key: &Value) -> Option<Vec<usize>> {
        if self.schema.primary_key() == Some(column) && self.pk_index.is_some() {
            return Some(self.lookup_pk(key).into_iter().collect());
        }
        self.secondary
            .iter()
            .find(|s| s.column == column)
            .map(|s| s.lookup(key).to_vec())
    }

    /// True when equality lookups on `column` can use an index.
    pub fn has_index_on(&self, column: usize) -> bool {
        (self.schema.primary_key() == Some(column) && self.pk_index.is_some())
            || self.secondary.iter().any(|s| s.column == column)
    }

    /// Bytes this table currently has charged against its budget.
    pub fn tracked_bytes(&self) -> u64 {
        self.tracked_bytes
    }
}

impl Drop for Table {
    fn drop(&mut self) {
        // DROP TABLE releases the table's charge when the last handle goes
        if let Some(b) = &self.budget {
            b.refund(self.tracked_bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Column, DataType};

    fn table() -> Table {
        let schema = Schema::new(
            vec![
                Column::new("id", DataType::Int),
                Column::new("v", DataType::Float),
            ],
            Some(0),
        )
        .unwrap();
        Table::new(schema)
    }

    #[test]
    fn insert_scan_roundtrip() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::Float(0.5)]).unwrap();
        t.insert(vec![Value::Int(2), Value::Float(1.5)]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.scan().len(), 2);
    }

    #[test]
    fn scan_batches_matches_scan_in_slot_order() {
        let mut t = table();
        for i in 0..7 {
            t.insert(vec![Value::Int(i), Value::Float(i as f64 / 2.0)])
                .unwrap();
        }
        t.delete_slot(2).unwrap();
        let batches = t.scan_batches(3);
        assert_eq!(
            batches.iter().map(|b| b.len()).collect::<Vec<_>>(),
            vec![3, 3]
        );
        let mut rows = Vec::new();
        for b in &batches {
            b.append_rows_to(&mut rows);
        }
        assert_eq!(rows, t.scan());
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::Float(0.0)]).unwrap();
        assert!(t.insert(vec![Value::Int(1), Value::Float(9.9)]).is_err());
        assert!(t.insert(vec![Value::Null, Value::Float(0.0)]).is_err());
    }

    #[test]
    fn update_maintains_pk_index() {
        let mut t = table();
        let s = t.insert(vec![Value::Int(1), Value::Float(0.0)]).unwrap();
        t.update_slot(s, vec![Value::Int(5), Value::Float(1.0)])
            .unwrap();
        assert_eq!(t.lookup_pk(&Value::Int(5)), Some(s));
        assert_eq!(t.lookup_pk(&Value::Int(1)), None);
        // updating to an existing key fails
        t.insert(vec![Value::Int(7), Value::Float(0.0)]).unwrap();
        assert!(t
            .update_slot(s, vec![Value::Int(7), Value::Float(2.0)])
            .is_err());
    }

    #[test]
    fn delete_and_restore() {
        let mut t = table();
        let s = t.insert(vec![Value::Int(1), Value::Float(0.0)]).unwrap();
        let old = t.delete_slot(s).unwrap();
        assert_eq!(t.len(), 0);
        assert_eq!(t.lookup_pk(&Value::Int(1)), None);
        t.restore_slot(s, old);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup_pk(&Value::Int(1)), Some(s));
    }

    #[test]
    fn secondary_index_lookup_and_maintenance() {
        let mut t = table();
        let s1 = t.insert(vec![Value::Int(1), Value::Float(7.0)]).unwrap();
        let s2 = t.insert(vec![Value::Int(2), Value::Float(7.0)]).unwrap();
        t.create_index("idx_v", 1, false).unwrap();
        let slots = t.index_lookup(1, &Value::Float(7.0)).unwrap();
        assert_eq!(slots.len(), 2);
        t.update_slot(s1, vec![Value::Int(1), Value::Float(8.0)])
            .unwrap();
        assert_eq!(t.index_lookup(1, &Value::Float(7.0)).unwrap(), vec![s2]);
        t.delete_slot(s2).unwrap();
        assert!(t.index_lookup(1, &Value::Float(7.0)).unwrap().is_empty());
    }

    #[test]
    fn unique_secondary_index_enforced() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::Float(7.0)]).unwrap();
        t.insert(vec![Value::Int(2), Value::Float(7.0)]).unwrap();
        // building over duplicate data fails
        assert!(t.create_index("u", 1, true).is_err());
    }

    #[test]
    fn truncate_clears_everything() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::Float(0.0)]).unwrap();
        t.create_index("i", 1, false).unwrap();
        t.truncate();
        assert!(t.is_empty());
        assert_eq!(t.lookup_pk(&Value::Int(1)), None);
        assert!(t.index_lookup(1, &Value::Float(0.0)).unwrap().is_empty());
    }

    #[test]
    fn budget_charged_and_refunded_through_table_lifecycle() {
        let b = Arc::new(MemoryBudget::new());
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::Float(0.5)]).unwrap();
        t.attach_budget(&b).unwrap();
        let after_attach = b.used();
        assert!(after_attach > 0);
        let s = t.insert(vec![Value::Int(2), Value::Float(1.5)]).unwrap();
        assert!(b.used() > after_attach);
        t.delete_slot(s).unwrap();
        assert_eq!(b.used(), after_attach);
        t.truncate();
        assert_eq!(b.used(), 0);
        t.insert(vec![Value::Int(3), Value::Float(0.0)]).unwrap();
        drop(t); // dropping the table refunds its remaining charge
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn budget_limit_blocks_insert_and_failed_insert_refunds() {
        let b = Arc::new(MemoryBudget::new());
        b.set_limit(Some(100));
        let mut t = table();
        t.attach_budget(&b).unwrap();
        t.insert(vec![Value::Int(1), Value::Float(0.0)]).unwrap();
        let err = t.insert(vec![Value::Int(2), Value::Float(0.0)]);
        assert!(matches!(err, Err(DbError::BudgetExceeded(_))), "{err:?}");
        // a failed duplicate-key insert refunds its charge too
        b.set_limit(None);
        let used = b.used();
        assert!(t.insert(vec![Value::Int(1), Value::Float(9.9)]).is_err());
        assert_eq!(b.used(), used);
    }

    #[test]
    fn budget_tracks_update_growth_and_shrinkage() {
        let schema = Schema::new(
            vec![
                Column::new("id", DataType::Int),
                Column::new("s", DataType::Text),
            ],
            Some(0),
        )
        .unwrap();
        let mut t = Table::new(schema);
        let b = Arc::new(MemoryBudget::new());
        t.attach_budget(&b).unwrap();
        let slot = t
            .insert(vec![Value::Int(1), Value::Text("x".into())])
            .unwrap();
        let small = b.used();
        t.update_slot(slot, vec![Value::Int(1), Value::Text("x".repeat(500))])
            .unwrap();
        assert_eq!(b.used(), small + 499);
        t.update_slot(slot, vec![Value::Int(1), Value::Text("x".into())])
            .unwrap();
        assert_eq!(b.used(), small);
    }

    #[test]
    fn pk_lookup_via_index_lookup() {
        let mut t = table();
        t.insert(vec![Value::Int(42), Value::Float(0.0)]).unwrap();
        assert!(t.has_index_on(0));
        assert!(!t.has_index_on(1));
        assert_eq!(t.index_lookup(0, &Value::Int(42)).unwrap().len(), 1);
    }
}
