//! `sqloop-cli` — an interactive shell for the SQLoop middleware.
//!
//! ```text
//! sqloop-cli [URL]            # default: local://postgres
//!
//! sqloop> CREATE TABLE edges (src INT, dst INT, weight FLOAT);
//! sqloop> WITH ITERATIVE pr(...) AS (... UNTIL 10 ITERATIONS) SELECT ...;
//! sqloop> \mode asyncp
//! sqloop> \threads 8
//! sqloop> \q
//! ```
//!
//! Statements end with `;` and may span lines. Meta-commands start with `\`:
//! `\mode single|sync|async|asyncp`, `\threads n`, `\partitions n`,
//! `\priority lowest|highest <scalar query with {}>`, `\timing on|off`,
//! `\trace on|off|json <path>`, `\checkpoint <dir> [interval]|off`,
//! `\resume <path>|off`, `\deadline <ms>|off`, `\stats`, `\profile on|off`
//! (per-operator actuals), `\top [misses] [k]` (statement digests),
//! `\slow [<ms> [sample]|off]` (slow-statement log), `\prepared`
//! (plan-cache counters), `\engine` (show target), `\help`, `\q`.
//!
//! Flags: `--checkpoint <dir>[:interval]`, `--resume <path>`,
//! `--deadline-ms <n>`, `--max-mem <bytes[K|M|G]>`, `--max-rounds <n>`,
//! `--statement-timeout-ms <n>`. Ctrl-C cancels the running statement
//! cooperatively: the loop quiesces, writes a final checkpoint (when
//! configured) and reports the partial result.
//!
//! `--serve <addr>` turns the shell into a wire server for the engine named
//! by the URL (`local://postgres|mysql|mariadb`), with admission control:
//! `--max-connections <n>` caps concurrent clients, `--shed-high-water <n>`
//! sheds statements under load, `--statement-timeout-ms` bounds every
//! statement and `--max-mem` bounds the engine. Ctrl-C drains the server:
//! in-flight statements finish under `--drain-ms` before it exits.

use sqloop::{
    CheckpointConfig, ExecutionMode, ExecutionReport, PrioritySpec, SQLoop, Strategy, TraceConfig,
};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};

/// SIGINT latch: the handler only flips a flag; a watcher thread turns the
/// flag into a [`dbcp::CancelToken`] cancellation (and keeps the shell
/// alive — Ctrl-C at the prompt does not exit).
static SIGINT_HIT: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigint_handler() {
    extern "C" fn on_sigint(_signum: i32) {
        SIGINT_HIT.store(true, Ordering::SeqCst);
    }
    extern "C" {
        // raw libc binding: the container image carries no `libc` crate,
        // and `signal(2)` is all this shell needs
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint);
    }
}

#[cfg(not(unix))]
fn install_sigint_handler() {}

/// Shell state threaded through the meta-command handler.
struct Shell {
    sqloop: SQLoop,
    timing: bool,
    /// Registry baseline for `\stats` deltas (reset on every `\stats`).
    stats_base: obs::RegistrySnapshot,
    /// Engine counter baseline for `\stats` deltas (`None` over TCP).
    engine_base: Option<sqldb::StatsSnapshot>,
}

/// Parses a byte count with an optional `K`/`M`/`G` suffix (`64M`, `1g`).
fn parse_bytes(spec: &str) -> Option<u64> {
    let spec = spec.trim();
    let (digits, mult) = match spec.chars().last()? {
        'k' | 'K' => (&spec[..spec.len() - 1], 1u64 << 10),
        'm' | 'M' => (&spec[..spec.len() - 1], 1u64 << 20),
        'g' | 'G' => (&spec[..spec.len() - 1], 1u64 << 30),
        _ => (spec, 1),
    };
    let n: u64 = digits.parse().ok()?;
    n.checked_mul(mult).filter(|v| *v > 0)
}

/// Renders a byte count back with the largest exact suffix.
fn format_bytes(n: u64) -> String {
    if n > 0 && n.is_multiple_of(1 << 30) {
        format!("{}G", n >> 30)
    } else if n > 0 && n.is_multiple_of(1 << 20) {
        format!("{}M", n >> 20)
    } else if n > 0 && n.is_multiple_of(1 << 10) {
        format!("{}K", n >> 10)
    } else {
        format!("{n}")
    }
}

/// Runs the wire server for `url`'s engine until Ctrl-C.
fn serve(url: &str, addr: &str, cfg: dbcp::ServerConfig, max_mem: Option<u64>) -> ! {
    let profile = match url
        .strip_prefix("local://")
        .and_then(sqldb::EngineProfile::parse)
    {
        Some(p) => p,
        None => {
            eprintln!("--serve needs a local:// engine URL, got {url}");
            std::process::exit(2);
        }
    };
    let db = sqldb::Database::new(profile);
    if max_mem.is_some() {
        db.set_memory_limit(max_mem);
    }
    let server = match dbcp::Server::bind_with(db, addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot serve on {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("serving {profile:?} on {} — Ctrl-C stops", server.addr());
    println!(
        "limits: max-connections {}, shed high water {}, statement timeout {}, max-mem {}, \
         drain {} ms",
        cfg.max_connections,
        cfg.shed_high_water,
        cfg.statement_timeout
            .map_or("off".to_string(), |d| format!("{} ms", d.as_millis())),
        max_mem.map_or("off".to_string(), format_bytes),
        cfg.drain_timeout.as_millis(),
    );
    install_sigint_handler();
    while !SIGINT_HIT.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    server.shutdown();
    std::process::exit(0);
}

/// Parses `--checkpoint dir[:interval]` into a [`CheckpointConfig`].
fn parse_checkpoint_flag(spec: &str) -> CheckpointConfig {
    match spec.rsplit_once(':') {
        Some((dir, n)) if !dir.is_empty() => match n.parse::<u64>() {
            Ok(interval) if interval >= 1 => CheckpointConfig::new(dir).every(interval),
            _ => CheckpointConfig::new(spec),
        },
        _ => CheckpointConfig::new(spec),
    }
}

fn main() {
    let mut url = "local://postgres".to_string();
    let mut checkpoint = None;
    let mut resume_from = None;
    let mut deadline = None;
    let mut max_mem = None;
    let mut max_rounds = None;
    let mut statement_timeout = None;
    let mut stall_timeout = None;
    let mut serve_addr: Option<String> = None;
    let mut server_cfg = dbcp::ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-mem" => match args.next().as_deref().and_then(parse_bytes) {
                Some(n) => max_mem = Some(n),
                None => {
                    eprintln!("--max-mem needs a byte count (suffixes K/M/G)");
                    std::process::exit(2);
                }
            },
            "--max-rounds" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n >= 1 => max_rounds = Some(n),
                _ => {
                    eprintln!("--max-rounds needs a round count >= 1");
                    std::process::exit(2);
                }
            },
            "--statement-timeout-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) if ms >= 1 => {
                    statement_timeout = Some(std::time::Duration::from_millis(ms));
                }
                _ => {
                    eprintln!("--statement-timeout-ms needs a number of milliseconds");
                    std::process::exit(2);
                }
            },
            "--stall-timeout-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) if ms >= 1 => {
                    stall_timeout = Some(std::time::Duration::from_millis(ms));
                }
                _ => {
                    eprintln!(
                        "--stall-timeout-ms needs a number of milliseconds \
                         (set it above the worst-case round time)"
                    );
                    std::process::exit(2);
                }
            },
            "--max-connections" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => server_cfg.max_connections = n,
                None => {
                    eprintln!("--max-connections needs a connection count (0 = unlimited)");
                    std::process::exit(2);
                }
            },
            "--shed-high-water" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => server_cfg.shed_high_water = n,
                None => {
                    eprintln!("--shed-high-water needs an in-flight statement count (0 = off)");
                    std::process::exit(2);
                }
            },
            "--drain-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => server_cfg.drain_timeout = std::time::Duration::from_millis(ms),
                None => {
                    eprintln!("--drain-ms needs a shutdown drain budget in milliseconds");
                    std::process::exit(2);
                }
            },
            "--serve" => match args.next() {
                Some(addr) => serve_addr = Some(addr),
                None => {
                    eprintln!("--serve needs a host:port to listen on");
                    std::process::exit(2);
                }
            },
            "--checkpoint" => match args.next() {
                Some(spec) => checkpoint = Some(parse_checkpoint_flag(&spec)),
                None => {
                    eprintln!("--checkpoint needs <dir>[:interval]");
                    std::process::exit(2);
                }
            },
            "--resume" => match args.next() {
                Some(path) => resume_from = Some(std::path::PathBuf::from(path)),
                None => {
                    eprintln!("--resume needs a checkpoint dir, MANIFEST.json or snapshot file");
                    std::process::exit(2);
                }
            },
            "--deadline-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => deadline = Some(std::time::Duration::from_millis(ms)),
                None => {
                    eprintln!("--deadline-ms needs a number of milliseconds");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "sqloop-cli [URL] [--checkpoint <dir>[:interval]] \
                     [--resume <path>] [--deadline-ms <n>] \
                     [--max-mem <bytes[K|M|G]>] [--max-rounds <n>] \
                     [--statement-timeout-ms <n>] [--stall-timeout-ms <n>]\n\
                     sqloop-cli [URL] --serve <addr> [--max-connections <n>] \
                     [--shed-high-water <n>] [--drain-ms <n>] \
                     [--statement-timeout-ms <n>] [--max-mem <bytes>]"
                );
                return;
            }
            other if !other.starts_with('-') => url = other.to_string(),
            other => {
                eprintln!("unknown flag {other}; --help lists flags");
                std::process::exit(2);
            }
        }
    }
    if let Some(addr) = serve_addr {
        server_cfg.statement_timeout = statement_timeout;
        serve(&url, &addr, server_cfg, max_mem);
    }
    let mut sqloop = match SQLoop::connect(&url) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot connect to {url}: {e}");
            std::process::exit(1);
        }
    };
    sqloop.config_mut().checkpoint = checkpoint;
    sqloop.config_mut().resume_from = resume_from;
    sqloop.config_mut().deadline = deadline;
    sqloop.config_mut().max_mem = max_mem;
    sqloop.config_mut().watchdog.max_rounds = max_rounds;
    sqloop.config_mut().statement_timeout = statement_timeout;
    sqloop.config_mut().stall_timeout = stall_timeout;

    install_sigint_handler();
    // the watcher turns the async-signal flag into a cooperative
    // cancellation of whatever statement is running
    let cancel = sqloop.config().cancel.clone();
    std::thread::spawn(move || loop {
        if SIGINT_HIT.swap(false, Ordering::SeqCst) {
            eprintln!("\ncancelling — the loop stops at its next quiesce point (\\q quits)");
            cancel.cancel();
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    });

    let mut shell = Shell {
        engine_base: sqloop.driver().engine_stats(),
        stats_base: obs::global().snapshot(),
        sqloop,
        timing: true,
    };
    println!(
        "SQLoop shell — connected to {url} ({})",
        shell.sqloop.driver().profile()
    );
    println!("statements end with ';'; \\help for meta-commands, \\q to quit");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        let prompt = if buffer.is_empty() {
            "sqloop> "
        } else {
            "   ...> "
        };
        print!("{prompt}");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            if !meta_command(trimmed, &mut shell) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        if !statement_complete(&buffer) {
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        let sql = sql.trim().trim_end_matches(';');
        if sql.is_empty() {
            continue;
        }
        match shell.sqloop.execute_detailed(sql) {
            Ok(report) => {
                // a resume snapshot applies to exactly one *loop* run —
                // passthrough setup statements (CREATE TABLE, INSERTs before
                // the rerun) must not consume it
                if report.strategy != sqloop::Strategy::Passthrough
                    && shell.sqloop.config().resume_from.is_some()
                {
                    shell.sqloop.config_mut().resume_from = None;
                }
                print_report(&report, shell.timing);
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

/// Prints a query result plus the provenance / timing / trace footers.
fn print_report(report: &ExecutionReport, timing: bool) {
    print_result(&report.result);
    let provenance = match &report.strategy {
        Strategy::Passthrough => "passthrough".to_string(),
        Strategy::RecursiveSingle => {
            format!("recursive, {} recursions", report.iterations)
        }
        Strategy::IterativeSingle { fallback_reason } => match fallback_reason {
            Some(r) => format!(
                "iterative (single-threaded: {r}), {} iterations",
                report.iterations
            ),
            None => format!(
                "iterative (single-threaded), {} iterations",
                report.iterations
            ),
        },
        Strategy::IterativeParallel { mode } => format!(
            "iterative ({mode}), {} iterations, {} computes / {} gathers",
            report.iterations, report.computes, report.gathers
        ),
    };
    if timing {
        println!("-- {provenance} in {:?}", report.elapsed);
    } else {
        println!("-- {provenance}");
    }
    if timing {
        if let Strategy::IterativeParallel { .. } = &report.strategy {
            let wall = report.elapsed.as_secs_f64();
            let overlap = if wall > 0.0 {
                report.worker_busy.as_secs_f64() / wall
            } else {
                0.0
            };
            println!(
                "-- workers: {} compute(s) + {} gather(s) over {} iteration(s); \
                 busy {:?} / {:?} wall (overlap {:.2}x)",
                report.computes,
                report.gathers,
                report.iterations,
                report.worker_busy,
                report.elapsed,
                overlap,
            );
        }
    }
    if report.cancelled {
        println!(
            "-- cancelled: partial result after {} iteration(s)",
            report.iterations
        );
    }
    if let Some(path) = &report.checkpoint {
        println!("-- checkpoint: {}", path.display());
    }
    if let Some(note) = &report.recovery_note {
        println!("-- resume: {note}");
    }
    if !report.recovery.is_clean() {
        println!("-- recovery: {}", report.recovery);
    }
    // ROADMAP read-off: which statement families the plan cache loses on,
    // tagged with the scheduler mode that produced them
    if matches!(
        report.strategy,
        Strategy::IterativeSingle { .. } | Strategy::IterativeParallel { .. }
    ) {
        if let Some(dg) = &report.digests {
            let (hits, misses) = dg.plan_cache_totals();
            if let Some(rate) = (hits * 100).checked_div(hits + misses) {
                println!(
                    "-- plan cache [{}]: {hits} hit(s) / {misses} miss(es) ({rate}% hit rate)",
                    dg.mode,
                );
                for e in dg.top_misses.iter().take(3) {
                    println!("   miss family: {} ({} parse(s))", e.digest, e.plan_misses);
                }
            }
        }
    }
    if let (Some(summary), Some(data)) = (&report.trace, &report.trace_data) {
        println!("-- trace: {summary}");
        for line in obs::timeline(data, 64) {
            println!("   {line}");
        }
    }
}

/// A statement is complete when a `;` appears outside quotes.
fn statement_complete(buffer: &str) -> bool {
    let mut in_single = false;
    let mut in_double = false;
    for c in buffer.chars() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            ';' if !in_single && !in_double => return true,
            _ => {}
        }
    }
    false
}

/// One place for every malformed-meta-command complaint.
fn usage(text: &str) {
    eprintln!("usage: {text}");
}

/// Handles a `\…` command; returns `false` to exit the shell.
fn meta_command(cmd: &str, shell: &mut Shell) -> bool {
    let sqloop = &mut shell.sqloop;
    let mut parts = cmd.split_whitespace();
    match parts.next().unwrap_or("") {
        "\\q" | "\\quit" | "\\exit" => return false,
        "\\help" | "\\?" => {
            println!("\\mode single|sync|async|asyncp   set execution mode");
            println!("\\threads N                       worker threads (connections)");
            println!("\\partitions N                    hash partitions of R");
            println!("\\priority lowest|highest <sql>   AsyncP priority ({{}} = partition)");
            println!("\\timing on|off                   toggle elapsed-time display");
            println!("\\trace on|off|json <path>        per-run trace (timeline / JSON file)");
            println!("\\checkpoint <dir> [interval]|off durable snapshots every N rounds");
            println!("\\resume <path>|off               resume next run from a checkpoint");
            println!("\\deadline <ms>|off               cancel runs after a wall-clock budget");
            println!("\\limits                          show resource limits + memory usage");
            println!("\\limits mem <bytes[K|M|G]>|off   engine memory budget");
            println!("\\limits rounds <n>|off           hard iteration budget (watchdog)");
            println!("\\limits window <n>|off           divergence watchdog trend window");
            println!("\\limits numeric on|off           NaN/Inf divergence probes");
            println!("\\limits timeout <ms>|off         per-statement engine deadline");
            println!("\\limits stall <ms>|off           supervisor stall verdict threshold");
            println!("\\stats                           metric deltas since last \\stats");
            println!("\\profile on|off                  per-operator actuals (EXPLAIN ANALYZE)");
            println!("\\top [k] | \\top misses [k]       statement digests by time / cache misses");
            println!("\\slow [<ms> [sample]|off]        show / configure the slow-statement log");
            println!("\\prepared                        plan-cache hit/miss/eviction counters");
            println!("\\engine                          show target engine + config");
            println!("\\q                               quit");
        }
        "\\mode" => match parts.next().and_then(ExecutionMode::parse) {
            Some(m) => {
                sqloop.config_mut().mode = m;
                println!("mode = {m}");
            }
            None => usage("\\mode single|sync|async|asyncp"),
        },
        "\\threads" => match parts.next().and_then(|v| v.parse().ok()) {
            Some(n) if n >= 1 => {
                sqloop.config_mut().threads = n;
                println!("threads = {n}");
            }
            _ => usage("\\threads N"),
        },
        "\\partitions" => match parts.next().and_then(|v| v.parse().ok()) {
            Some(n) if n >= 1 => {
                sqloop.config_mut().partitions = n;
                println!("partitions = {n}");
            }
            _ => usage("\\partitions N"),
        },
        "\\priority" => {
            let order = parts.next().unwrap_or("");
            let query: String = parts.collect::<Vec<_>>().join(" ");
            let spec = match order {
                "lowest" => Some(PrioritySpec::lowest(query.clone())),
                "highest" => Some(PrioritySpec::highest(query.clone())),
                _ => None,
            };
            match spec {
                Some(s) if !query.is_empty() => {
                    sqloop.config_mut().priority = Some(s);
                    println!("priority = {order} of `{query}`");
                }
                _ => usage("\\priority lowest|highest SELECT ... FROM {}"),
            }
        }
        "\\timing" => match parts.next() {
            Some("on") => {
                shell.timing = true;
                println!("timing on");
            }
            Some("off") => {
                shell.timing = false;
                println!("timing off");
            }
            _ => usage("\\timing on|off"),
        },
        "\\trace" => match parts.next() {
            Some("on") => {
                sqloop.config_mut().trace = TraceConfig::on();
                println!("trace on (timeline after each iterative run)");
            }
            Some("off") => {
                sqloop.config_mut().trace = TraceConfig::default();
                println!("trace off");
            }
            Some("json") => match parts.next() {
                Some(path) => {
                    sqloop.config_mut().trace = TraceConfig::json(path);
                    println!("trace on, JSON written to {path} after each run");
                }
                None => usage("\\trace json <path>"),
            },
            _ => usage("\\trace on|off|json <path>"),
        },
        "\\checkpoint" => match parts.next() {
            Some("off") => {
                sqloop.config_mut().checkpoint = None;
                println!("checkpointing off");
            }
            Some(dir) => {
                let interval = parts.next().and_then(|v| v.parse::<u64>().ok());
                let config = match interval {
                    Some(n) if n >= 1 => CheckpointConfig::new(dir).every(n),
                    Some(_) => {
                        usage("\\checkpoint <dir> [interval >= 1]");
                        return true;
                    }
                    None => CheckpointConfig::new(dir),
                };
                println!(
                    "checkpointing to {} every {} round(s)",
                    config.dir.display(),
                    config.interval
                );
                sqloop.config_mut().checkpoint = Some(config);
            }
            None => usage("\\checkpoint <dir> [interval] | \\checkpoint off"),
        },
        "\\resume" => match parts.next() {
            Some("off") => {
                sqloop.config_mut().resume_from = None;
                println!("resume cleared");
            }
            Some(path) => {
                sqloop.config_mut().resume_from = Some(path.into());
                println!("next iterative run resumes from {path}");
            }
            None => usage("\\resume <dir|MANIFEST.json|snapshot> | \\resume off"),
        },
        "\\deadline" => match parts.next() {
            Some("off") => {
                sqloop.config_mut().deadline = None;
                println!("deadline off");
            }
            Some(v) => match v.parse::<u64>() {
                Ok(ms) if ms >= 1 => {
                    sqloop.config_mut().deadline = Some(std::time::Duration::from_millis(ms));
                    println!("statements cancel after {ms} ms");
                }
                _ => usage("\\deadline <ms> | \\deadline off"),
            },
            None => usage("\\deadline <ms> | \\deadline off"),
        },
        "\\limits" => match (parts.next(), parts.next()) {
            (None, _) => {
                let c = sqloop.config();
                let off = || "off".to_string();
                println!(
                    "max-mem          : {}",
                    c.max_mem.map_or_else(off, format_bytes)
                );
                println!(
                    "max-rounds       : {}",
                    c.watchdog.max_rounds.map_or_else(off, |n| n.to_string())
                );
                println!(
                    "trend window     : {}",
                    c.watchdog.window.map_or_else(off, |n| n.to_string())
                );
                println!(
                    "numeric checks   : {}",
                    if c.watchdog.numeric_checks {
                        "on"
                    } else {
                        "off"
                    }
                );
                println!(
                    "statement timeout: {}",
                    c.statement_timeout
                        .map_or_else(off, |d| format!("{} ms", d.as_millis()))
                );
                println!(
                    "deadline         : {}",
                    c.deadline
                        .map_or_else(off, |d| format!("{} ms", d.as_millis()))
                );
                println!(
                    "stall timeout    : {}",
                    c.stall_timeout
                        .map_or_else(off, |d| format!("{} ms", d.as_millis()))
                );
                match sqloop.driver().memory_used() {
                    Some(n) => println!("engine memory    : {} in use", format_bytes(n)),
                    None => println!("engine memory    : not observable over this driver"),
                }
            }
            (Some("mem"), Some("off")) => {
                sqloop.config_mut().max_mem = None;
                sqloop.driver().set_memory_limit(None);
                println!("memory budget off");
            }
            (Some("mem"), Some(v)) => match parse_bytes(v) {
                Some(n) => {
                    sqloop.config_mut().max_mem = Some(n);
                    println!("memory budget = {}", format_bytes(n));
                }
                None => usage("\\limits mem <bytes[K|M|G]> | \\limits mem off"),
            },
            (Some("rounds"), Some("off")) => {
                sqloop.config_mut().watchdog.max_rounds = None;
                println!("round budget off");
            }
            (Some("rounds"), Some(v)) => match v.parse::<u64>() {
                Ok(n) if n >= 1 => {
                    sqloop.config_mut().watchdog.max_rounds = Some(n);
                    println!("round budget = {n}");
                }
                _ => usage("\\limits rounds <n >= 1> | \\limits rounds off"),
            },
            (Some("window"), Some("off")) => {
                sqloop.config_mut().watchdog.window = None;
                println!("trend window off");
            }
            (Some("window"), Some(v)) => match v.parse::<u64>() {
                Ok(n) if n >= 1 => {
                    sqloop.config_mut().watchdog.window = Some(n);
                    println!("trend window = {n} round(s)");
                }
                _ => usage("\\limits window <n >= 1> | \\limits window off"),
            },
            (Some("numeric"), Some("on")) => {
                sqloop.config_mut().watchdog.numeric_checks = true;
                println!("numeric divergence checks on");
            }
            (Some("numeric"), Some("off")) => {
                sqloop.config_mut().watchdog.numeric_checks = false;
                println!("numeric divergence checks off");
            }
            (Some("timeout"), Some("off")) => {
                sqloop.config_mut().statement_timeout = None;
                println!("statement timeout off");
            }
            (Some("timeout"), Some(v)) => match v.parse::<u64>() {
                Ok(ms) if ms >= 1 => {
                    sqloop.config_mut().statement_timeout =
                        Some(std::time::Duration::from_millis(ms));
                    println!("statement timeout = {ms} ms");
                }
                _ => usage("\\limits timeout <ms> | \\limits timeout off"),
            },
            (Some("stall"), Some("off")) => {
                sqloop.config_mut().stall_timeout = None;
                println!("stall timeout off");
            }
            (Some("stall"), Some(v)) => match v.parse::<u64>() {
                Ok(ms) if ms >= 1 => {
                    sqloop.config_mut().stall_timeout = Some(std::time::Duration::from_millis(ms));
                    println!(
                        "stall timeout = {ms} ms (workers silent past this are \
                         abandoned and replaced; set it above the worst-case round time)"
                    );
                }
                _ => usage("\\limits stall <ms> | \\limits stall off"),
            },
            _ => usage("\\limits [mem|rounds|window|numeric|timeout|stall <value>|off]"),
        },
        "\\stats" => {
            let now = obs::global().snapshot();
            let delta = now.delta_since(&shell.stats_base);
            if delta.is_empty() {
                println!("no metric activity since last \\stats");
            } else {
                print_metrics(&delta);
            }
            if let Some(cur) = sqloop.driver().engine_stats() {
                let d = cur.delta_since(&shell.engine_base.unwrap_or_default());
                println!(
                    "engine: {} stmt(s), {} row(s) scanned, {} join pair(s), \
                     {} index probe(s), {} lock wait(s)",
                    d.statements, d.rows_scanned, d.rows_joined, d.index_lookups, d.lock_waits,
                );
                shell.engine_base = Some(cur);
            }
            shell.stats_base = now;
        }
        "\\profile" => match parts.next() {
            Some(v @ ("on" | "off")) => {
                let on = v == "on";
                match sqloop
                    .driver()
                    .connect()
                    .and_then(|mut c| c.set_profiling(on))
                {
                    Ok(()) => println!(
                        "profiling {v} (per-operator actuals feed EXPLAIN ANALYZE \
                         and the sqldb.op.* metrics)"
                    ),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
            _ => usage("\\profile on|off"),
        },
        "\\top" => {
            let (misses, k) = match parts.next() {
                Some("misses") => (
                    true,
                    parts.next().and_then(|v| v.parse().ok()).unwrap_or(10u32),
                ),
                Some(v) => match v.parse::<u32>() {
                    Ok(n) if n >= 1 => (false, n),
                    _ => {
                        usage("\\top [k] | \\top misses [k]");
                        return true;
                    }
                },
                None => (false, 10),
            };
            let rows = sqloop.driver().connect().and_then(|mut c| {
                if misses {
                    c.digest_top_misses(k)
                } else {
                    c.digest_top(k)
                }
            });
            match rows {
                Ok(r) if r.rows.is_empty() => {
                    println!("no digest activity recorded yet");
                }
                Ok(r) => print_result(&r),
                Err(e) => eprintln!("error: {e}"),
            }
        }
        "\\slow" => match parts.next() {
            None => match sqloop.driver().connect().and_then(|mut c| c.slow_log()) {
                Ok(r) if r.rows.is_empty() => {
                    println!(
                        "slow log empty — \\slow <ms> [sample] sets the threshold \
                         (0 = off, default)"
                    );
                }
                Ok(r) => print_result(&r),
                Err(e) => eprintln!("error: {e}"),
            },
            Some("off") => {
                match sqloop
                    .driver()
                    .connect()
                    .and_then(|mut c| c.configure_slow_log(0, 1))
                {
                    Ok(()) => println!("slow log off"),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
            Some(v) => match v.parse::<u64>() {
                Ok(ms) if ms >= 1 => {
                    let sample = parts.next().and_then(|s| s.parse().ok()).unwrap_or(1u64);
                    match sqloop
                        .driver()
                        .connect()
                        .and_then(|mut c| c.configure_slow_log(ms * 1000, sample))
                    {
                        Ok(()) => println!(
                            "slow log: statements over {ms} ms retained \
                             (sampling 1 in {})",
                            sample.max(1)
                        ),
                        Err(e) => eprintln!("error: {e}"),
                    }
                }
                _ => usage("\\slow [<ms> [sample] | off]"),
            },
        },
        "\\prepared" => match sqloop.driver().plan_cache_stats() {
            Some(s) => {
                println!("plan cache: {} entr(ies) cached", s.entries);
                println!("  hits         : {}", s.hits);
                println!("  misses       : {}", s.misses);
                println!("  hit rate     : {:.1}%", s.hit_rate() * 100.0);
                println!("  evictions    : {}", s.evictions);
                println!(
                    "  invalidations: {} (DDL outdated a cached plan)",
                    s.invalidations
                );
            }
            None => println!(
                "plan cache lives with the server process — not observable over this driver"
            ),
        },
        "\\engine" => {
            println!("engine    : {}", sqloop.driver().profile());
            let c = sqloop.config();
            println!("mode      : {}", c.mode);
            println!("threads   : {}", c.threads);
            println!("partitions: {}", c.partitions);
            println!(
                "trace     : {}",
                match (&c.trace.enabled, &c.trace.json_path) {
                    (false, _) => "off".to_string(),
                    (true, None) => "on".to_string(),
                    (true, Some(p)) => format!("json → {}", p.display()),
                }
            );
        }
        other => eprintln!("unknown command {other}; \\help lists commands"),
    }
    true
}

/// Prints the non-zero part of a registry delta, one metric per line.
fn print_metrics(snap: &obs::RegistrySnapshot) {
    for (name, v) in &snap.counters {
        if *v != 0 {
            println!("{name:<44} {v}");
        }
    }
    for (name, v) in &snap.gauges {
        println!("{name:<44} {v}");
    }
    for (name, h) in &snap.histograms {
        if h.count > 0 {
            println!(
                "{name:<44} count={} mean={}µs p95={}µs",
                h.count,
                h.mean_us(),
                h.percentile_us(0.95),
            );
        }
    }
}

fn print_result(result: &sqldb::QueryResult) {
    if result.columns.is_empty() {
        println!("ok");
        return;
    }
    let mut widths: Vec<usize> = result.columns.iter().map(|c| c.len()).collect();
    let rendered: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|row| row.iter().map(|v| v.to_string()).collect())
        .collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let joined = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join(" | ");
        println!("| {joined} |");
    };
    line(
        &result
            .columns
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>(),
    );
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+")
    );
    // cap enormous outputs in the shell
    const MAX_ROWS: usize = 500;
    for row in rendered.iter().take(MAX_ROWS) {
        line(row);
    }
    if rendered.len() > MAX_ROWS {
        println!("… {} more rows", rendered.len() - MAX_ROWS);
    }
    println!("({} rows)", rendered.len());
}
