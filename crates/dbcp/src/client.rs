//! TCP client driver: connect to a remote engine by URL.

use crate::driver::{mint_epoch, Connection, Driver, PipelineOutcome};
use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, MetricsCmd, PipelineStep, Request,
    Response, MAGIC,
};
use sqldb::{DbError, DbResult, EngineProfile, IsolationLevel, StmtOutput, Value};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Socket deadlines for a [`TcpConnection`]. A `None` means "wait
/// forever" — only sensible on a trusted local loopback; the defaults
/// keep a wedged or half-dead server from hanging the middleware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpTimeouts {
    /// Deadline for reading a response frame.
    pub read: Option<Duration>,
    /// Deadline for writing a request frame.
    pub write: Option<Duration>,
}

impl Default for TcpTimeouts {
    fn default() -> TcpTimeouts {
        TcpTimeouts {
            read: Some(Duration::from_secs(120)),
            write: Some(Duration::from_secs(30)),
        }
    }
}

/// Driver that opens wire-protocol connections to a remote server.
#[derive(Debug, Clone)]
pub struct TcpDriver {
    addr: String,
    profile: EngineProfile,
    timeouts: TcpTimeouts,
}

impl TcpDriver {
    /// Connects once to discover the remote engine profile, then acts as a
    /// factory for further connections.
    ///
    /// # Errors
    /// Returns [`DbError::Connection`] when the server is unreachable.
    pub fn connect(addr: &str) -> DbResult<TcpDriver> {
        TcpDriver::connect_with(addr, TcpTimeouts::default())
    }

    /// As [`TcpDriver::connect`], with explicit socket timeouts applied to
    /// the probe and every connection minted afterwards.
    ///
    /// # Errors
    /// Returns [`DbError::Connection`] when the server is unreachable.
    pub fn connect_with(addr: &str, timeouts: TcpTimeouts) -> DbResult<TcpDriver> {
        let mut probe = TcpConnection::open_with(addr, timeouts)?;
        let profile = probe.fetch_profile()?;
        Ok(TcpDriver {
            addr: addr.to_owned(),
            profile,
            timeouts,
        })
    }

    /// The remote address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The socket timeouts applied to minted connections.
    pub fn timeouts(&self) -> TcpTimeouts {
        self.timeouts
    }
}

impl Driver for TcpDriver {
    fn connect(&self) -> DbResult<Box<dyn Connection>> {
        Ok(Box::new(TcpConnection::open_with(
            &self.addr,
            self.timeouts,
        )?))
    }

    fn profile(&self) -> EngineProfile {
        self.profile
    }
}

/// One wire-protocol connection.
#[derive(Debug)]
pub struct TcpConnection {
    stream: TcpStream,
    profile: EngineProfile,
    /// Set after any transport failure: the stream position is unknown
    /// (a frame may be half-sent or half-read), so every later call
    /// fast-fails instead of desynchronizing the protocol.
    broken: bool,
    /// Identifies this physical connection; prepared-statement ids are
    /// scoped to it (see [`Connection::prepared_epoch`]).
    epoch: u64,
}

impl TcpConnection {
    /// Opens and handshakes a connection with default timeouts.
    ///
    /// # Errors
    /// Returns [`DbError::Connection`] on network or handshake failure.
    pub fn open(addr: &str) -> DbResult<TcpConnection> {
        TcpConnection::open_with(addr, TcpTimeouts::default())
    }

    /// Opens and handshakes a connection with explicit socket timeouts.
    ///
    /// # Errors
    /// Returns [`DbError::Connection`] on network or handshake failure.
    pub fn open_with(addr: &str, timeouts: TcpTimeouts) -> DbResult<TcpConnection> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| DbError::Connection(format!("connect {addr}: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| DbError::Connection(format!("nodelay: {e}")))?;
        stream
            .set_read_timeout(timeouts.read)
            .map_err(|e| DbError::Connection(format!("read timeout: {e}")))?;
        stream
            .set_write_timeout(timeouts.write)
            .map_err(|e| DbError::Connection(format!("write timeout: {e}")))?;
        let mut conn = TcpConnection {
            stream,
            profile: EngineProfile::Postgres,
            broken: false,
            epoch: mint_epoch(),
        };
        conn.stream
            .write_all(&MAGIC)
            .map_err(|e| DbError::Connection(format!("handshake: {e}")))?;
        let mut echo = [0u8; 2];
        conn.stream
            .read_exact(&mut echo)
            .map_err(|e| DbError::Connection(format!("handshake: {e}")))?;
        if echo != MAGIC {
            return Err(DbError::Connection("bad handshake echo".into()));
        }
        let profile = conn.fetch_profile()?;
        conn.profile = profile;
        Ok(conn)
    }

    fn round_trip(&mut self, req: &Request) -> DbResult<Response> {
        if self.broken {
            return Err(DbError::Connection(
                "connection is broken after an earlier transport failure".into(),
            ));
        }
        let started = std::time::Instant::now();
        let payload = encode_request(req);
        // +4 for the length prefix of each frame
        obs::global()
            .counter("dbcp.wire.bytes_out")
            .add(payload.len() as u64 + 4);
        let result = write_frame(&mut self.stream, &payload)
            .and_then(|()| read_frame(&mut self.stream))
            .inspect(|frame| {
                obs::global()
                    .counter("dbcp.wire.bytes_in")
                    .add(frame.len() as u64 + 4);
            })
            .and_then(decode_response);
        obs::global()
            .histogram("dbcp.wire.round_trip")
            .observe(started.elapsed());
        if matches!(result, Err(DbError::Connection(_))) {
            self.broken = true;
        }
        result
    }

    fn fetch_profile(&mut self) -> DbResult<EngineProfile> {
        match self.round_trip(&Request::Profile)? {
            Response::ProfileIs(p) => Ok(p),
            // typed rejections (admission control) must survive the probe
            Response::Error(e) => Err(e),
            other => Err(DbError::Connection(format!(
                "unexpected profile response {other:?}"
            ))),
        }
    }
}

impl Connection for TcpConnection {
    fn execute(&mut self, sql: &str) -> DbResult<StmtOutput> {
        self.round_trip(&Request::Execute(sql.to_owned()))?
            .into_output()
    }

    fn execute_batch(&mut self, statements: &[String]) -> DbResult<Vec<StmtOutput>> {
        match self.round_trip(&Request::Batch(statements.to_vec()))? {
            Response::BatchResults(items) => items.into_iter().map(Response::into_output).collect(),
            Response::Error(e) => Err(e),
            other => Err(DbError::Connection(format!(
                "unexpected batch response {other:?}"
            ))),
        }
    }

    fn begin(&mut self) -> DbResult<()> {
        self.round_trip(&Request::Begin)?.into_output().map(|_| ())
    }

    fn commit(&mut self) -> DbResult<()> {
        self.round_trip(&Request::Commit)?.into_output().map(|_| ())
    }

    fn rollback(&mut self) -> DbResult<()> {
        self.round_trip(&Request::Rollback)?
            .into_output()
            .map(|_| ())
    }

    fn set_isolation(&mut self, level: IsolationLevel) -> DbResult<()> {
        self.round_trip(&Request::SetIsolation(level))?
            .into_output()
            .map(|_| ())
    }

    fn set_statement_timeout(&mut self, timeout: Option<Duration>) -> DbResult<bool> {
        let ms = timeout.map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64);
        self.round_trip(&Request::SetStatementTimeout(ms.unwrap_or(0)))?
            .into_output()
            .map(|_| true)
    }

    fn ping(&mut self) -> bool {
        // a broken stream can never serve another frame
        !self.broken && !matches!(self.execute("SELECT 1"), Err(DbError::Connection(_)))
    }

    fn prepare_statement(&mut self, sql: &str) -> DbResult<(u64, usize)> {
        match self.round_trip(&Request::Prepare(sql.to_owned()))? {
            Response::Prepared {
                stmt_id,
                param_count,
            } => Ok((stmt_id, param_count as usize)),
            Response::Error(e) => Err(e),
            other => Err(DbError::Connection(format!(
                "unexpected prepare response {other:?}"
            ))),
        }
    }

    fn execute_prepared(&mut self, stmt_id: u64, params: &[Value]) -> DbResult<StmtOutput> {
        self.round_trip(&Request::ExecutePrepared {
            stmt_id,
            params: params.to_vec(),
        })?
        .into_output()
    }

    fn close_prepared(&mut self, stmt_id: u64) -> DbResult<()> {
        self.round_trip(&Request::ClosePrepared(stmt_id))?
            .into_output()
            .map(|_| ())
    }

    fn prepared_epoch(&self) -> u64 {
        self.epoch
    }

    fn metrics(&mut self, cmd: &MetricsCmd) -> DbResult<StmtOutput> {
        self.round_trip(&Request::Metrics(cmd.clone()))?
            .into_output()
    }

    fn run_pipeline(&mut self, steps: &[PipelineStep]) -> DbResult<PipelineOutcome> {
        match self.round_trip(&Request::Pipeline(steps.to_vec()))? {
            Response::PipelineResults { outputs, error } => {
                let outputs = outputs
                    .into_iter()
                    .map(Response::into_output)
                    .collect::<DbResult<Vec<_>>>()?;
                Ok(PipelineOutcome { outputs, error })
            }
            Response::Error(e) => Err(e),
            other => Err(DbError::Connection(format!(
                "unexpected pipeline response {other:?}"
            ))),
        }
    }

    fn profile(&self) -> EngineProfile {
        self.profile
    }
}

impl Drop for TcpConnection {
    fn drop(&mut self) {
        if !self.broken {
            // best-effort goodbye so the server can clean up promptly
            let _ = write_frame(&mut self.stream, &encode_request(&Request::Close));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A fake server that completes the handshake and profile probe, then
    /// abandons the client per `mode`.
    fn rogue_server(mode: &'static str) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut echo = [0u8; 2];
            sock.read_exact(&mut echo).unwrap();
            sock.write_all(&MAGIC).unwrap();
            // answer the profile probe so open() succeeds
            let _ = read_frame(&mut sock).unwrap();
            let payload =
                crate::wire::encode_response(&Response::ProfileIs(EngineProfile::Postgres));
            write_frame(&mut sock, &payload).unwrap();
            // first real request arrives…
            let _ = read_frame(&mut sock);
            match mode {
                // …and the server dies mid-frame: a length prefix
                // promising 100 bytes, then nothing
                "half-frame" => {
                    let _ = sock.write_all(&100u32.to_be_bytes());
                    let _ = sock.write_all(&[1, 2, 3]);
                    drop(sock);
                }
                // …and the server just closes
                _ => drop(sock),
            }
        });
        addr
    }

    #[test]
    fn mid_frame_disconnect_is_an_error_not_a_hang() {
        let addr = rogue_server("half-frame");
        let timeouts = TcpTimeouts {
            read: Some(Duration::from_millis(500)),
            write: Some(Duration::from_millis(500)),
        };
        let mut conn = TcpConnection::open_with(&addr, timeouts).unwrap();
        let started = std::time::Instant::now();
        let err = conn.execute("SELECT 1");
        assert!(
            matches!(err, Err(DbError::Connection(_))),
            "expected a connection error, got {err:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the client hung instead of failing"
        );
    }

    #[test]
    fn broken_connection_fast_fails_later_calls() {
        let addr = rogue_server("close");
        let timeouts = TcpTimeouts {
            read: Some(Duration::from_millis(500)),
            write: Some(Duration::from_millis(500)),
        };
        let mut conn = TcpConnection::open_with(&addr, timeouts).unwrap();
        assert!(conn.execute("SELECT 1").is_err());
        // poisoned: the next call fails immediately, without touching the
        // socket (which could block or desync)
        let started = std::time::Instant::now();
        let err = conn.execute("SELECT 1");
        assert!(matches!(err, Err(DbError::Connection(_))), "{err:?}");
        assert!(started.elapsed() < Duration::from_millis(100));
        assert!(!conn.ping());
    }

    #[test]
    fn connect_to_nothing_fails_cleanly() {
        // bind-then-drop to get a port with no listener
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let err = TcpConnection::open(&format!("127.0.0.1:{port}"));
        assert!(matches!(err, Err(DbError::Connection(_))));
    }
}
