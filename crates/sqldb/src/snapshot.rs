//! Table export/import for checkpointing.
//!
//! A [`TableDump`] is a self-contained copy of one table — schema, primary
//! key and rows — with a compact line-based text encoding designed for
//! durability rather than human editing:
//!
//! ```text
//! sqldb-table v1
//! name pagerank__pt3
//! pk 0
//! col node INT
//! col rank FLOAT
//! rows 2
//! i1    f3ff0000000000000
//! i2    n
//! ```
//!
//! Every value carries a one-byte tag (`n`ull, `i`nt, `f`loat, `t`ext,
//! `b`ool). Floats are encoded as the 16-hex-digit IEEE-754 bit pattern, so
//! NaN payloads, signed zero and ±infinity round-trip *exactly* — a decoded
//! dump is bit-identical to the exported table. Text escapes `\`, tab,
//! newline and carriage return, so arbitrary unicode survives the
//! line/tab-delimited framing.

use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::storage::Table;
use crate::types::{Column, DataType, Schema};
use crate::value::{Row, Value};
use std::fmt::Write as _;

/// A portable snapshot of one table: schema, primary key, and all rows.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDump {
    /// Table name as registered in the catalog.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<Column>,
    /// Primary-key column index, if declared.
    pub primary_key: Option<usize>,
    /// All rows, in scan order.
    pub rows: Vec<Row>,
}

impl TableDump {
    /// Serializes the dump to the `sqldb-table v1` text format.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str("sqldb-table v1\n");
        let _ = writeln!(out, "name {}", escape(&self.name));
        match self.primary_key {
            Some(i) => {
                let _ = writeln!(out, "pk {i}");
            }
            None => out.push_str("pk -\n"),
        }
        for c in &self.columns {
            let _ = writeln!(out, "col {} {}", escape(&c.name), c.data_type);
        }
        let _ = writeln!(out, "rows {}", self.rows.len());
        for row in &self.rows {
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    out.push('\t');
                }
                encode_value(&mut out, v);
            }
            out.push('\n');
        }
        out
    }

    /// Parses a dump previously produced by [`TableDump::encode`].
    ///
    /// # Errors
    /// Returns [`DbError::Invalid`] on any malformed header, row count
    /// mismatch, arity mismatch, or unrecognized value tag — a truncated or
    /// corrupted dump never decodes to a plausible-but-wrong table.
    pub fn decode(text: &str) -> DbResult<TableDump> {
        let mut lines = text.lines();
        let bad = |what: &str| DbError::Invalid(format!("table dump: {what}"));
        match lines.next() {
            Some("sqldb-table v1") => {}
            Some(other) => {
                return Err(bad(&format!("unsupported header {other:?}")));
            }
            None => return Err(bad("empty input")),
        }
        let name = lines
            .next()
            .and_then(|l| l.strip_prefix("name "))
            .map(unescape)
            .ok_or_else(|| bad("missing name line"))??;
        let pk_line = lines
            .next()
            .and_then(|l| l.strip_prefix("pk "))
            .ok_or_else(|| bad("missing pk line"))?;
        let primary_key = match pk_line {
            "-" => None,
            n => Some(
                n.parse::<usize>()
                    .map_err(|_| bad(&format!("bad pk index {n:?}")))?,
            ),
        };
        let mut columns = Vec::new();
        let nrows;
        loop {
            let line = lines.next().ok_or_else(|| bad("missing rows line"))?;
            if let Some(rest) = line.strip_prefix("col ") {
                let (cname, ctype) = rest
                    .rsplit_once(' ')
                    .ok_or_else(|| bad(&format!("bad column line {line:?}")))?;
                let data_type = DataType::parse(ctype)
                    .ok_or_else(|| bad(&format!("unknown column type {ctype:?}")))?;
                columns.push(Column {
                    name: unescape(cname)?,
                    data_type,
                });
            } else if let Some(rest) = line.strip_prefix("rows ") {
                nrows = rest
                    .parse::<usize>()
                    .map_err(|_| bad(&format!("bad row count {rest:?}")))?;
                break;
            } else {
                return Err(bad(&format!("unexpected line {line:?}")));
            }
        }
        let arity = columns.len();
        if arity == 0 {
            return Err(bad("no columns"));
        }
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let line = lines.next().ok_or_else(|| bad("truncated: missing rows"))?;
            let row: Row = line
                .split('\t')
                .map(decode_value)
                .collect::<DbResult<_>>()?;
            if row.len() != arity {
                return Err(bad(&format!(
                    "row arity {} does not match {arity} columns",
                    row.len()
                )));
            }
            rows.push(row);
        }
        if lines.next().is_some() {
            return Err(bad("trailing data after declared rows"));
        }
        Ok(TableDump {
            name,
            columns,
            primary_key,
            rows,
        })
    }

    /// Best-effort decode for damaged dumps — the forensic companion to the
    /// strict [`TableDump::decode`].
    ///
    /// Quarantined checkpoint files (`*.corrupt`) still hold data an
    /// operator may want back. This parser requires an intact header
    /// (magic, name, pk, columns, row count) but then keeps the longest
    /// prefix of rows that decode cleanly, dropping everything at and after
    /// the first torn or malformed row, and ignoring trailing junk. The
    /// accompanying [`SalvageReport`] says exactly how much survived, so a
    /// salvaged table can never be mistaken for a faithful one.
    ///
    /// # Errors
    /// Returns [`DbError::Invalid`] only when the header itself is damaged —
    /// without a trustworthy schema there is nothing safe to salvage.
    pub fn decode_salvage(text: &str) -> DbResult<(TableDump, SalvageReport)> {
        let header_end = Self::header_span(text)?;
        let header = &text[..header_end];
        let declared = header
            .lines()
            .next_back()
            .and_then(|l| l.strip_prefix("rows "))
            .and_then(|n| n.parse::<usize>().ok())
            .ok_or_else(|| DbError::Invalid("table dump: bad row count".into()))?;
        // re-declare zero rows so the strict decoder validates just the
        // header fields (magic, name, pk, columns)
        let rows_line_len =
            header.lines().next_back().map_or(0, |l| l.len()) + usize::from(header.ends_with('\n'));
        let rows_line_start = header_end - rows_line_len;
        let mut dump = TableDump::decode(&format!("{}rows 0\n", &header[..rows_line_start]))?;
        debug_assert!(dump.rows.is_empty());
        let arity = dump.columns.len();
        let body: Vec<&str> = text[header_end..].lines().take(declared).collect();
        for line in &body {
            let row: DbResult<Row> = line.split('\t').map(decode_value).collect();
            match row {
                Ok(row) if row.len() == arity => dump.rows.push(row),
                _ => break,
            }
        }
        let report = SalvageReport {
            rows_kept: dump.rows.len(),
            rows_dropped: declared - dump.rows.len(),
            truncated: body.len() < declared,
        };
        Ok((dump, report))
    }

    /// Byte offset one past the `rows N` line, validating nothing else —
    /// shared by [`TableDump::decode_salvage`] to split header from rows.
    fn header_span(text: &str) -> DbResult<usize> {
        let bad = |what: &str| DbError::Invalid(format!("table dump: {what}"));
        let mut offset = 0usize;
        for line in text.split_inclusive('\n') {
            offset += line.len();
            if line.trim_end_matches('\n').starts_with("rows ") {
                return Ok(offset);
            }
        }
        Err(bad("missing rows line"))
    }
}

/// What [`TableDump::decode_salvage`] managed to pull out of a damaged dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SalvageReport {
    /// Rows that decoded cleanly (the kept prefix).
    pub rows_kept: usize,
    /// Declared rows that were torn, malformed, or missing.
    pub rows_dropped: usize,
    /// The file ended before the declared row count — a torn tail rather
    /// than in-place corruption.
    pub truncated: bool,
}

impl SalvageReport {
    /// Nothing was lost: every declared row decoded.
    pub fn complete(&self) -> bool {
        self.rows_dropped == 0 && !self.truncated
    }
}

fn encode_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push('n'),
        Value::Int(i) => {
            let _ = write!(out, "i{i}");
        }
        Value::Float(f) => {
            let _ = write!(out, "f{:016x}", f.to_bits());
        }
        Value::Text(s) => {
            out.push('t');
            out.push_str(&escape(s));
        }
        Value::Bool(b) => out.push_str(if *b { "b1" } else { "b0" }),
    }
}

fn decode_value(field: &str) -> DbResult<Value> {
    let bad = |what: String| DbError::Invalid(format!("table dump: {what}"));
    let mut chars = field.chars();
    let tag = chars
        .next()
        .ok_or_else(|| bad("empty value field".into()))?;
    let rest = chars.as_str();
    match tag {
        'n' if rest.is_empty() => Ok(Value::Null),
        'i' => rest
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| bad(format!("bad int {rest:?}"))),
        'f' => {
            if rest.len() != 16 {
                return Err(bad(format!("bad float bits {rest:?}")));
            }
            u64::from_str_radix(rest, 16)
                .map(|bits| Value::Float(f64::from_bits(bits)))
                .map_err(|_| bad(format!("bad float bits {rest:?}")))
        }
        't' => unescape(rest).map(Value::Text),
        'b' => match rest {
            "0" => Ok(Value::Bool(false)),
            "1" => Ok(Value::Bool(true)),
            _ => Err(bad(format!("bad bool {rest:?}"))),
        },
        _ => Err(bad(format!("unknown value tag in {field:?}"))),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> DbResult<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(DbError::Invalid(format!(
                    "table dump: bad escape \\{}",
                    other.map(String::from).unwrap_or_default()
                )));
            }
        }
    }
    Ok(out)
}

impl Database {
    /// Exports the named table as a [`TableDump`] (schema + all rows).
    ///
    /// # Errors
    /// Returns [`DbError::NotFound`] when the table does not exist.
    pub fn export_table(&self, name: &str) -> DbResult<TableDump> {
        let handle = self.catalog().table(name)?;
        let table = handle.read();
        Ok(TableDump {
            name: name.to_owned(),
            columns: table.schema().columns().to_vec(),
            primary_key: table.schema().primary_key(),
            rows: table.scan(),
        })
    }

    /// (Re)creates the dumped table in this database, replacing any
    /// existing table of the same name.
    ///
    /// # Errors
    /// Returns [`DbError::Invalid`] when the dump's schema or rows are
    /// inconsistent (duplicate columns, arity mismatch, PK violations).
    pub fn import_table(&self, dump: &TableDump) -> DbResult<()> {
        let schema = Schema::new(dump.columns.clone(), dump.primary_key)?;
        let mut table = Table::new(schema);
        for row in &dump.rows {
            table.insert(row.clone())?;
        }
        self.catalog().drop_table(&dump.name, true)?;
        self.catalog().create_table(&dump.name, table, false)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::EngineProfile;

    fn dump2() -> TableDump {
        TableDump {
            name: "t".into(),
            columns: vec![
                Column::new("id", DataType::Int),
                Column::new("v", DataType::Float),
            ],
            primary_key: Some(0),
            rows: vec![
                vec![Value::Int(1), Value::Float(0.5)],
                vec![Value::Int(2), Value::Null],
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let d = dump2();
        assert_eq!(TableDump::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn special_floats_round_trip_bit_exact() {
        let d = TableDump {
            name: "f".into(),
            columns: vec![Column::new("x", DataType::Float)],
            primary_key: None,
            rows: vec![
                vec![Value::Float(f64::NAN)],
                vec![Value::Float(f64::INFINITY)],
                vec![Value::Float(f64::NEG_INFINITY)],
                vec![Value::Float(-0.0)],
                vec![Value::Float(0.1 + 0.2)],
            ],
        };
        let back = TableDump::decode(&d.encode()).unwrap();
        for (a, b) in d.rows.iter().zip(&back.rows) {
            let (Value::Float(a), Value::Float(b)) = (&a[0], &b[0]) else {
                panic!("float expected");
            };
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn hostile_text_round_trips() {
        let d = TableDump {
            name: "weird name\twith\ttabs".into(),
            columns: vec![Column::new("s", DataType::Text)],
            primary_key: None,
            rows: vec![
                vec![Value::Text("tab\there\nnewline\r\\slash".into())],
                vec![Value::Text("ünïcödé 💾".into())],
                vec![Value::Text(String::new())],
            ],
        };
        assert_eq!(TableDump::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn corrupted_dumps_are_rejected() {
        let good = dump2().encode();
        // truncation mid-rows
        let truncated = &good[..good.len() - 2];
        assert!(matches!(
            TableDump::decode(truncated),
            Err(DbError::Invalid(_))
        ));
        // wrong magic
        assert!(TableDump::decode("sqldb-table v9\nname t\npk -\nrows 0\n").is_err());
        // trailing junk
        let trailing = format!("{good}i9\n");
        assert!(TableDump::decode(&trailing).is_err());
        // bad tag
        assert!(decode_value("x1").is_err());
        assert!(decode_value("").is_err());
    }

    #[test]
    fn salvage_recovers_the_valid_prefix_of_a_truncated_dump() {
        let d = dump2();
        let text = d.encode();
        // cut mid-way through the second row: the first row must survive
        let second_row_at = text.rfind("i2").unwrap();
        let (got, report) = TableDump::decode_salvage(&text[..second_row_at + 1]).unwrap();
        assert_eq!(got.name, d.name);
        assert_eq!(got.columns, d.columns);
        assert_eq!(got.rows, vec![d.rows[0].clone()]);
        assert_eq!(
            report,
            SalvageReport {
                rows_kept: 1,
                rows_dropped: 1,
                truncated: false, // the torn second row is present, just bad
            }
        );

        // cut before the second row line even starts: now it is a torn tail
        let (_, report) = TableDump::decode_salvage(&text[..second_row_at]).unwrap();
        assert!(report.truncated);
        assert_eq!(report.rows_dropped, 1);
    }

    #[test]
    fn salvage_stops_at_the_first_corrupt_row_and_ignores_trailing_junk() {
        let mut big = dump2();
        big.rows.push(vec![Value::Int(3), Value::Float(1.5)]);
        let text = big.encode();
        // corrupt the middle row's value tag
        let corrupted = text.replacen("i2", "z2", 1);
        let (got, report) = TableDump::decode_salvage(&corrupted).unwrap();
        assert_eq!(got.rows, vec![big.rows[0].clone()]);
        assert_eq!(report.rows_kept, 1);
        assert_eq!(report.rows_dropped, 2);
        assert!(!report.truncated);
        assert!(!report.complete());

        // junk past the declared row count is ignored, not fatal
        let trailing = format!("{text}garbage that never decodes\n");
        let (got, report) = TableDump::decode_salvage(&trailing).unwrap();
        assert_eq!(got, big);
        assert!(report.complete());
    }

    #[test]
    fn salvage_of_an_intact_dump_is_lossless() {
        let d = dump2();
        let (got, report) = TableDump::decode_salvage(&d.encode()).unwrap();
        assert_eq!(got, d);
        assert_eq!(
            report,
            SalvageReport {
                rows_kept: 2,
                rows_dropped: 0,
                truncated: false
            }
        );
        assert!(report.complete());
    }

    #[test]
    fn salvage_refuses_a_damaged_header() {
        let text = dump2().encode();
        // no rows line at all
        let cut = &text[..text.find("rows ").unwrap()];
        assert!(matches!(
            TableDump::decode_salvage(cut),
            Err(DbError::Invalid(_))
        ));
        // bad magic: schema cannot be trusted
        let bad_magic = text.replacen("sqldb-table v1", "sqldb-table v9", 1);
        assert!(TableDump::decode_salvage(&bad_magic).is_err());
        // unknown column type
        let bad_col = text.replacen("col v FLOAT", "col v BLOB", 1);
        assert!(TableDump::decode_salvage(&bad_col).is_err());
    }

    #[test]
    fn database_export_import() {
        let db = Database::new(EngineProfile::Postgres);
        {
            let mut s = db.connect();
            s.execute("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
                .unwrap();
            s.execute("INSERT INTO t VALUES (1, 0.25), (2, Infinity)")
                .unwrap();
        }
        let dump = db.export_table("t").unwrap();
        assert_eq!(dump.rows.len(), 2);

        // import into a fresh database and compare contents
        let db2 = Database::new(EngineProfile::Postgres);
        db2.import_table(&dump).unwrap();
        let dump2 = db2.export_table("t").unwrap();
        assert_eq!(dump, dump2);

        // import replaces an existing table
        {
            let mut s = db2.connect();
            s.execute("DELETE FROM t").unwrap();
        }
        db2.import_table(&dump).unwrap();
        assert_eq!(db2.export_table("t").unwrap().rows.len(), 2);

        assert!(matches!(
            db.export_table("missing"),
            Err(DbError::NotFound(_))
        ));
    }
}
