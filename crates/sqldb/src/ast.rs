//! Abstract syntax tree for the SQL dialect understood by the engine.
//!
//! The same AST is reused by the `sqloop` middleware for query analysis and
//! dialect-targeted rendering (see [`crate::render`]).

use crate::types::DataType;
use crate::value::Value;

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (cols…)` or `CREATE TABLE name AS SELECT …`.
    CreateTable(CreateTable),
    /// `CREATE [UNIQUE] INDEX name ON table (column)`.
    CreateIndex(CreateIndex),
    /// `CREATE [OR REPLACE] VIEW name AS select`.
    CreateView(CreateView),
    /// `DROP TABLE [IF EXISTS] name`.
    DropTable {
        /// Table name.
        name: String,
        /// `IF EXISTS` was present.
        if_exists: bool,
    },
    /// `DROP VIEW [IF EXISTS] name`.
    DropView {
        /// View name.
        name: String,
        /// `IF EXISTS` was present.
        if_exists: bool,
    },
    /// `DROP INDEX [IF EXISTS] name`.
    DropIndex {
        /// Index name.
        name: String,
        /// `IF EXISTS` was present.
        if_exists: bool,
    },
    /// `TRUNCATE [TABLE] name`.
    Truncate {
        /// Table name.
        name: String,
    },
    /// `INSERT INTO table [(cols)] VALUES … | SELECT …`.
    Insert(Insert),
    /// `UPDATE …` (both PostgreSQL `FROM` and MySQL `JOIN` forms).
    Update(Update),
    /// `DELETE FROM table [WHERE …]`.
    Delete {
        /// Target table.
        table: String,
        /// `WHERE` predicate.
        selection: Option<Expr>,
    },
    /// A query.
    Select(SelectStmt),
    /// `EXPLAIN [ANALYZE] <query>` — textual plan output; with `ANALYZE`
    /// the statement is executed and the plan is annotated with
    /// per-operator actuals.
    Explain {
        /// `ANALYZE` was present: execute and report runtime actuals.
        analyze: bool,
        /// The explained statement.
        stmt: Box<Statement>,
    },
    /// `BEGIN [TRANSACTION]`.
    Begin,
    /// `COMMIT`.
    Commit,
    /// `ROLLBACK`.
    Rollback,
}

impl Statement {
    /// A stable lower-case label for the statement's kind, used to bucket
    /// per-kind execution metrics (`sqldb.stmt.<kind>`).
    pub fn kind_label(&self) -> &'static str {
        match self {
            Statement::CreateTable(_) => "create_table",
            Statement::CreateIndex(_) => "create_index",
            Statement::CreateView(_) => "create_view",
            Statement::DropTable { .. } => "drop_table",
            Statement::DropView { .. } => "drop_view",
            Statement::DropIndex { .. } => "drop_index",
            Statement::Truncate { .. } => "truncate",
            Statement::Insert(_) => "insert",
            Statement::Update(_) => "update",
            Statement::Delete { .. } => "delete",
            Statement::Select(_) => "select",
            Statement::Explain { .. } => "explain",
            Statement::Begin => "begin",
            Statement::Commit => "commit",
            Statement::Rollback => "rollback",
        }
    }
}

/// `CREATE TABLE` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name (lower-cased by the parser).
    pub name: String,
    /// Column definitions; empty when `as_select` is used.
    pub columns: Vec<ColumnDef>,
    /// `IF NOT EXISTS` was present.
    pub if_not_exists: bool,
    /// `CREATE TABLE … AS SELECT …` source.
    pub as_select: Option<Box<SelectStmt>>,
    /// `UNLOGGED` was present (accepted for PostgreSQL parity, ignored).
    pub unlogged: bool,
}

/// A column definition inside `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name (lower-cased).
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// `PRIMARY KEY` was attached to this column.
    pub primary_key: bool,
}

/// `CREATE INDEX` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    /// Index name.
    pub name: String,
    /// Indexed table.
    pub table: String,
    /// Indexed column (single-column indexes only).
    pub column: String,
    /// Uniqueness constraint enforced on insert/update.
    pub unique: bool,
    /// `IF NOT EXISTS` was present.
    pub if_not_exists: bool,
}

/// `CREATE VIEW` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateView {
    /// View name.
    pub name: String,
    /// Defining query.
    pub query: Box<SelectStmt>,
    /// `OR REPLACE` was present.
    pub or_replace: bool,
}

/// `INSERT` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Optional explicit column list.
    pub columns: Option<Vec<String>>,
    /// Row source.
    pub source: InsertSource,
}

/// The row source of an `INSERT`.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `VALUES (…), (…)`.
    Values(Vec<Vec<Expr>>),
    /// `INSERT INTO … SELECT …`.
    Select(Box<SelectStmt>),
}

/// `UPDATE` payload covering both dialect syntaxes:
/// PostgreSQL `UPDATE t SET … FROM f WHERE …` and
/// MySQL `UPDATE t JOIN f ON … SET … [WHERE …]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// Optional alias for the target table.
    pub alias: Option<String>,
    /// `SET column = expr` assignments.
    pub assignments: Vec<(String, Expr)>,
    /// Extra relations joined in (PostgreSQL `FROM` list or MySQL `JOIN`s).
    pub from: Vec<TableRef>,
    /// MySQL-style `ON` condition (folded into `selection` during planning).
    pub join_on: Option<Expr>,
    /// `WHERE` predicate.
    pub selection: Option<Expr>,
}

/// A full query: set-expression body plus `ORDER BY` / `LIMIT`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// The body (select core, VALUES, or set operation tree).
    pub body: SetExpr,
    /// `ORDER BY expr [ASC|DESC]` keys.
    pub order_by: Vec<OrderByExpr>,
    /// `LIMIT n`.
    pub limit: Option<u64>,
}

impl SelectStmt {
    /// Wraps a select core into a bare statement with no ordering or limit.
    pub fn from_select(select: Select) -> SelectStmt {
        SelectStmt {
            body: SetExpr::Select(Box::new(select)),
            order_by: Vec::new(),
            limit: None,
        }
    }
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByExpr {
    /// Sort expression.
    pub expr: Expr,
    /// Ascending (`true`) or descending.
    pub asc: bool,
}

/// Body of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// A plain `SELECT` core.
    Select(Box<Select>),
    /// A literal `VALUES` list.
    Values(Vec<Vec<Expr>>),
    /// `left UNION [ALL] right` (and other set operators).
    SetOp {
        /// Which set operator.
        op: SetOperator,
        /// Left input.
        left: Box<SetExpr>,
        /// Right input.
        right: Box<SetExpr>,
    },
}

/// Set operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOperator {
    /// `UNION` (duplicate-eliminating).
    Union,
    /// `UNION ALL`.
    UnionAll,
}

/// A `SELECT` core.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `DISTINCT` was present.
    pub distinct: bool,
    /// Projection list.
    pub projections: Vec<SelectItem>,
    /// Comma-separated `FROM` items, each with its joins.
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub selection: Option<Expr>,
    /// `GROUP BY` keys.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
}

impl Select {
    /// An empty select core (no projections, no FROM) to be filled in.
    pub fn empty() -> Select {
        Select {
            distinct: false,
            projections: Vec::new(),
            from: Vec::new(),
            selection: None,
            group_by: Vec::new(),
            having: None,
        }
    }
}

/// One projection in a `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// `alias.*`.
    QualifiedWildcard(String),
    /// `expr [AS alias]`.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output alias.
        alias: Option<String>,
    },
}

/// A `FROM` item: a base factor plus zero or more joins.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// The leftmost relation.
    pub base: TableFactor,
    /// Joins applied left-to-right.
    pub joins: Vec<Join>,
}

impl TableRef {
    /// A bare table reference without joins.
    pub fn table(name: impl Into<String>, alias: Option<String>) -> TableRef {
        TableRef {
            base: TableFactor::Table {
                name: name.into(),
                alias,
            },
            joins: Vec::new(),
        }
    }
}

/// A relation usable in `FROM`.
#[derive(Debug, Clone, PartialEq)]
pub enum TableFactor {
    /// A named table or view, optionally aliased.
    Table {
        /// Table or view name (lower-cased).
        name: String,
        /// Optional alias (lower-cased).
        alias: Option<String>,
    },
    /// A parenthesized subquery with a mandatory alias.
    Derived {
        /// The subquery.
        subquery: Box<SelectStmt>,
        /// Alias naming the derived relation.
        alias: String,
    },
}

impl TableFactor {
    /// The name this factor is visible as in the enclosing scope.
    pub fn visible_name(&self) -> &str {
        match self {
            TableFactor::Table { name, alias } => alias.as_deref().unwrap_or(name),
            TableFactor::Derived { alias, .. } => alias,
        }
    }
}

/// One join step.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join flavor.
    pub join_type: JoinType,
    /// The right-hand relation.
    pub factor: TableFactor,
    /// `ON` condition (`None` for CROSS joins).
    pub on: Option<Expr>,
}

/// Supported join flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// `[INNER] JOIN`.
    Inner,
    /// `LEFT [OUTER] JOIN`.
    Left,
    /// `CROSS JOIN` / comma join.
    Cross,
}

/// Scalar (and aggregate-call) expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A possibly-qualified column reference.
    Column {
        /// Optional table/alias qualifier (lower-cased).
        table: Option<String>,
        /// Column name (lower-cased).
        name: String,
    },
    /// Binary operator application.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operator application.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Function or aggregate call, e.g. `COALESCE(a, 0)` or `SUM(x)`.
    Function {
        /// Function name (lower-cased).
        name: String,
        /// Arguments; `COUNT(*)` is encoded as a single `Wildcard` arg.
        args: Vec<FunctionArg>,
    },
    /// Searched `CASE WHEN … THEN … [ELSE …] END`.
    Case {
        /// `WHEN cond THEN result` branches.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` result.
        else_result: Option<Box<Expr>>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// `NOT BETWEEN` when true.
        negated: bool,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// Source expression.
        expr: Box<Expr>,
        /// Target type.
        data_type: DataType,
    },
    /// A `?` positional parameter placeholder (0-based, in lexical order).
    /// Only valid in prepared statements; execution substitutes a literal
    /// before binding.
    Param(usize),
}

/// An argument to a function call.
#[derive(Debug, Clone, PartialEq)]
pub enum FunctionArg {
    /// A scalar expression argument.
    Expr(Expr),
    /// The `*` in `COUNT(*)`.
    Wildcard,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `!=` / `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `||` string concatenation
    Concat,
}

impl BinaryOp {
    /// SQL spelling of the operator.
    pub fn as_sql(&self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Concat => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Numeric negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// The five aggregate functions SQLoop parallelizes (paper §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunction {
    /// `SUM`
    Sum,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `COUNT`
    Count,
    /// `AVG`
    Avg,
}

impl AggregateFunction {
    /// Parses an aggregate function name (case-insensitive).
    pub fn parse(name: &str) -> Option<AggregateFunction> {
        match name.to_ascii_lowercase().as_str() {
            "sum" => Some(AggregateFunction::Sum),
            "min" => Some(AggregateFunction::Min),
            "max" => Some(AggregateFunction::Max),
            "count" => Some(AggregateFunction::Count),
            "avg" => Some(AggregateFunction::Avg),
            _ => None,
        }
    }

    /// SQL spelling.
    pub fn as_sql(&self) -> &'static str {
        match self {
            AggregateFunction::Sum => "SUM",
            AggregateFunction::Min => "MIN",
            AggregateFunction::Max => "MAX",
            AggregateFunction::Count => "COUNT",
            AggregateFunction::Avg => "AVG",
        }
    }
}

impl Expr {
    /// Shorthand for an unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            table: None,
            name: name.into().to_ascii_lowercase(),
        }
    }

    /// Shorthand for a qualified column reference.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            table: Some(table.into().to_ascii_lowercase()),
            name: name.into().to_ascii_lowercase(),
        }
    }

    /// Shorthand for a literal.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// Builds `self op other`.
    pub fn binary(self, op: BinaryOp, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op,
            right: Box::new(other),
        }
    }

    /// True when this expression *is* (at top level) an aggregate call.
    pub fn as_aggregate(&self) -> Option<(AggregateFunction, &[FunctionArg])> {
        if let Expr::Function { name, args } = self {
            AggregateFunction::parse(name).map(|f| (f, args.as_slice()))
        } else {
            None
        }
    }

    /// True when the expression tree contains an aggregate call anywhere.
    pub fn contains_aggregate(&self) -> bool {
        self.as_aggregate().is_some() || self.children().iter().any(|c| c.contains_aggregate())
    }

    /// Immediate child expressions (does not descend into subqueries).
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Literal(_) | Expr::Column { .. } | Expr::Param(_) => Vec::new(),
            Expr::Binary { left, right, .. } => vec![left, right],
            Expr::Unary { expr, .. } => vec![expr],
            Expr::Function { args, .. } => args
                .iter()
                .filter_map(|a| match a {
                    FunctionArg::Expr(e) => Some(e),
                    FunctionArg::Wildcard => None,
                })
                .collect(),
            Expr::Case {
                branches,
                else_result,
            } => {
                let mut v: Vec<&Expr> = Vec::new();
                for (c, r) in branches {
                    v.push(c);
                    v.push(r);
                }
                if let Some(e) = else_result {
                    v.push(e);
                }
                v
            }
            Expr::IsNull { expr, .. } => vec![expr],
            Expr::InList { expr, list, .. } => {
                let mut v = vec![expr.as_ref()];
                v.extend(list.iter());
                v
            }
            Expr::Between {
                expr, low, high, ..
            } => vec![expr, low, high],
            Expr::Cast { expr, .. } => vec![expr],
        }
    }

    /// Collects every (qualifier, column) reference in the tree.
    pub fn column_refs(&self) -> Vec<(Option<&str>, &str)> {
        let mut out = Vec::new();
        self.visit_columns(&mut |t, n| out.push((t, n)));
        out
    }

    fn visit_columns<'a>(&'a self, f: &mut impl FnMut(Option<&'a str>, &'a str)) {
        if let Expr::Column { table, name } = self {
            f(table.as_deref(), name);
        }
        for c in self.children() {
            c.visit_columns(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let e = Expr::Function {
            name: "sum".into(),
            args: vec![FunctionArg::Expr(Expr::col("x"))],
        };
        assert!(e.as_aggregate().is_some());
        assert!(e.contains_aggregate());

        let wrapped = Expr::Function {
            name: "coalesce".into(),
            args: vec![FunctionArg::Expr(e), FunctionArg::Expr(Expr::lit(0i64))],
        };
        assert!(wrapped.as_aggregate().is_none());
        assert!(wrapped.contains_aggregate());
    }

    #[test]
    fn column_refs_collects_qualifiers() {
        let e = Expr::qcol("t", "a").binary(BinaryOp::Add, Expr::col("b"));
        let refs = e.column_refs();
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0], (Some("t"), "a"));
        assert_eq!(refs[1], (None, "b"));
    }

    #[test]
    fn aggregate_function_parsing() {
        assert_eq!(
            AggregateFunction::parse("SUM"),
            Some(AggregateFunction::Sum)
        );
        assert_eq!(
            AggregateFunction::parse("avg"),
            Some(AggregateFunction::Avg)
        );
        assert_eq!(AggregateFunction::parse("median"), None);
    }

    #[test]
    fn visible_name_prefers_alias() {
        let f = TableFactor::Table {
            name: "edges".into(),
            alias: Some("e".into()),
        };
        assert_eq!(f.visible_name(), "e");
        let f = TableFactor::Table {
            name: "edges".into(),
            alias: None,
        };
        assert_eq!(f.visible_name(), "edges");
    }

    #[test]
    fn case_children_include_all_parts() {
        let e = Expr::Case {
            branches: vec![(Expr::col("c"), Expr::lit(1i64))],
            else_result: Some(Box::new(Expr::lit(2i64))),
        };
        assert_eq!(e.children().len(), 3);
    }
}
