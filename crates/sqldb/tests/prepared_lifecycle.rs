//! Database-level prepared-statement lifecycle: DDL invalidating cached
//! plans behind live handles, and LRU eviction under a tiny cache cap.

use sqldb::{Database, EngineProfile, StmtOutput, Value};

fn rows(out: StmtOutput) -> Vec<Vec<Value>> {
    match out {
        StmtOutput::Rows(r) => r.rows,
        other => panic!("expected rows, got {other:?}"),
    }
}

#[test]
fn ddl_invalidates_plan_behind_live_handle() {
    let db = Database::new(EngineProfile::Postgres);
    let mut s = db.connect();
    s.execute("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
        .unwrap();
    s.execute("INSERT INTO t VALUES (1, 1.0), (2, 2.0)")
        .unwrap();

    let h = s.prepare("SELECT v FROM t WHERE id = ?").unwrap();
    let r = rows(s.execute_prepared(&h, &[Value::Int(1)]).unwrap());
    assert_eq!(r, vec![vec![Value::Float(1.0)]]);

    // Drop and recreate the referenced table: the cached plan is now for a
    // table generation that no longer exists.
    s.execute("DROP TABLE t").unwrap();
    s.execute("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
        .unwrap();
    s.execute("INSERT INTO t VALUES (1, 10.0)").unwrap();

    // The handle stays valid — it transparently re-prepares and sees the
    // new table's contents.
    let r = rows(s.execute_prepared(&h, &[Value::Int(1)]).unwrap());
    assert_eq!(r, vec![vec![Value::Float(10.0)]]);

    let stats = db.plan_cache_stats();
    assert!(
        stats.invalidations >= 1,
        "DDL must outdate the cached plan, stats: {stats:?}"
    );
}

#[test]
fn alter_via_drop_create_changes_handle_output_shape() {
    let db = Database::new(EngineProfile::Postgres);
    let mut s = db.connect();
    s.execute("CREATE TABLE m (k INT PRIMARY KEY)").unwrap();
    s.execute("INSERT INTO m VALUES (7)").unwrap();

    let h = s.prepare("SELECT * FROM m").unwrap();
    assert_eq!(
        rows(s.execute_prepared(&h, &[]).unwrap()),
        vec![vec![Value::Int(7)]]
    );

    // Recreate with an extra column: `SELECT *` through the same handle
    // must reflect the new schema, not the one it was prepared against.
    s.execute("DROP TABLE m").unwrap();
    s.execute("CREATE TABLE m (k INT PRIMARY KEY, w FLOAT)")
        .unwrap();
    s.execute("INSERT INTO m VALUES (8, 0.5)").unwrap();

    assert_eq!(
        rows(s.execute_prepared(&h, &[]).unwrap()),
        vec![vec![Value::Int(8), Value::Float(0.5)]]
    );
}

#[test]
fn tiny_cap_evicts_but_stays_correct() {
    let db = Database::new(EngineProfile::Postgres);
    db.set_plan_cache_capacity(2);
    let mut s = db.connect();
    s.execute("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
        .unwrap();
    s.execute("INSERT INTO t VALUES (1, 1.0), (2, 2.0), (3, 3.0)")
        .unwrap();

    // Four distinct cacheable statements cycling through a 2-entry cache:
    // every round evicts, yet every execution must answer correctly.
    let handles: Vec<_> = (1..=3)
        .map(|id| {
            s.prepare(&format!("SELECT v FROM t WHERE id = {id}"))
                .unwrap()
        })
        .collect();
    let sum = s.prepare("SELECT SUM(v) FROM t").unwrap();

    for _ in 0..5 {
        for (i, h) in handles.iter().enumerate() {
            let r = rows(s.execute_prepared(h, &[]).unwrap());
            assert_eq!(r, vec![vec![Value::Float((i + 1) as f64)]]);
        }
        let r = rows(s.execute_prepared(&sum, &[]).unwrap());
        assert_eq!(r, vec![vec![Value::Float(6.0)]]);
    }

    let stats = db.plan_cache_stats();
    assert!(stats.entries <= 2, "cap must hold, stats: {stats:?}");
    assert!(
        stats.evictions > 0,
        "cycling 4 statements through a 2-entry cache must evict, stats: {stats:?}"
    );
}

#[test]
fn tiny_cap_hot_statement_keeps_hitting() {
    let db = Database::new(EngineProfile::Postgres);
    db.set_plan_cache_capacity(2);
    let mut s = db.connect();
    s.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    s.execute("INSERT INTO t VALUES (1)").unwrap();

    let hot = s.prepare("SELECT COUNT(*) FROM t").unwrap();
    for _ in 0..20 {
        let r = rows(s.execute_prepared(&hot, &[]).unwrap());
        assert_eq!(r, vec![vec![Value::Int(1)]]);
    }
    let stats = db.plan_cache_stats();
    assert!(
        stats.hits >= 20,
        "a hot handle under an adequate cap must keep hitting, stats: {stats:?}"
    );
}
