//! Named counters, gauges and fixed-bucket latency histograms behind a
//! registry, with snapshot/diff support.
//!
//! The hot path is lock-free: a metric handle is an `Arc` around atomics,
//! so after the first lookup every update is a single `fetch_add`. Lookups
//! themselves take a read lock on the name table only, and callers on hot
//! paths are expected to cache the handle (see [`MetricsRegistry::counter`]).

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of histogram buckets: power-of-two microsecond boundaries from
/// 1 µs up, with the last bucket catching everything larger.
pub const HISTOGRAM_BUCKETS: usize = 24;

/// A monotonically increasing counter.
///
/// # Examples
/// ```
/// let reg = obs::MetricsRegistry::new();
/// let c = reg.counter("tasks.completed");
/// c.add(2);
/// c.inc();
/// assert_eq!(c.get(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge (set/add semantics).
///
/// # Examples
/// ```
/// let reg = obs::MetricsRegistry::new();
/// let g = reg.gauge("pool.open");
/// g.set(4);
/// g.add(-1);
/// assert_eq!(g.get(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram: bucket *i* counts observations in
/// `[2^i µs, 2^(i+1) µs)`, the final bucket is unbounded. Also tracks the
/// observation count and the total (for means).
///
/// # Examples
/// ```
/// use std::time::Duration;
/// let reg = obs::MetricsRegistry::new();
/// let h = reg.histogram("stmt.select");
/// h.observe(Duration::from_micros(7));
/// h.observe(Duration::from_micros(130));
/// assert_eq!(h.count(), 2);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// The bucket index an observation of `us` microseconds lands in.
    fn bucket_for(us: u64) -> usize {
        let bits = 64 - us.leading_zeros() as usize; // 0 for us == 0
        bits.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one latency observation.
    pub fn observe(&self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_for(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            total_us: self.total_us.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (power-of-two µs boundaries).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed latencies in microseconds.
    pub total_us: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            total_us: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Mean observation in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate p-th percentile (upper bucket bound), `p` in `[0, 1]`.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return 1u64 << i;
            }
        }
        1u64 << (HISTOGRAM_BUCKETS - 1)
    }

    /// Bucket-wise difference (`self` must be the later snapshot).
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            total_us: self.total_us.saturating_sub(earlier.total_us),
        }
    }
}

#[derive(Default)]
struct Tables {
    counters: HashMap<String, Arc<Counter>>,
    gauges: HashMap<String, Arc<Gauge>>,
    histograms: HashMap<String, Arc<Histogram>>,
}

/// A registry of named metrics.
///
/// Metric names use a dotted `layer.component.what` scheme, e.g.
/// `dbcp.pool.health_check_failures` or `sqldb.stmt.select` (see
/// DESIGN.md §10 for the full naming table).
///
/// # Examples
/// ```
/// let reg = obs::MetricsRegistry::new();
/// reg.counter("worker.tasks").add(3);
/// let before = reg.snapshot();
/// reg.counter("worker.tasks").add(2);
/// let delta = reg.snapshot().delta_since(&before);
/// assert_eq!(delta.counters["worker.tasks"], 2);
/// ```
#[derive(Default)]
pub struct MetricsRegistry {
    tables: RwLock<Tables>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = self.tables.read();
        f.debug_struct("MetricsRegistry")
            .field("counters", &t.counters.len())
            .field("gauges", &t.gauges.len())
            .field("histograms", &t.histograms.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use. The returned handle
    /// updates lock-free; hot paths should cache it.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.tables.read().counters.get(name) {
            return c.clone();
        }
        self.tables
            .write()
            .counters
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.tables.read().gauges.get(name) {
            return g.clone();
        }
        self.tables
            .write()
            .gauges
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.tables.read().histograms.get(name) {
            return h.clone();
        }
        self.tables
            .write()
            .histograms
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Copies every metric into an ordered snapshot.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let t = self.tables.read();
        RegistrySnapshot {
            counters: t
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: t.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: t
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// An ordered point-in-time copy of a whole [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Metric-wise difference (`self` must be the later snapshot). Metrics
    /// absent from `earlier` keep their full value; gauges report their
    /// *current* value (a level, not a rate).
    pub fn delta_since(&self, earlier: &RegistrySnapshot) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                    )
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        earlier
                            .histograms
                            .get(k)
                            .map(|e| v.delta_since(e))
                            .unwrap_or(*v),
                    )
                })
                .collect(),
        }
    }

    /// True when every counter and histogram is zero and there are no gauges.
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(|v| *v == 0)
            && self.gauges.is_empty()
            && self.histograms.values().all(|h| h.count == 0)
    }
}

/// The process-wide registry that library layers (dbcp, sqldb, the sampler)
/// record into. Per-run deltas come from [`RegistrySnapshot::delta_since`].
///
/// # Examples
/// ```
/// let before = obs::global().snapshot();
/// obs::global().counter("docs.example").inc();
/// let delta = obs::global().snapshot().delta_since(&before);
/// assert_eq!(delta.counters["docs.example"], 1);
/// ```
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: std::sync::OnceLock<MetricsRegistry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(5);
        reg.gauge("g").set(-2);
        reg.histogram("h").observe(Duration::from_micros(3));
        let snap = reg.snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], -2);
        assert_eq!(snap.histograms["h"].count, 1);
        assert_eq!(snap.histograms["h"].total_us, 3);
    }

    #[test]
    fn histogram_buckets_are_log2_micros() {
        assert_eq!(Histogram::bucket_for(0), 0);
        assert_eq!(Histogram::bucket_for(1), 1);
        assert_eq!(Histogram::bucket_for(2), 2);
        assert_eq!(Histogram::bucket_for(3), 2);
        assert_eq!(Histogram::bucket_for(1024), 11);
        assert_eq!(Histogram::bucket_for(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_percentile_and_mean() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.observe(Duration::from_micros(10));
        }
        for _ in 0..10 {
            h.observe(Duration::from_micros(1000));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.mean_us(), (90 * 10 + 10 * 1000) / 100);
        assert!(s.percentile_us(0.5) <= 16);
        assert!(s.percentile_us(0.99) >= 1000);
        assert_eq!(HistogramSnapshot::default().percentile_us(0.5), 0);
    }

    /// Satellite requirement: quantile edge cases on the power-of-two
    /// histogram — empty, single sample, saturating bucket, monotonicity.
    #[test]
    fn percentile_empty_histogram_is_zero() {
        let s = HistogramSnapshot::default();
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.percentile_us(p), 0);
        }
    }

    #[test]
    fn percentile_single_sample_lands_in_its_bucket() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(700)); // bucket 10: [512, 1024)
        let s = h.snapshot();
        for p in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(s.percentile_us(p), 1 << 10, "p={p}");
        }
    }

    #[test]
    fn percentile_saturating_bucket_reports_top_bound() {
        let h = Histogram::default();
        // far beyond the last boundary: everything piles into the
        // unbounded final bucket
        h.observe(Duration::from_secs(100_000));
        h.observe(Duration::from_secs(400_000));
        let s = h.snapshot();
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 2);
        assert_eq!(s.percentile_us(0.5), 1 << (HISTOGRAM_BUCKETS - 1));
        assert_eq!(s.percentile_us(1.0), 1 << (HISTOGRAM_BUCKETS - 1));
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let h = Histogram::default();
        for us in [1u64, 3, 9, 40, 200, 1_000, 60_000, 2_000_000] {
            for _ in 0..5 {
                h.observe(Duration::from_micros(us));
            }
        }
        let s = h.snapshot();
        let mut last = 0;
        for i in 0..=100 {
            let p = i as f64 / 100.0;
            let v = s.percentile_us(p);
            assert!(v >= last, "p{i}: {v} < {last}");
            last = v;
        }
        assert!(s.percentile_us(0.5) <= s.percentile_us(0.99));
        // out-of-range p clamps instead of panicking
        assert_eq!(s.percentile_us(-1.0), s.percentile_us(0.0));
        assert_eq!(s.percentile_us(2.0), s.percentile_us(1.0));
    }

    #[test]
    fn snapshot_diff_is_per_run_not_cumulative() {
        let reg = MetricsRegistry::new();
        reg.counter("x").add(7);
        reg.histogram("h").observe(Duration::from_micros(5));
        let a = reg.snapshot();
        reg.counter("x").add(3);
        reg.counter("fresh").inc();
        reg.histogram("h").observe(Duration::from_micros(9));
        let d = reg.snapshot().delta_since(&a);
        assert_eq!(d.counters["x"], 3);
        assert_eq!(d.counters["fresh"], 1);
        assert_eq!(d.histograms["h"].count, 1);
        assert_eq!(d.histograms["h"].total_us, 9);
    }

    /// Satellite requirement: hammer the registry from 8 threads and assert
    /// exact totals — creation races and updates must never lose counts.
    #[test]
    fn registry_exact_under_8_thread_hammer() {
        let reg = Arc::new(MetricsRegistry::new());
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    // half the threads cache the handle, half re-look it up,
                    // and everyone also touches a private name to force
                    // concurrent creation
                    let cached = reg.counter("hammer.shared");
                    for i in 0..PER_THREAD {
                        if t % 2 == 0 {
                            cached.inc();
                        } else {
                            reg.counter("hammer.shared").inc();
                        }
                        reg.counter(&format!("hammer.t{t}")).inc();
                        if i % 64 == 0 {
                            reg.histogram("hammer.lat")
                                .observe(Duration::from_micros(i));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counters["hammer.shared"], THREADS as u64 * PER_THREAD);
        for t in 0..THREADS {
            assert_eq!(snap.counters[&format!("hammer.t{t}")], PER_THREAD);
        }
        assert_eq!(
            snap.histograms["hammer.lat"].count,
            THREADS as u64 * PER_THREAD.div_ceil(64)
        );
    }

    #[test]
    fn global_registry_is_shared() {
        global().counter("obs.test.global").add(2);
        assert!(global().snapshot().counters["obs.test.global"] >= 2);
    }
}
