//! Property-based tests over the core invariants:
//! * render → parse round-trips for generated expressions and statements;
//! * the wire codec round-trips arbitrary results;
//! * partition bucketing is total and stable;
//! * hash-join ≡ block-nested-loop on random inputs;
//! * parallel SSSP ≡ Dijkstra on random graphs;
//! * snapshot decode/load survive arbitrary truncation and bit flips
//!   without panicking and without ever returning a corrupted snapshot.

use dbcp::wire;
use proptest::prelude::*;
use sqldb::ast::{BinaryOp, Expr};
use sqldb::profile::EngineProfile;
use sqldb::{QueryResult, Value};

// -- generators -----------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-(1i64 << 62)..(1i64 << 62)).prop_map(Value::Int),
        // finite floats only: NaN breaks Eq on purpose-built comparisons
        (-1e12f64..1e12).prop_map(Value::Float),
        Just(Value::Float(f64::INFINITY)),
        "[a-z0-9 '\"]{0,12}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_literal_expr() -> impl Strategy<Value = Expr> {
    arb_value().prop_map(Expr::Literal)
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_literal_expr(),
        "[a-z][a-z0-9_]{0,6}".prop_map(Expr::col),
        ("[a-z][a-z0-9_]{0,4}", "[a-z][a-z0-9_]{0,4}").prop_map(|(t, c)| Expr::qcol(t, c)),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.binary(BinaryOp::Add, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.binary(BinaryOp::Mul, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.binary(BinaryOp::Lt, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.binary(BinaryOp::And, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                Expr::Function {
                    name: "coalesce".into(),
                    args: vec![
                        sqldb::ast::FunctionArg::Expr(a),
                        sqldb::ast::FunctionArg::Expr(b),
                    ],
                }
            }),
            inner.clone().prop_map(|e| Expr::IsNull {
                expr: Box::new(e),
                negated: false
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Rendered expressions re-parse to the same AST in every dialect that
    /// can express them (Infinity literals only exist on PostgreSQL).
    #[test]
    fn expr_render_parse_roundtrip(e in arb_expr()) {
        let dialect = EngineProfile::Postgres.dialect();
        let sql = sqldb::render::expr_to_sql(&e, &dialect);
        let back = sqldb::parser::parse_expression(&sql)
            .unwrap_or_else(|err| panic!("{err}: {sql}"));
        prop_assert_eq!(back, e);
    }

    /// The wire protocol round-trips arbitrary result sets exactly.
    #[test]
    fn wire_roundtrip(
        columns in proptest::collection::vec("[a-z_]{1,8}", 0..5),
        cells in proptest::collection::vec(arb_value(), 0..40),
    ) {
        let ncols = columns.len().max(1);
        let rows: Vec<Vec<Value>> = cells
            .chunks(ncols)
            .filter(|c| c.len() == ncols)
            .map(|c| c.to_vec())
            .collect();
        let columns = if columns.is_empty() { vec!["c".to_string()] } else { columns };
        let result = QueryResult { columns, rows };
        let resp = wire::Response::Rows(result.clone());
        let decoded = wire::decode_response(wire::encode_response(&resp)).unwrap();
        prop_assert_eq!(decoded, wire::Response::Rows(result));
    }

    /// Middleware-side bucketing is total, stable and in range; for integer
    /// keys it matches SQL's normalized `MOD`.
    #[test]
    fn bucketing_is_stable(keys in proptest::collection::vec(any::<i64>(), 1..100), n in 1usize..300) {
        for k in keys {
            let b1 = sqloop::parallel_sql::stable_hash(&Value::Int(k)) % n as u64;
            let b2 = sqloop::parallel_sql::stable_hash(&Value::Int(k)) % n as u64;
            prop_assert_eq!(b1, b2);
            prop_assert!((b1 as usize) < n);
            // the modulo form used for routing
            let m = k.rem_euclid(n as i64) as usize;
            prop_assert!(m < n);
        }
    }

    /// Hash join and block-nested-loop agree on random equi-join inputs
    /// (the executor-equivalence invariant behind multi-engine runs).
    #[test]
    fn join_strategies_agree(
        left in proptest::collection::vec((0i64..20, -100i64..100), 0..30),
        right in proptest::collection::vec((0i64..20, -100i64..100), 0..30),
    ) {
        use sqldb::{Database, StmtOutput};
        let mk = |profile| -> Vec<Vec<Value>> {
            let db = Database::new(profile);
            let mut s = db.connect();
            s.execute("CREATE TABLE l (k INT, v INT)").unwrap();
            s.execute("CREATE TABLE r (k INT, w INT)").unwrap();
            for (k, v) in &left {
                s.execute(&format!("INSERT INTO l VALUES ({k}, {v})")).unwrap();
            }
            for (k, w) in &right {
                s.execute(&format!("INSERT INTO r VALUES ({k}, {w})")).unwrap();
            }
            match s
                .execute("SELECT l.k, l.v, r.w FROM l JOIN r ON l.k = r.k")
                .unwrap()
            {
                StmtOutput::Rows(mut out) => {
                    out.rows.sort();
                    out.rows
                }
                _ => unreachable!(),
            }
        };
        let hash = mk(EngineProfile::Postgres);
        let bnl = mk(EngineProfile::MySql);
        prop_assert_eq!(hash, bnl);
    }
}

// -- snapshot corruption --------------------------------------------------

fn arb_snapshot() -> impl Strategy<Value = sqloop::LoopSnapshot> {
    use sqloop::checkpoint::PartSnap;
    use sqloop::LoopSnapshot;
    (
        (any::<u64>(), 0u64..1000, 0u64..1000),
        (
            proptest::collection::vec(
                (any::<u64>(), any::<u64>(), any::<bool>(), any::<bool>()),
                0..5,
            ),
            proptest::collection::vec(any::<u64>(), 0..4),
            proptest::collection::vec((any::<i64>(), -1e6f64..1e6), 0..12),
        ),
    )
        .prop_map(
            |((fingerprint, round, last_change), (parts, seeds, cells))| LoopSnapshot {
                fingerprint,
                mode: "Sync".into(),
                round,
                last_change,
                parts: parts
                    .into_iter()
                    .map(|(computes, msg_seq, pending, prefer_compute)| PartSnap {
                        computes,
                        msg_seq,
                        pending,
                        prefer_compute,
                    })
                    .collect(),
                seeds,
                tables: vec![sqldb::snapshot::TableDump {
                    name: "cte__pt0".into(),
                    columns: vec![
                        sqldb::Column::new("node", sqldb::DataType::Int),
                        sqldb::Column::new("delta", sqldb::DataType::Float),
                    ],
                    primary_key: Some(0),
                    rows: cells
                        .into_iter()
                        .map(|(k, v)| vec![Value::Int(k), Value::Float(v)])
                        .collect(),
                }],
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Truncating an encoded snapshot at any byte offset never panics the
    /// decoder, and anything it accepts is byte-for-byte the original.
    #[test]
    fn snapshot_decode_survives_truncation(snap in arb_snapshot(), cut in 0.0f64..1.0) {
        let text = snap.encode();
        let mut at = (text.len() as f64 * cut) as usize;
        while !text.is_char_boundary(at) {
            at -= 1;
        }
        match sqloop::LoopSnapshot::decode(&text[..at]) {
            Ok(got) => prop_assert_eq!(got, snap, "truncation at {} accepted", at),
            Err(sqloop::SqloopError::Checkpoint(_)) => {}
            Err(other) => prop_assert!(false, "wrong error type: {}", other),
        }
    }

    /// Flipping any single bit never panics the decoder and never yields a
    /// snapshot that differs from the one that was written.
    #[test]
    fn snapshot_decode_survives_bit_flips(snap in arb_snapshot(), pos in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = snap.encode().into_bytes();
        let at = ((bytes.len() as f64 * pos) as usize).min(bytes.len() - 1);
        bytes[at] ^= 1 << bit;
        // a flip can leave the file non-UTF-8; that is the read-layer's
        // error path and equally must not produce a wrong snapshot
        if let Ok(text) = String::from_utf8(bytes) {
            match sqloop::LoopSnapshot::decode(&text) {
                Ok(got) => prop_assert_eq!(got, snap, "flip at byte {} bit {} accepted", at, bit),
                Err(sqloop::SqloopError::Checkpoint(_)) => {}
                Err(other) => prop_assert!(false, "wrong error type: {}", other),
            }
        }
    }
}

proptest! {
    // disk-backed corruption property: fewer cases, real files
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `load_latest` on a damaged snapshot *file* (truncated and bit-flipped,
    /// possibly invalid UTF-8) is a typed error or the exact original —
    /// never a panic, never a silently different snapshot.
    #[test]
    fn snapshot_load_never_returns_damaged_data(
        snap in arb_snapshot(),
        cut in 0.0f64..1.0001,
        flip in proptest::option::of((0.0f64..1.0, 0u8..8)),
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let mut bytes = snap.encode().into_bytes();
        bytes.truncate((bytes.len() as f64 * cut) as usize);
        if let (Some((pos, bit)), false) = (flip, bytes.is_empty()) {
            let at = ((bytes.len() as f64 * pos) as usize).min(bytes.len() - 1);
            bytes[at] ^= 1 << bit;
        }
        let dir = std::env::temp_dir().join(format!(
            "sqloop-prop-{}-{}",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt_r00000001.sqloop");
        std::fs::write(&path, &bytes).unwrap();
        let outcome = sqloop::checkpoint::load_latest(&path);
        match outcome {
            // accepting is only legal when the content still checksums to the
            // original (e.g. only a trailing newline was lost)
            Ok(got) => prop_assert_eq!(got, snap, "cut {:?}, flip {:?}", cut, flip),
            Err(sqloop::SqloopError::Checkpoint(_)) => {}
            Err(other) => prop_assert!(false, "wrong error type: {}", other),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    // expensive end-to-end property: fewer cases
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Parallel SSSP equals Dijkstra on random graphs, any scheduler.
    #[test]
    fn parallel_sssp_equals_dijkstra(
        seed in 0u64..1000,
        nodes in 10usize..40,
        edge_factor in 2usize..5,
    ) {
        use dbcp::{Driver, LocalDriver};
        use sqldb::Database;
        use sqloop::{ExecutionMode, PrioritySpec, SQLoop, SqloopConfig};
        use std::sync::Arc;

        let g = graphgen::uniform_random(nodes, nodes * edge_factor, seed);
        let oracle = workloads::oracle::sssp(&g, g.nodes()[0]);
        for mode in [ExecutionMode::Sync, ExecutionMode::Async] {
            let db = Database::new(EngineProfile::Postgres);
            let driver = Arc::new(LocalDriver::new(db));
            let mut conn = driver.connect().unwrap();
            workloads::load_edges(conn.as_mut(), &g).unwrap();
            drop(conn);
            let sq = SQLoop::new(driver as Arc<dyn Driver>).with_config(SqloopConfig {
                mode,
                threads: 2,
                partitions: 4,
                priority: Some(PrioritySpec::lowest("SELECT MIN(delta) FROM {}")),
                ..SqloopConfig::default()
            });
            let out = sq
                .execute(&workloads::queries::sssp_all(g.nodes()[0]))
                .unwrap();
            for row in &out.rows {
                let node = row[0].as_i64().unwrap() as u64;
                let d = row[1].as_f64().unwrap();
                match oracle.get(&node) {
                    Some(&e) => prop_assert!(
                        (d - e).abs() < 1e-9,
                        "seed {seed} {mode}: node {node}: {d} vs {e}"
                    ),
                    None => prop_assert!(d.is_infinite()),
                }
            }
        }
    }
}
