//! Smoke test for the `sqloop-cli` shell binary: pipe a small session
//! through stdin and check the rendered output.

use std::io::Write;
use std::process::{Command, Stdio};

#[test]
fn cli_runs_a_scripted_session() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sqloop-cli"))
        .arg("local://mariadb")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sqloop-cli");
    let script = "\
\\engine
CREATE TABLE edges (src INT, dst INT, weight FLOAT);
INSERT INTO edges VALUES (1,2,1.0),(2,3,1.0),(3,4,1.0);
\\mode single
WITH RECURSIVE reach(node) AS (
  SELECT 1 UNION SELECT edges.dst FROM reach JOIN edges ON reach.node = edges.src)
SELECT COUNT(*) FROM reach;
\\timing off
SELECT COUNT(*) FROM edges;
\\q
";
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("cli exits");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    assert!(stdout.contains("engine    : MariaDB"), "{stdout}");
    assert!(stdout.contains("mode = Single"), "{stdout}");
    // reach(1) = {1,2,3,4}
    assert!(stdout.contains("| 4"), "{stdout}");
    // edge count under \timing off → provenance line without a duration
    assert!(stdout.contains("| 3"), "{stdout}");
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
}

#[test]
fn cli_reports_errors_and_keeps_going() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sqloop-cli"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sqloop-cli");
    let script = "SELECT * FROM missing;\nSELECT 1 + 1;\n\\q\n";
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("cli exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not found"), "{stderr}");
    assert!(stdout.contains("| 2"), "{stdout}");
}
