//! The SQL-script baseline (paper §VI-D): "the alternative solution" a user
//! has today — a hand-written multi-statement script per iteration, executed
//! over a single connection, with none of SQLoop's optimizations. The paper
//! attributes SQLoop's win over the script to "the materialization of
//! redundant join operations, the careful formulation of SQL queries and
//! the use of indexes to avoid full scans" (§VI-D) — accordingly the
//! generated script declares no indexes (a naive user script), while SQLoop
//! indexes everything it manages.

use crate::queries;
use dbcp::Connection;
use graphgen::NodeId;
use sqldb::QueryResult;
use sqloop::translate::translate_sql;
use sqloop::{SqloopError, SqloopResult};

/// A generated script: setup, a per-iteration statement block, the final
/// query, and teardown.
#[derive(Debug, Clone)]
pub struct ScriptBaseline {
    /// Human-readable workload name.
    pub name: &'static str,
    /// Statements run once up front.
    pub setup: Vec<String>,
    /// Statements run per iteration; index [`ScriptBaseline::update_index`]
    /// is the `UPDATE` whose affected-row count drives `UntilNoUpdates`.
    pub per_iteration: Vec<String>,
    /// Index of the row-counting update inside `per_iteration`.
    pub update_index: usize,
    /// Query producing the result rows.
    pub final_query: String,
    /// Cleanup statements.
    pub teardown: Vec<String>,
}

/// Loop control for [`run_script`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptMode {
    /// Run the iteration block a fixed number of times (PageRank).
    FixedIterations(u64),
    /// Repeat until the tracked `UPDATE` changes no rows (traversals).
    UntilNoUpdates {
        /// Safety cap.
        max_iterations: u64,
    },
}

/// What a script run produced.
#[derive(Debug, Clone)]
pub struct ScriptRunResult {
    /// Rows of the final query.
    pub result: QueryResult,
    /// Iterations performed.
    pub iterations: u64,
    /// Statements submitted to the engine (including setup/teardown).
    pub statements: u64,
}

impl ScriptBaseline {
    /// Total script length in SQL lines for a fixed-iteration run — the
    /// paper's "scripts in most cases were more than 200 lines" comparison.
    pub fn unrolled_line_count(&self, iterations: u64) -> usize {
        let block: usize = self.per_iteration.iter().map(|s| s.lines().count()).sum();
        let fixed: usize = self
            .setup
            .iter()
            .chain(self.teardown.iter())
            .map(|s| s.lines().count())
            .sum();
        fixed + block * iterations as usize + self.final_query.lines().count()
    }
}

/// The PageRank script (mirrors Example 2 without SQLoop).
pub fn pagerank_script() -> ScriptBaseline {
    ScriptBaseline {
        name: "pagerank-script",
        setup: vec![
            "DROP TABLE IF EXISTS pr_s".into(),
            "CREATE TABLE pr_s (node INT, rank FLOAT, delta FLOAT)".into(),
            "INSERT INTO pr_s SELECT src, 0.0, 0.15 \
             FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges \
             GROUP BY src"
                .into(),
        ],
        per_iteration: vec![
            "DROP TABLE IF EXISTS pr_s_tmp".into(),
            "CREATE TABLE pr_s_tmp (node INT, rank FLOAT, delta FLOAT)".into(),
            "INSERT INTO pr_s_tmp \
             SELECT pr_s.node, \
                    COALESCE(pr_s.rank + pr_s.delta, 0.15), \
                    COALESCE(0.85 * SUM(ir.delta * ie.weight), 0.0) \
             FROM pr_s \
             LEFT JOIN edges AS ie ON pr_s.node = ie.dst \
             LEFT JOIN pr_s AS ir ON ir.node = ie.src \
             GROUP BY pr_s.node"
                .into(),
            "UPDATE pr_s SET rank = pr_s_tmp.rank, delta = pr_s_tmp.delta \
             FROM pr_s_tmp WHERE pr_s.node = pr_s_tmp.node"
                .into(),
            "DROP TABLE pr_s_tmp".into(),
        ],
        update_index: 3,
        final_query: "SELECT node, rank FROM pr_s ORDER BY node".into(),
        teardown: vec!["DROP TABLE IF EXISTS pr_s".into()],
    }
}

/// The descendant-query script: how many clicks from `source` to `target`.
pub fn descendant_script(source: NodeId, target: NodeId) -> ScriptBaseline {
    ScriptBaseline {
        name: "descendant-script",
        setup: vec![
            "DROP TABLE IF EXISTS dq_s".into(),
            "CREATE TABLE dq_s (node INT, hops FLOAT, delta FLOAT)".into(),
            format!(
                "INSERT INTO dq_s SELECT src, Infinity, \
                 CASE WHEN src = {source} THEN 0.0 ELSE Infinity END \
                 FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges \
                 GROUP BY src"
            ),
        ],
        per_iteration: vec![
            "DROP TABLE IF EXISTS dq_s_tmp".into(),
            "CREATE TABLE dq_s_tmp (node INT, hops FLOAT, delta FLOAT)".into(),
            "INSERT INTO dq_s_tmp \
             SELECT dq_s.node, LEAST(dq_s.hops, dq_s.delta), \
                    COALESCE(MIN(nb.delta + 1.0), Infinity) \
             FROM dq_s \
             LEFT JOIN edges AS ie ON dq_s.node = ie.dst \
             LEFT JOIN dq_s AS nb ON nb.node = ie.src \
             WHERE nb.delta < nb.hops OR dq_s.delta < dq_s.hops \
             GROUP BY dq_s.node"
                .into(),
            "UPDATE dq_s SET hops = dq_s_tmp.hops, delta = dq_s_tmp.delta \
             FROM dq_s_tmp WHERE dq_s.node = dq_s_tmp.node"
                .into(),
            "DROP TABLE dq_s_tmp".into(),
        ],
        update_index: 3,
        final_query: format!("SELECT hops FROM dq_s WHERE node = {target}"),
        teardown: vec!["DROP TABLE IF EXISTS dq_s".into()],
    }
}

/// Runs a script over a single connection, translating each statement for
/// the target engine (the paper "manually changed the syntax for some SQL
/// statements"; the runner automates exactly that).
///
/// # Errors
/// Engine/translation errors; the `UntilNoUpdates` safety cap.
pub fn run_script(
    conn: &mut dyn Connection,
    script: &ScriptBaseline,
    mode: ScriptMode,
) -> SqloopResult<ScriptRunResult> {
    let mut statements = 0u64;
    let mut exec = |conn: &mut dyn Connection, sql: &str| -> SqloopResult<u64> {
        let translated = translate_sql(sql, conn.profile())?;
        statements += 1;
        Ok(conn.execute(&translated)?.rows_affected())
    };
    for s in &script.setup {
        exec(conn, s)?;
    }
    let mut iterations = 0u64;
    match mode {
        ScriptMode::FixedIterations(n) => {
            for _ in 0..n {
                for (i, s) in script.per_iteration.iter().enumerate() {
                    let _ = (i, exec(conn, s)?);
                }
                iterations += 1;
            }
        }
        ScriptMode::UntilNoUpdates { max_iterations } => loop {
            let mut updated = 0u64;
            for (i, s) in script.per_iteration.iter().enumerate() {
                let n = exec(conn, s)?;
                if i == script.update_index {
                    updated = n;
                }
            }
            iterations += 1;
            if updated == 0 {
                break;
            }
            if iterations >= max_iterations {
                for s in &script.teardown {
                    let _ = exec(conn, s);
                }
                return Err(SqloopError::Semantic(format!(
                    "script did not quiesce within {max_iterations} iterations"
                )));
            }
        },
    }
    let final_sql = translate_sql(&script.final_query, conn.profile())?;
    let result = conn.query(&final_sql)?;
    for s in &script.teardown {
        exec(conn, s)?;
    }
    statements += 1; // the final query
    Ok(ScriptRunResult {
        result,
        iterations,
        statements,
    })
}

/// Line counts the paper compares in §VI-D: the iterative CTE is ~20–25
/// lines while the script exceeds 200.
pub fn line_count_comparison(iterations: u64) -> (usize, usize) {
    let cte_lines = queries::pagerank(iterations).lines().count();
    let script_lines = pagerank_script().unrolled_line_count(iterations);
    (cte_lines, script_lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_is_much_longer_than_the_cte() {
        let (cte, script) = line_count_comparison(100);
        assert!(cte <= 25, "CTE should be ~20 lines, got {cte}");
        assert!(script > 200, "script should exceed 200 lines, got {script}");
    }

    #[test]
    fn scripts_reference_consistent_tables() {
        for s in [pagerank_script(), descendant_script(0, 9)] {
            assert!(s.per_iteration.len() > s.update_index);
            assert!(s.per_iteration[s.update_index].contains("UPDATE"));
        }
    }
}
