//! Cooperative cancellation: a cheap, cloneable token that long-running
//! operations poll at their natural boundaries.
//!
//! A [`CancelToken`] carries two independent triggers — a programmatic flag
//! (set by [`CancelToken::cancel`], e.g. from a Ctrl-C handler or another
//! thread) and an optional wall-clock deadline. Sleeps that must stay
//! responsive use [`CancelToken::sleep`], which naps in small slices and
//! bails out as soon as either trigger fires; this is what makes retry
//! backoff interruptible instead of pinning a cancelled run to its full
//! exponential wait.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: parking_lot::Mutex<Option<Instant>>,
}

/// Shared cancellation token. Clones observe the same state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh, un-cancelled token with no deadline.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: parking_lot::Mutex::new(None),
            }),
        }
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::SeqCst);
    }

    /// Arms (or re-arms) a deadline `after` from now. The token reports
    /// cancelled once the deadline passes.
    pub fn set_deadline_in(&self, after: Duration) {
        *self.inner.deadline.lock() = Some(Instant::now() + after);
    }

    /// Clears the flag and any deadline, making the token reusable (the
    /// CLI resets its session token before each statement).
    pub fn reset(&self) {
        self.inner.flag.store(false, Ordering::SeqCst);
        *self.inner.deadline.lock() = None;
    }

    /// True once [`CancelToken::cancel`] was called or the deadline passed.
    pub fn cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::SeqCst) {
            return true;
        }
        match *self.inner.deadline.lock() {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Sleeps for `total`, waking early on cancellation. Returns `true`
    /// when the full duration elapsed, `false` when cancelled mid-sleep.
    ///
    /// The wait is chunked into ≤ 5 ms naps so even long backoffs react to
    /// cancellation promptly.
    pub fn sleep(&self, total: Duration) -> bool {
        const NAP: Duration = Duration::from_millis(5);
        let end = Instant::now() + total;
        loop {
            if self.cancelled() {
                return false;
            }
            let now = Instant::now();
            if now >= end {
                return true;
            }
            std::thread::sleep((end - now).min(NAP));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.cancelled());
        assert!(t.sleep(Duration::from_millis(1)));
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.cancelled());
        t.reset();
        assert!(!c.cancelled());
    }

    #[test]
    fn deadline_fires() {
        let t = CancelToken::new();
        t.set_deadline_in(Duration::from_millis(5));
        assert!(!t.cancelled());
        std::thread::sleep(Duration::from_millis(10));
        assert!(t.cancelled());
        t.reset();
        assert!(!t.cancelled());
    }

    #[test]
    fn sleep_interrupts_promptly() {
        let t = CancelToken::new();
        let u = t.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            u.cancel();
        });
        let started = Instant::now();
        let finished = t.sleep(Duration::from_secs(30));
        h.join().unwrap();
        assert!(!finished, "sleep must report interruption");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "a 30s sleep must unblock shortly after cancel"
        );
    }
}
