//! `bench6-vectorized` — the vectorized columnar executor vs the
//! row-at-a-time baseline, plus the statement-templating plan-cache gates.
//!
//! Three sections, emitted together as `results/BENCH_6.json`:
//!
//! 1. **Hot loops** — the statement shapes that dominate Compute/Gather
//!    rounds (scan→filter→project, hash aggregation, filtered COUNT
//!    probes) over a large single table, timed row-mode vs batch-mode on
//!    the same engine. This isolates the executor pipeline itself; the
//!    target is ≥2× per-statement speedup with byte-identical results.
//! 2. **Workloads** — fig4-style PageRank / SSSP / descendant-query runs
//!    at ≥10× the BENCH_5 scale, each oracle-checked in all four modes
//!    (single, sync, async, async-prio) with the vectorized pipeline on,
//!    and timed row vs batch per round in single and sync modes.
//! 3. **Plan cache** — with generation-stable message-slot templating the
//!    parallel schedulers must hold a >90% plan-cache hit rate and parse
//!    *less than one statement per marginal round* in sync, async and
//!    async-prio modes (measured as the parse-count difference between a
//!    long and a short run of the same loop, so one-time setup parses
//!    don't blur the steady state).
//!
//! Usage: `cargo run --release -p sqloop-bench --bin bench6_vectorized --
//!         [--scale 0.1] [--rounds 20] [--partitions 4]
//!         [--hot-rows 60000] [--hot-iters 5]`
//!
//! The run fails loudly when any mode's results miss the oracle or when a
//! row/batch pair diverges — the speedup must not change answers.

use sqldb::{Database, EngineProfile};
use sqloop::{ExecutionMode, ExecutionReport, PrioritySpec, SqloopConfig};
use sqloop_bench::{env_with_graph, time_it, write_file};
use std::fmt::Write as _;

const PARALLEL_MODES: [ExecutionMode; 3] = [
    ExecutionMode::Sync,
    ExecutionMode::Async,
    ExecutionMode::AsyncPrio,
];

fn mode_label(mode: ExecutionMode) -> &'static str {
    match mode {
        ExecutionMode::Single => "single",
        ExecutionMode::Sync => "sync",
        ExecutionMode::Async => "async",
        ExecutionMode::AsyncPrio => "asyncp",
    }
}

fn config(mode: ExecutionMode, partitions: usize) -> SqloopConfig {
    let (threads, partitions) = if mode == ExecutionMode::Single {
        (1, 1)
    } else {
        (2, partitions)
    };
    SqloopConfig {
        mode,
        threads,
        partitions,
        priority: (mode == ExecutionMode::AsyncPrio)
            .then(|| PrioritySpec::lowest("SELECT MIN(delta) FROM {}")),
        ..SqloopConfig::default()
    }
}

// -- section 1: executor hot loops ------------------------------------------

struct HotEntry {
    name: &'static str,
    sql: String,
    row_ms: f64,
    batch_ms: f64,
    results_match: bool,
}

impl HotEntry {
    fn speedup(&self) -> f64 {
        if self.batch_ms > 0.0 {
            self.row_ms / self.batch_ms
        } else {
            0.0
        }
    }
}

/// Loads `nrows` deterministic rows into `big(id, v, grp)`.
fn load_big(db: &Database, nrows: usize) {
    let mut s = db.connect();
    s.execute("CREATE TABLE big (id INT, v FLOAT, grp INT)")
        .expect("create big");
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut rng = move || {
        // xorshift*: deterministic, spread over [0, 1)
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut id = 0usize;
    while id < nrows {
        let chunk = 512.min(nrows - id);
        let values = (0..chunk)
            .map(|k| {
                let i = id + k;
                format!("({}, {:.9}, {})", i, rng(), i % 64)
            })
            .collect::<Vec<_>>()
            .join(", ");
        s.execute(&format!("INSERT INTO big VALUES {values}"))
            .expect("insert big");
        id += chunk;
    }
}

/// Times `sql` in both execution modes; the first run of each mode warms
/// the plan cache and is discarded.
fn time_modes(db: &Database, sql: &str, iters: usize) -> (f64, f64, bool) {
    let run = |vectorized: bool| {
        db.set_vectorized(vectorized);
        let mut conn = db.connect();
        let reference = conn.query(sql).expect("hot loop").rows;
        let mut total = 0.0;
        for _ in 0..iters {
            let (out, t) = time_it(|| conn.query(sql).expect("hot loop"));
            assert_eq!(out.rows, reference, "hot loop nondeterministic: {sql}");
            total += t.as_secs_f64() * 1e3;
        }
        (total / iters.max(1) as f64, reference)
    };
    let (row_ms, row_rows) = run(false);
    let (batch_ms, batch_rows) = run(true);
    db.set_vectorized(true);
    (row_ms, batch_ms, row_rows == batch_rows)
}

fn hot_loops(nrows: usize, iters: usize) -> Vec<HotEntry> {
    let db = Database::new(EngineProfile::Postgres);
    load_big(&db, nrows);
    let shapes: [(&'static str, String); 4] = [
        (
            "filter_project",
            "SELECT id + 1, v * 2.0 FROM big WHERE v > 0.5".into(),
        ),
        (
            "hash_agg",
            "SELECT grp, SUM(v), COUNT(*), MAX(v) FROM big GROUP BY grp".into(),
        ),
        (
            "agg_over_filter",
            "SELECT grp, SUM(v * 2.0) FROM big WHERE v > 0.25 GROUP BY grp".into(),
        ),
        (
            "count_probe",
            "SELECT COUNT(*) FROM big WHERE v > 0.5".into(),
        ),
    ];
    shapes
        .into_iter()
        .map(|(name, sql)| {
            let (row_ms, batch_ms, results_match) = time_modes(&db, &sql, iters);
            let e = HotEntry {
                name,
                sql,
                row_ms,
                batch_ms,
                results_match,
            };
            println!(
                "  {:>16}: row {:.2} ms  batch {:.2} ms  ({:.2}x){}",
                e.name,
                e.row_ms,
                e.batch_ms,
                e.speedup(),
                if e.results_match {
                    ""
                } else {
                    "  RESULTS DIVERGED"
                },
            );
            e
        })
        .collect()
}

// -- section 2: oracle-checked workloads ------------------------------------

struct WorkloadEntry {
    workload: &'static str,
    /// `(mode label, oracle matched, iterations)` for all four modes.
    modes: Vec<(&'static str, bool, u64)>,
    row_per_round_ms: f64,
    batch_per_round_ms: f64,
}

impl WorkloadEntry {
    fn speedup(&self) -> f64 {
        if self.batch_per_round_ms > 0.0 {
            self.row_per_round_ms / self.batch_per_round_ms
        } else {
            0.0
        }
    }

    fn all_match(&self) -> bool {
        self.modes.iter().all(|(_, ok, _)| *ok)
    }
}

fn run_mode(
    graph: &graphgen::Graph,
    query: &str,
    mode: ExecutionMode,
    partitions: usize,
    vectorized: bool,
) -> ExecutionReport {
    let env = env_with_graph(EngineProfile::Postgres, graph);
    env.db.set_vectorized(vectorized);
    let sq = env.sqloop(config(mode, partitions));
    sq.execute_detailed(query).expect("workload run")
}

/// Per-round time of the sync scheduler, the mode whose Compute/Gather
/// round structure matches the paper's Fig. 3 inner loop.
fn per_round_ms(graph: &graphgen::Graph, query: &str, partitions: usize, vectorized: bool) -> f64 {
    let (report, elapsed) =
        time_it(|| run_mode(graph, query, ExecutionMode::Sync, partitions, vectorized));
    elapsed.as_secs_f64() * 1e3 / report.iterations.max(1) as f64
}

fn node_distances(report: &ExecutionReport) -> Vec<(i64, f64)> {
    report
        .result
        .rows
        .iter()
        .map(|r| {
            (
                r[0].as_i64().expect("node id"),
                r[1].as_f64().expect("value"),
            )
        })
        .collect()
}

fn workload_pagerank(graph: &graphgen::Graph, rounds: u64, partitions: usize) -> WorkloadEntry {
    let query = workloads::queries::pagerank(rounds);
    let oracle = workloads::oracle::pagerank(graph, rounds);
    let n = oracle.len() as f64;
    let sync_total = std::cell::Cell::new(0.0f64);
    let modes = [
        ExecutionMode::Single,
        ExecutionMode::Sync,
        ExecutionMode::Async,
        ExecutionMode::AsyncPrio,
    ]
    .map(|mode| {
        let report = run_mode(graph, &query, mode, partitions, true);
        let got = node_distances(&report);
        let ok = match mode {
            // synchronous semantics: every node's rank must hit the oracle
            ExecutionMode::Single | ExecutionMode::Sync => {
                got.len() == oracle.len()
                    && got.iter().all(|(node, rank)| {
                        oracle
                            .get(&(*node as u64))
                            .is_some_and(|want| (want - rank).abs() < 1e-9)
                    })
            }
            // async consumes intermediate results: at equal round counts it
            // propagates at least the sync rank mass and never overshoots
            // the fixpoint total (= node count for a closed graph)
            _ => {
                let total: f64 = got.iter().map(|(_, r)| r).sum();
                total >= sync_total.get() - 1e-6 && total <= n + 1e-6
            }
        };
        if mode == ExecutionMode::Sync {
            sync_total.set(got.iter().map(|(_, r)| r).sum());
        }
        (mode_label(mode), ok, report.iterations)
    });
    WorkloadEntry {
        workload: "pagerank",
        modes: modes.to_vec(),
        row_per_round_ms: per_round_ms(graph, &query, partitions, false),
        batch_per_round_ms: per_round_ms(graph, &query, partitions, true),
    }
}

fn workload_sssp(graph: &graphgen::Graph, partitions: usize) -> WorkloadEntry {
    let query = workloads::queries::sssp_all(0);
    let oracle = workloads::oracle::sssp(graph, 0);
    let check = |report: &ExecutionReport| {
        let got = node_distances(report);
        let reachable = got.iter().filter(|(_, d)| d.is_finite()).count();
        reachable == oracle.len()
            && got
                .iter()
                .all(|(node, dist)| match oracle.get(&(*node as u64)) {
                    Some(want) => (want - dist).abs() < 1e-9,
                    None => dist.is_infinite(),
                })
    };
    finish_exact("sssp", graph, &query, partitions, check)
}

fn workload_dq(graph: &graphgen::Graph, partitions: usize) -> WorkloadEntry {
    let max_hops = 100;
    let query = workloads::queries::descendant_query(0, max_hops);
    let oracle = workloads::oracle::descendants(graph, 0, max_hops);
    let check = |report: &ExecutionReport| {
        let got = node_distances(report);
        got.len() == oracle.len()
            && got.iter().all(|(node, hops)| {
                oracle
                    .get(&(*node as u64))
                    .is_some_and(|want| (*want as f64 - hops).abs() < 1e-9)
            })
    };
    finish_exact("dq", graph, &query, partitions, check)
}

/// Runs all four modes of a workload with a unique fixpoint (exact oracle
/// equality in every mode) and times row vs batch.
fn finish_exact(
    workload: &'static str,
    graph: &graphgen::Graph,
    query: &str,
    partitions: usize,
    check: impl Fn(&ExecutionReport) -> bool,
) -> WorkloadEntry {
    let modes = [
        ExecutionMode::Single,
        ExecutionMode::Sync,
        ExecutionMode::Async,
        ExecutionMode::AsyncPrio,
    ]
    .map(|mode| {
        let report = run_mode(graph, query, mode, partitions, true);
        (mode_label(mode), check(&report), report.iterations)
    });
    WorkloadEntry {
        workload,
        modes: modes.to_vec(),
        row_per_round_ms: per_round_ms(graph, query, partitions, false),
        batch_per_round_ms: per_round_ms(graph, query, partitions, true),
    }
}

// -- section 3: parallel plan-cache gates -----------------------------------

struct CacheEntry {
    mode: &'static str,
    hit_rate: f64,
    marginal_parses_per_round: f64,
    long_rounds: u64,
    parses: u64,
}

/// Parses reported by the engine's plan histogram for one run.
fn parses_of(report: &ExecutionReport) -> u64 {
    report
        .metrics
        .histograms
        .get("sqldb.plan")
        .map_or(0, |h| h.count)
}

fn cache_gate(
    graph: &graphgen::Graph,
    mode: ExecutionMode,
    rounds: u64,
    partitions: usize,
) -> CacheEntry {
    let short_rounds = (rounds / 4).max(2);
    let run = |r: u64| {
        let query = workloads::queries::pagerank(r);
        let env = env_with_graph(EngineProfile::Postgres, graph);
        let before = env.db.plan_cache_stats();
        let report = env
            .sqloop(config(mode, partitions))
            .execute_detailed(&query);
        let report = report.expect("cache gate run");
        let after = env.db.plan_cache_stats();
        let hits = after.hits - before.hits;
        let misses = after.misses - before.misses;
        let hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        (parses_of(&report), hit_rate, report.iterations)
    };
    let (short_parses, _, short_iters) = run(short_rounds);
    let (long_parses, hit_rate, long_iters) = run(rounds);
    // marginal cost of one additional steady-state round — one-time setup
    // parses cancel out of the difference
    let marginal = (long_parses.saturating_sub(short_parses)) as f64
        / (long_iters.saturating_sub(short_iters)).max(1) as f64;
    println!(
        "  {:>6}: hit rate {:.1}%, {:.3} marginal parses/round ({} parses over {} rounds)",
        mode_label(mode),
        hit_rate * 100.0,
        marginal,
        long_parses,
        long_iters,
    );
    CacheEntry {
        mode: mode_label(mode),
        hit_rate,
        marginal_parses_per_round: marginal,
        long_rounds: long_iters,
        parses: long_parses,
    }
}

// -- main -------------------------------------------------------------------

fn main() {
    let mut scale: f64 = 0.1;
    let mut rounds: u64 = 20;
    let mut partitions: usize = 4;
    let mut hot_rows: usize = 60_000;
    let mut hot_iters: usize = 5;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--scale" => scale = value().parse().expect("bad --scale"),
            "--rounds" => rounds = value().parse().expect("bad --rounds"),
            "--partitions" => partitions = value().parse().expect("bad --partitions"),
            "--hot-rows" => hot_rows = value().parse().expect("bad --hot-rows"),
            "--hot-iters" => hot_iters = value().parse().expect("bad --hot-iters"),
            other => panic!("unknown flag {other}"),
        }
    }

    println!("== BENCH_6: vectorized executor vs row baseline ==\n");
    println!("executor hot loops ({hot_rows} rows, mean of {hot_iters}):");
    let hot = hot_loops(hot_rows, hot_iters);
    let min_speedup = hot
        .iter()
        .map(HotEntry::speedup)
        .fold(f64::INFINITY, f64::min);
    let hot_match = hot.iter().all(|e| e.results_match);

    println!("\nworkloads (scale {scale}, {rounds} rounds, p={partitions}):");
    let pr_graph = graphgen::datasets::google_web_like(scale);
    let sssp_graph = graphgen::datasets::twitter_like(scale);
    let dq_graph = graphgen::datasets::berkstan_like(scale);
    println!("  pagerank on {} ({})", pr_graph.name, pr_graph.graph);
    let workloads_out = [
        workload_pagerank(&pr_graph.graph, rounds, partitions),
        workload_sssp(&sssp_graph.graph, partitions),
        workload_dq(&dq_graph.graph, partitions),
    ];
    for w in &workloads_out {
        println!(
            "  {:>8}: row {:.2} ms/round  batch {:.2} ms/round ({:.2}x), modes [{}]",
            w.workload,
            w.row_per_round_ms,
            w.batch_per_round_ms,
            w.speedup(),
            w.modes
                .iter()
                .map(|(m, ok, _)| format!("{m}:{}", if *ok { "ok" } else { "MISS" }))
                .collect::<Vec<_>>()
                .join(" "),
        );
    }
    let all_oracle = workloads_out.iter().all(WorkloadEntry::all_match);

    println!("\nparallel plan-cache gates (pagerank, p={partitions}):");
    // The gate run is deliberately longer than the workload runs: the hit
    // rate is a start-to-finish average, and the async modes pay a burst of
    // one-time misses (slot creation, gather-list combinations) that only
    // amortizes once steady-state rounds dominate.
    let cache: Vec<CacheEntry> = PARALLEL_MODES
        .iter()
        .map(|&m| cache_gate(&pr_graph.graph, m, (rounds * 2).max(40), partitions))
        .collect();
    let min_hit_rate = cache
        .iter()
        .map(|c| c.hit_rate)
        .fold(f64::INFINITY, f64::min);
    let max_marginal = cache
        .iter()
        .map(|c| c.marginal_parses_per_round)
        .fold(0.0f64, f64::max);

    let mut json = String::from("{\n  \"bench\": \"bench6-vectorized\",\n");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"partitions\": {partitions},");
    let _ = writeln!(
        json,
        "  \"hot_loops\": {{\"rows\": {hot_rows}, \"iters\": {hot_iters}, \"entries\": ["
    );
    for (i, e) in hot.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"sql\": \"{}\", \"row_ms\": {:.4}, \
             \"batch_ms\": {:.4}, \"speedup\": {:.4}, \"results_match\": {}}}",
            e.name,
            obs::json::escape(&e.sql),
            e.row_ms,
            e.batch_ms,
            e.speedup(),
            e.results_match,
        );
        json.push_str(if i + 1 < hot.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(json, "  ], \"min_speedup\": {min_speedup:.4}}},");
    json.push_str("  \"workloads\": [\n");
    for (i, w) in workloads_out.iter().enumerate() {
        let modes = w
            .modes
            .iter()
            .map(|(m, ok, iters)| {
                format!("{{\"mode\": \"{m}\", \"oracle_match\": {ok}, \"iterations\": {iters}}}")
            })
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"modes\": [{}], \"row_per_round_ms\": {:.4}, \
             \"batch_per_round_ms\": {:.4}, \"per_round_speedup\": {:.4}}}",
            w.workload,
            modes,
            w.row_per_round_ms,
            w.batch_per_round_ms,
            w.speedup(),
        );
        json.push_str(if i + 1 < workloads_out.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n  \"plan_cache\": [\n");
    for (i, c) in cache.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"hit_rate\": {:.4}, \
             \"marginal_parses_per_round\": {:.4}, \"parses\": {}, \"rounds\": {}}}",
            c.mode, c.hit_rate, c.marginal_parses_per_round, c.parses, c.long_rounds,
        );
        json.push_str(if i + 1 < cache.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = write!(
        json,
        "  \"summary\": {{\"min_hot_loop_speedup\": {:.4}, \
         \"hot_loop_results_match\": {}, \"all_oracle_match\": {}, \
         \"min_parallel_hit_rate\": {:.4}, \
         \"max_marginal_parses_per_round\": {:.4}}}\n}}\n",
        min_speedup, hot_match, all_oracle, min_hit_rate, max_marginal,
    );

    println!(
        "\nsummary: hot-loop speedup ≥{min_speedup:.2}x, oracle {}, \
         parallel hit rate ≥{:.1}%, ≤{max_marginal:.3} marginal parses/round",
        if all_oracle {
            "matched in all modes"
        } else {
            "MISSED"
        },
        min_hit_rate * 100.0,
    );
    assert!(hot_match, "row and batch hot loops disagreed");
    assert!(all_oracle, "a mode missed its oracle");
    if let Some(p) = write_file("BENCH_6.json", &json) {
        println!("wrote {}", p.display());
    }
}
