//! `EXPLAIN SELECT …` — a textual plan describing the join strategies the
//! executor will pick, per engine profile.
//!
//! This mirrors the decision logic of [`crate::join::join_rels`] without
//! executing anything, which makes the architectural difference between the
//! engine profiles *visible*: the same query EXPLAINs to hash joins on the
//! PostgreSQL profile and to (index) nested loops on the MySQL family.

use crate::ast::*;
use crate::catalog::Catalog;
use crate::error::DbResult;
use crate::profile::{EngineProfile, JoinStrategy};

/// Renders a plan for `query` as indented text lines.
///
/// # Errors
/// Returns [`DbError::NotFound`](crate::DbError::NotFound) for unknown relations.
pub fn explain_query(
    catalog: &Catalog,
    profile: EngineProfile,
    query: &SelectStmt,
) -> DbResult<Vec<String>> {
    let mut out = Vec::new();
    explain_stmt(catalog, profile, query, 0, &mut out)?;
    Ok(out)
}

fn push(out: &mut Vec<String>, depth: usize, text: String) {
    out.push(format!("{}{}", "  ".repeat(depth), text));
}

fn explain_stmt(
    catalog: &Catalog,
    profile: EngineProfile,
    q: &SelectStmt,
    depth: usize,
    out: &mut Vec<String>,
) -> DbResult<()> {
    if !q.order_by.is_empty() {
        push(out, depth, format!("Sort ({} keys)", q.order_by.len()));
    }
    if let Some(n) = q.limit {
        push(out, depth, format!("Limit {n}"));
    }
    explain_set_expr(catalog, profile, &q.body, depth, out)
}

fn explain_set_expr(
    catalog: &Catalog,
    profile: EngineProfile,
    body: &SetExpr,
    depth: usize,
    out: &mut Vec<String>,
) -> DbResult<()> {
    match body {
        SetExpr::Values(rows) => {
            push(out, depth, format!("Values ({} rows)", rows.len()));
            Ok(())
        }
        SetExpr::SetOp { op, left, right } => {
            push(
                out,
                depth,
                match op {
                    SetOperator::Union => "Union (deduplicating)".to_string(),
                    SetOperator::UnionAll => "Union All".to_string(),
                },
            );
            explain_set_expr(catalog, profile, left, depth + 1, out)?;
            explain_set_expr(catalog, profile, right, depth + 1, out)
        }
        SetExpr::Select(s) => explain_select(catalog, profile, s, depth, out),
    }
}

fn explain_select(
    catalog: &Catalog,
    profile: EngineProfile,
    s: &Select,
    depth: usize,
    out: &mut Vec<String>,
) -> DbResult<()> {
    let has_agg = !s.group_by.is_empty()
        || s.projections
            .iter()
            .any(|p| matches!(p, SelectItem::Expr { expr, .. } if expr.contains_aggregate()));
    let mut depth = depth;
    if s.distinct {
        push(out, depth, "Distinct".to_string());
        depth += 1;
    }
    if has_agg {
        push(
            out,
            depth,
            format!("HashAggregate (group by {} keys)", s.group_by.len()),
        );
        depth += 1;
    }
    if let Some(_w) = &s.selection {
        push(out, depth, "Filter".to_string());
        depth += 1;
    }
    for (i, tr) in s.from.iter().enumerate() {
        if s.from.len() > 1 && i > 0 {
            push(out, depth, "NestedLoop (cross join)".to_string());
        }
        explain_table_ref(catalog, profile, tr, depth, out)?;
    }
    if s.from.is_empty() {
        push(out, depth, "Result (no tables)".to_string());
    }
    Ok(())
}

fn explain_table_ref(
    catalog: &Catalog,
    profile: EngineProfile,
    tr: &TableRef,
    depth: usize,
    out: &mut Vec<String>,
) -> DbResult<()> {
    // joins apply left-to-right; print outermost join first
    for j in tr.joins.iter().rev() {
        let desc = join_description(catalog, profile, j)?;
        push(out, depth, desc);
    }
    let base_depth = depth + tr.joins.len();
    explain_factor(catalog, profile, &tr.base, base_depth, out)?;
    // each join's right side prints under its join line
    for (i, j) in tr.joins.iter().enumerate() {
        explain_factor(catalog, profile, &j.factor, depth + tr.joins.len() - i, out)?;
    }
    Ok(())
}

/// The operator label [`crate::join::join_rels`] will effectively execute
/// for `j` — shared with the runtime profiler so `EXPLAIN` and
/// `EXPLAIN ANALYZE` speak the same vocabulary.
pub(crate) fn join_description(
    catalog: &Catalog,
    profile: EngineProfile,
    j: &Join,
) -> DbResult<String> {
    let kind = match j.join_type {
        JoinType::Inner => "Join",
        JoinType::Left => "LeftJoin",
        JoinType::Cross => return Ok("NestedLoop (cross join)".to_string()),
    };
    // equi key present?
    let equi = j.on.as_ref().map(has_equi_conjunct).unwrap_or(false);
    if !equi {
        return Ok(format!("NestedLoop{kind} (non-equi ON)"));
    }
    let algo = match profile.join_strategy() {
        JoinStrategy::Hash => "Hash".to_string(),
        JoinStrategy::BlockNestedLoop { buffer_rows } => {
            // an index on the inner side upgrades BNL to an index NL
            if inner_side_indexable(catalog, j)? {
                "IndexNestedLoop".to_string()
            } else {
                format!("BlockNestedLoop (buffer {buffer_rows})")
            }
        }
    };
    Ok(format!("{algo}{kind}"))
}

/// True when any top-level conjunct of `on` is `col = col`.
fn has_equi_conjunct(on: &Expr) -> bool {
    match on {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => has_equi_conjunct(left) || has_equi_conjunct(right),
        Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } => {
            matches!(left.as_ref(), Expr::Column { .. })
                && matches!(right.as_ref(), Expr::Column { .. })
        }
        _ => false,
    }
}

/// True when the join's inner (right) side is a base table with an index on
/// one of the columns its ON condition references.
fn inner_side_indexable(catalog: &Catalog, j: &Join) -> DbResult<bool> {
    let (name, visible) = match &j.factor {
        TableFactor::Table { name, alias } => {
            (name.clone(), alias.clone().unwrap_or_else(|| name.clone()))
        }
        TableFactor::Derived { .. } => return Ok(false),
    };
    if catalog.view(&name).is_some() {
        return Ok(false);
    }
    let handle = catalog.table(&name)?;
    let table = handle.read();
    if let Some(on) = &j.on {
        for (qual, col) in on.column_refs() {
            if qual == Some(visible.as_str()) || qual.is_none() {
                if let Some(idx) = table.schema().column_index(col) {
                    if table.has_index_on(idx) {
                        return Ok(true);
                    }
                }
            }
        }
    }
    Ok(false)
}

fn explain_factor(
    catalog: &Catalog,
    profile: EngineProfile,
    f: &TableFactor,
    depth: usize,
    out: &mut Vec<String>,
) -> DbResult<()> {
    match f {
        TableFactor::Table { name, alias } => {
            let label = match alias {
                Some(a) => format!("{name} AS {a}"),
                None => name.clone(),
            };
            if let Some(view) = catalog.view(name) {
                push(out, depth, format!("View {label}"));
                explain_stmt(catalog, profile, &view, depth + 1, out)
            } else {
                // existence check so EXPLAIN reports missing tables
                let _ = catalog.table(name)?;
                push(out, depth, format!("SeqScan {label}"));
                Ok(())
            }
        }
        TableFactor::Derived { subquery, alias } => {
            push(out, depth, format!("Subquery AS {alias}"));
            explain_stmt(catalog, profile, subquery, depth + 1, out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Database, Value};

    fn db(profile: EngineProfile) -> Database {
        let db = Database::new(profile);
        let mut s = db.connect();
        s.execute("CREATE TABLE nodes (id INT PRIMARY KEY, v FLOAT)")
            .unwrap();
        s.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
            .unwrap();
        s.execute("CREATE INDEX e_src ON edges (src)").unwrap();
        db
    }

    fn plan(profile: EngineProfile, sql: &str) -> String {
        let d = db(profile);
        let mut s = d.connect();
        match s.execute(&format!("EXPLAIN {sql}")).unwrap() {
            crate::StmtOutput::Rows(r) => r
                .rows
                .iter()
                .map(|row| match &row[0] {
                    Value::Text(t) => t.clone(),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("\n"),
            _ => panic!("expected rows"),
        }
    }

    #[test]
    fn profiles_pick_different_join_algorithms() {
        let sql = "SELECT nodes.id FROM nodes JOIN edges ON nodes.id = edges.src";
        let pg = plan(EngineProfile::Postgres, sql);
        assert!(pg.contains("HashJoin"), "{pg}");
        let my = plan(EngineProfile::MySql, sql);
        assert!(my.contains("IndexNestedLoopJoin"), "{my}");
    }

    #[test]
    fn unindexed_inner_side_degrades_to_block_nested_loop() {
        let sql = "SELECT nodes.id FROM edges JOIN nodes ON edges.weight = nodes.v";
        let my = plan(EngineProfile::MySql, sql);
        assert!(my.contains("BlockNestedLoop"), "{my}");
        let maria = plan(EngineProfile::MariaDb, sql);
        assert!(maria.contains("buffer 4096"), "{maria}");
    }

    #[test]
    fn aggregates_views_and_subqueries_shown() {
        let d = db(EngineProfile::Postgres);
        let mut s = d.connect();
        s.execute("CREATE VIEW vv AS SELECT src FROM edges")
            .unwrap();
        let out = match s
            .execute("EXPLAIN SELECT src, COUNT(*) FROM (SELECT src FROM vv) AS x GROUP BY src")
            .unwrap()
        {
            crate::StmtOutput::Rows(r) => r,
            _ => panic!(),
        };
        let text = out
            .rows
            .iter()
            .map(|r| r[0].to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("HashAggregate"), "{text}");
        assert!(text.contains("Subquery AS x"), "{text}");
        assert!(text.contains("View vv"), "{text}");
    }

    #[test]
    fn explain_analyze_speaks_the_same_operator_vocabulary() {
        // every operator EXPLAIN names must appear in the ANALYZE tree too
        let sql = "SELECT nodes.id FROM nodes JOIN edges ON nodes.id = edges.src \
                   WHERE edges.weight > 0.0 ORDER BY nodes.id";
        for profile in EngineProfile::ALL {
            let d = db(profile);
            let mut s = d.connect();
            let mut ops = |prefix: &str| -> Vec<String> {
                match s.execute(&format!("{prefix} {sql}")).unwrap() {
                    crate::StmtOutput::Rows(r) => r
                        .rows
                        .iter()
                        .map(|row| {
                            let line = row[0].to_string();
                            let op = line.trim_start();
                            op.split(" (actual").next().unwrap_or(op).to_string()
                        })
                        .filter(|l| !l.starts_with("Execution:"))
                        .collect(),
                    _ => panic!("expected rows"),
                }
            };
            let planned = ops("EXPLAIN");
            let actual = ops("EXPLAIN ANALYZE");
            for op in &planned {
                assert!(
                    actual.contains(op),
                    "{profile:?}: planned op {op:?} missing from analyze {actual:?}"
                );
            }
        }
    }

    #[test]
    fn explain_missing_table_errors() {
        let d = db(EngineProfile::Postgres);
        let mut s = d.connect();
        assert!(s.execute("EXPLAIN SELECT * FROM nowhere").is_err());
    }

    #[test]
    fn explain_non_select_rejected() {
        let d = db(EngineProfile::Postgres);
        let mut s = d.connect();
        let err = s.execute("EXPLAIN INSERT INTO nodes VALUES (1, 2.0)");
        assert!(
            matches!(err, Err(crate::error::DbError::Unsupported(_))),
            "{err:?}"
        );
    }
}
