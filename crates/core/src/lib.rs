//! # sqloop — iterative SQL middleware (ICDCS 2018 reproduction)
//!
//! SQLoop extends SQL with **iterative CTEs**
//! (`WITH ITERATIVE R AS (R0 ITERATE Ri UNTIL Tc) Qf`) and executes them —
//! plus standard recursive CTEs — against any engine behind a
//! [`dbcp::Driver`], transparently parallelizing iterative queries that
//! contain `SUM`/`MIN`/`MAX`/`COUNT`/`AVG` over a self-join in synchronous
//! (`Sync`), asynchronous (`Async`) and prioritized asynchronous (`AsyncP`)
//! modes.
//!
//! The middleware never computes on the data itself: it manages partitions,
//! message tables, the statements submitted to the target engine, and the
//! thread scheduling — exactly the architecture of the paper (§IV).
//!
//! ## Quick start
//!
//! ```
//! use sqloop::SQLoop;
//!
//! # fn main() -> Result<(), sqloop::SqloopError> {
//! let sqloop = SQLoop::connect("local://postgres")?;
//! sqloop.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")?;
//! sqloop.execute("INSERT INTO edges VALUES (1,2,1.0), (2,1,1.0)")?;
//! // the paper's Example 1: recursive CTE
//! let fib = sqloop.execute(
//!     "WITH RECURSIVE f(n, pn) AS (VALUES (0, 1) UNION ALL \
//!      SELECT n + pn, n FROM f WHERE n < 1000) SELECT SUM(n) FROM f",
//! )?;
//! assert_eq!(fib.rows[0][0], sqldb::Value::Int(4180));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analysis;
mod api;
pub mod checkpoint;
pub mod ckpt_io;
pub mod common;
mod config;
mod error;
pub mod grammar;
pub mod parallel;
pub mod parallel_sql;
pub mod progress;
mod router;
pub mod single;
pub mod supervisor;
pub mod translate;
pub mod watchdog;

pub use analysis::{analyze, AnalysisOutcome, ParallelPlan};
pub use api::{DigestReport, ExecutionReport, SQLoop, Strategy, DIGEST_MISS_TOP_K};
pub use checkpoint::{CheckpointConfig, Checkpointer, LoopSnapshot, RecoveredSnapshot};
pub use ckpt_io::{CkptIo, RealFs, StorageFault, TornFs};
pub use config::{ExecutionMode, PrioritySpec, SqloopConfig, TraceConfig};
pub use dbcp::CancelToken;
pub use error::{SqloopError, SqloopResult};
pub use grammar::{parse, IterativeCte, RecursiveCte, SqloopQuery, Termination};
pub use parallel::{
    run_iterative_parallel, run_iterative_parallel_observed, run_iterative_parallel_traced,
    ParallelRun,
};
pub use progress::{ProgressSample, RecoveryCounters, Sampler};
pub use router::SqloopRouter;
pub use single::{run_iterative_single, run_iterative_single_observed, run_recursive, RunOutcome};
pub use watchdog::{Governance, Watchdog, WatchdogConfig};
