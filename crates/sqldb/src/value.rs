//! Runtime values and SQL three-valued comparison semantics.

use crate::error::{DbError, DbResult};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single SQL value.
///
/// `Float` uses a total order (`f64::total_cmp`) for sorting and grouping so
/// that values can live in hash and btree indexes; SQL comparison operators
/// still return `Null` when either side is `Null`.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float. `Infinity` literals parse to this variant.
    Float(f64),
    /// UTF-8 string.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Returns `true` if the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as a filter predicate result: only `Bool(true)`
    /// passes; `Null` and `false` reject the row.
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Numeric view as `f64`, if the value is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view, if the value is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Text view, if the value is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Name of the value's runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Text(_) => "text",
            Value::Bool(_) => "bool",
        }
    }

    /// SQL equality: returns `None` when either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }

    /// SQL ordering comparison: returns `None` when either side is NULL.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Total order over all values, used for sorting, grouping and indexes.
    ///
    /// NULL sorts first; numeric values compare numerically across
    /// `Int`/`Float`; mixed non-numeric types compare by type rank.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // ints and floats share a rank: they intercompare
            Value::Text(_) => 3,
        }
    }

    /// Arithmetic addition with int/float promotion.
    ///
    /// # Errors
    /// Returns [`DbError::Eval`] when the operands are non-numeric.
    pub fn add(&self, other: &Value) -> DbResult<Value> {
        self.numeric_binop(other, "+", |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Arithmetic subtraction with int/float promotion.
    ///
    /// # Errors
    /// Returns [`DbError::Eval`] when the operands are non-numeric.
    pub fn sub(&self, other: &Value) -> DbResult<Value> {
        self.numeric_binop(other, "-", |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Arithmetic multiplication with int/float promotion.
    ///
    /// # Errors
    /// Returns [`DbError::Eval`] when the operands are non-numeric.
    pub fn mul(&self, other: &Value) -> DbResult<Value> {
        self.numeric_binop(other, "*", |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Arithmetic division. Integer division truncates; division by integer
    /// zero is an error, float division follows IEEE semantics.
    ///
    /// # Errors
    /// Returns [`DbError::Eval`] on division by integer zero or non-numeric
    /// operands.
    pub fn div(&self, other: &Value) -> DbResult<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Int(_), Value::Int(0)) => Err(DbError::Eval("division by zero".into())),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a / b)),
            _ => {
                let (a, b) = self.both_f64(other, "/")?;
                Ok(Value::Float(a / b))
            }
        }
    }

    /// Arithmetic remainder.
    ///
    /// # Errors
    /// Returns [`DbError::Eval`] on modulo by integer zero or non-numeric
    /// operands.
    pub fn rem(&self, other: &Value) -> DbResult<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Int(_), Value::Int(0)) => Err(DbError::Eval("modulo by zero".into())),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a % b)),
            _ => {
                let (a, b) = self.both_f64(other, "%")?;
                Ok(Value::Float(a % b))
            }
        }
    }

    /// Unary negation.
    ///
    /// # Errors
    /// Returns [`DbError::Eval`] when the operand is non-numeric.
    pub fn neg(&self) -> DbResult<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            v => Err(DbError::Eval(format!("cannot negate {}", v.type_name()))),
        }
    }

    fn numeric_binop(
        &self,
        other: &Value,
        op: &str,
        int_op: impl Fn(i64, i64) -> Option<i64>,
        float_op: impl Fn(f64, f64) -> f64,
    ) -> DbResult<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => int_op(*a, *b)
                .map(Value::Int)
                .ok_or_else(|| DbError::Eval(format!("integer overflow in {op}"))),
            _ => {
                let (a, b) = self.both_f64(other, op)?;
                Ok(Value::Float(float_op(a, b)))
            }
        }
    }

    fn both_f64(&self, other: &Value, op: &str) -> DbResult<(f64, f64)> {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => Ok((a, b)),
            _ => Err(DbError::Eval(format!(
                "operator {op} requires numeric operands, got {} and {}",
                self.type_name(),
                other.type_name()
            ))),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // ints and floats that compare equal must hash equal
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.is_infinite() {
                    write!(f, "{}Infinity", if *v < 0.0 { "-" } else { "" })
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A row is a fixed-arity vector of values matching a table schema.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_through_arithmetic() {
        assert_eq!(Value::Null.add(&Value::Int(1)).unwrap(), Value::Null);
        assert_eq!(Value::Int(1).mul(&Value::Null).unwrap(), Value::Null);
    }

    #[test]
    fn int_float_promotion() {
        assert_eq!(
            Value::Int(2).add(&Value::Float(0.5)).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(
            Value::Float(7.0).div(&Value::Int(2)).unwrap(),
            Value::Float(3.5)
        );
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert!(Value::Int(1).rem(&Value::Int(0)).is_err());
    }

    #[test]
    fn sql_comparison_returns_none_on_null() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
    }

    #[test]
    fn int_and_float_compare_and_hash_consistently() {
        use std::collections::hash_map::DefaultHasher;
        let a = Value::Int(3);
        let b = Value::Float(3.0);
        assert_eq!(a, b);
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn total_order_sorts_null_first() {
        let mut vals = [Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(1));
    }

    #[test]
    fn infinity_displays_like_postgres() {
        assert_eq!(Value::Float(f64::INFINITY).to_string(), "Infinity");
        assert_eq!(Value::Float(f64::NEG_INFINITY).to_string(), "-Infinity");
    }

    #[test]
    fn integer_overflow_detected() {
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
        assert!(Value::Int(i64::MIN).sub(&Value::Int(1)).is_err());
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(1).is_truthy());
    }
}
