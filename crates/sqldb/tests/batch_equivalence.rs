//! Property tests for the vectorized executor: every query must produce
//! results identical (same rows, same order) to the row-at-a-time baseline
//! at every batch size — including over NULLs, NaN payloads, ±infinity,
//! signed zero and extreme integers — and must fail with the *same error*
//! whenever the row path fails (division by zero, type mismatches).
//!
//! The batch sizes exercised are 1 (every row is its own batch), 3 (batch
//! boundaries land mid-group and mid-filter-run), the per-profile default
//! (256/1024/4096) and 4096 (usually one batch for these tables).

use proptest::prelude::*;
use sqldb::{Column, DataType, Database, EngineProfile, TableDump, Value};

/// Floats with deliberately hostile bit patterns (same family the snapshot
/// suite uses): kernels must treat them exactly like the row evaluator.
fn arb_float() -> BoxedStrategy<f64> {
    prop_oneof![
        Just(0.0f64),
        Just(-0.0f64),
        Just(f64::NAN),
        Just(-f64::NAN),
        Just(f64::from_bits(0x7ff8_dead_beef_0001)), // NaN with a payload
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::MIN),
        Just(f64::MAX),
        Just(f64::MIN_POSITIVE),
        Just(f64::from_bits(1)), // smallest subnormal
        any::<u64>().prop_map(f64::from_bits),
        -1.0e9..1.0e9f64,
    ]
    .boxed()
}

fn arb_int() -> BoxedStrategy<i64> {
    prop_oneof![
        Just(i64::MIN),
        Just(i64::MAX),
        Just(0i64),
        Just(-1i64),
        -4i64..5,
        any::<i64>(),
    ]
    .boxed()
}

/// Short texts, deliberately collision-heavy so GROUP BY forms real groups.
fn arb_text() -> BoxedStrategy<String> {
    prop_oneof![
        Just(String::new()),
        Just("a".to_string()),
        Just("b".to_string()),
        Just("héllo ∞".to_string()),
        "[a-c]{0,3}",
    ]
    .boxed()
}

/// One row with an INT, FLOAT, TEXT and BOOL column, each independently
/// NULL ~20% of the time.
fn arb_row() -> BoxedStrategy<Vec<Value>> {
    (
        (0u8..5, arb_int()),
        (0u8..5, arb_float()),
        (0u8..5, arb_text()),
        (0u8..5, any::<bool>()),
    )
        .prop_map(|((ki, i), (kf, f), (kt, t), (kb, b))| {
            let pick = |k: u8, v: Value| if k == 0 { Value::Null } else { v };
            vec![
                pick(ki, Value::Int(i)),
                pick(kf, Value::Float(f)),
                pick(kt, Value::Text(t)),
                pick(kb, Value::Bool(b)),
            ]
        })
        .boxed()
}

fn arb_dump() -> BoxedStrategy<TableDump> {
    proptest::collection::vec(arb_row(), 0..40)
        .prop_map(|rows| TableDump {
            name: "t".to_string(),
            columns: vec![
                Column::new("c_int", DataType::Int),
                Column::new("c_float", DataType::Float),
                Column::new("c_text", DataType::Text),
                Column::new("c_bool", DataType::Bool),
            ],
            primary_key: None,
            rows,
        })
        .boxed()
}

/// The workload-suite query shapes: scan, filter (including AND/OR over
/// fallible operands), projection arithmetic, hash aggregation with HAVING,
/// DISTINCT, ORDER BY, self-join, and expressions that can genuinely error
/// (division by a column that may be zero).
const QUERIES: &[&str] = &[
    "SELECT c_int, c_float, c_text, c_bool FROM t",
    "SELECT c_int + 1, c_float * 2.0, -c_float FROM t WHERE c_int IS NOT NULL",
    "SELECT c_int FROM t WHERE c_float > 0.0 OR c_bool",
    "SELECT c_int FROM t WHERE c_int IS NOT NULL AND c_int * 2 >= c_int ORDER BY c_int",
    "SELECT c_text, COUNT(*), SUM(c_float), MIN(c_int), MAX(c_float), AVG(c_float) \
     FROM t GROUP BY c_text",
    "SELECT c_bool, COUNT(*) FROM t WHERE c_float > 0.0 GROUP BY c_bool HAVING COUNT(*) > 1",
    "SELECT DISTINCT c_bool FROM t",
    "SELECT c_int / c_int FROM t",
    "SELECT c_int FROM t WHERE c_int IS NOT NULL AND 100 / (c_int + 1) > 0",
    "SELECT a.c_int, b.c_float FROM t AS a JOIN t AS b ON a.c_int = b.c_int \
     WHERE a.c_int IS NOT NULL",
    "SELECT COUNT(*) FROM t",
];

/// Runs `sql` and collapses the outcome to something comparable: the rows
/// on success, the error text on failure (error *equivalence* is part of
/// the contract — the batch path must surface the row path's first error).
fn outcome(db: &Database, sql: &str) -> Result<Vec<Vec<Value>>, String> {
    db.connect()
        .query(sql)
        .map(|r| r.rows)
        .map_err(|e| e.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_execution_matches_row_semantics_at_every_batch_size(dump in arb_dump()) {
        for profile in EngineProfile::ALL {
            let db = Database::new(profile);
            db.import_table(&dump).unwrap();
            for sql in QUERIES {
                db.set_vectorized(false);
                let baseline = outcome(&db, sql);
                db.set_vectorized(true);
                for size in [Some(1), Some(3), None, Some(4096)] {
                    db.set_batch_size(size);
                    let got = outcome(&db, sql);
                    prop_assert_eq!(
                        &baseline, &got,
                        "{} / batch={:?} / {}", profile, size, sql
                    );
                }
                db.set_batch_size(None);
            }
        }
    }
}
