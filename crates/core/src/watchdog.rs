//! Runaway-loop watchdog: round budgets, numeric-divergence probes, and
//! delta-trend tracking shared by every executor (see DESIGN.md §12).
//!
//! Iterative queries are user programs: a damping factor above 1, a
//! negative cycle, or a bad termination condition turns the loop into a
//! CPU-and-memory black hole that `UNTIL` will never stop. The watchdog
//! watches three independent signals, each off by default:
//!
//! * **`max_rounds`** — a hard ceiling on rounds/iterations, tripping a
//!   typed [`SqloopError::BudgetExceeded`];
//! * **numeric probes** — `SUM` over the float columns of the iterating
//!   state; a NaN/±∞ aggregate means the arithmetic has already diverged
//!   and every further round is wasted work
//!   ([`SqloopError::NumericDivergence`] naming the partition and round);
//! * **delta trend** — the per-round update count of a converging run
//!   shrinks over time; when it stops setting new lows for `window`
//!   consecutive rounds the run is flagged as non-converging (oscillation
//!   or a fixed-point the termination condition cannot see).
//!
//! The trend check is automatically disabled under `UNTIL n ITERATIONS`
//! termination: those runs update a constant number of rows per round by
//! design, and their iteration bound already guarantees termination.
//!
//! Executors call the watchdog at round boundaries, where the PR-3 quiesce
//! and final-checkpoint machinery already lives — so every verdict aborts
//! the run *governed*: state is checkpointed and the run resumes under a
//! larger budget or after the query is fixed.

use crate::common::run_query;
use crate::error::{SqloopError, SqloopResult};
use crate::grammar::Termination;
use dbcp::Connection;
use sqldb::DataType;

/// Watchdog settings; the default disables every check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WatchdogConfig {
    /// Hard ceiling on rounds/iterations (`None` = off). Unlike the
    /// executor's `max_iterations` safety cap this trips a typed
    /// [`SqloopError::BudgetExceeded`] *after a final checkpoint*, so the
    /// run can resume under a larger budget.
    pub max_rounds: Option<u64>,
    /// Flag the run as non-converging after this many consecutive rounds
    /// without a new minimum update count (`None` = off).
    pub window: Option<u64>,
    /// Probe float aggregates of the iterating state for NaN/±∞ each
    /// round.
    pub numeric_checks: bool,
}

impl WatchdogConfig {
    /// True when at least one check is enabled.
    pub fn is_active(&self) -> bool {
        self.max_rounds.is_some() || self.window.is_some() || self.numeric_checks
    }
}

/// Per-run watchdog state. Create one per executed query with
/// [`Watchdog::new`] and feed it every round boundary.
#[derive(Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    /// Delta-trend tracking is senseless under `UNTIL n ITERATIONS`.
    trend_enabled: bool,
    best_updates: Option<u64>,
    stale_rounds: u64,
}

impl Watchdog {
    /// A watchdog for one run of a query terminated by `termination`.
    pub fn new(cfg: WatchdogConfig, termination: &Termination) -> Watchdog {
        let trend_enabled =
            cfg.window.is_some() && !matches!(termination, Termination::Iterations(_));
        Watchdog {
            cfg,
            trend_enabled,
            best_updates: None,
            stale_rounds: 0,
        }
    }

    /// True when at least one check is enabled (callers can skip the
    /// round-boundary bookkeeping entirely otherwise).
    pub fn is_active(&self) -> bool {
        self.cfg.is_active()
    }

    /// True when float aggregates should be probed each round.
    pub fn numeric_checks(&self) -> bool {
        self.cfg.numeric_checks
    }

    /// Feeds one completed round (`round` is 1-based, `updates` the rows
    /// the round changed) and renders a verdict.
    ///
    /// # Errors
    /// [`SqloopError::BudgetExceeded`] when `max_rounds` is exhausted;
    /// [`SqloopError::NumericDivergence`] when the update trend has been
    /// flat or growing for the configured window.
    pub fn check_round(&mut self, round: u64, updates: u64) -> SqloopResult<()> {
        if let Some(max) = self.cfg.max_rounds {
            if round >= max {
                return Err(verdict(SqloopError::BudgetExceeded {
                    what: "max_rounds".into(),
                    round,
                }));
            }
        }
        if self.trend_enabled && updates > 0 {
            let improved = self.best_updates.is_none_or(|best| updates < best);
            if improved {
                self.best_updates = Some(updates);
                self.stale_rounds = 0;
            } else {
                self.stale_rounds += 1;
                let window = self.cfg.window.unwrap_or(u64::MAX);
                if self.stale_rounds >= window {
                    return Err(verdict(SqloopError::NumericDivergence {
                        partition: None,
                        round,
                        detail: format!(
                            "update count has not shrunk for {} rounds \
                             (best {}, current {updates}); the run is not converging",
                            self.stale_rounds,
                            self.best_updates.unwrap_or(updates),
                        ),
                    }));
                }
            }
        }
        Ok(())
    }

    /// Checks one gathered aggregate value for NaN/±∞ (no-op when numeric
    /// checks are off).
    ///
    /// # Errors
    /// [`SqloopError::NumericDivergence`] naming `partition` and `round`
    /// when `value` is not finite.
    pub fn check_aggregate(
        &self,
        partition: Option<usize>,
        round: u64,
        label: &str,
        value: f64,
    ) -> SqloopResult<()> {
        if self.cfg.numeric_checks && !value.is_finite() {
            return Err(verdict(SqloopError::NumericDivergence {
                partition,
                round,
                detail: format!("{label} is {value}"),
            }));
        }
        Ok(())
    }

    /// Probes every float column of `table` with one `SUM(...)` query and
    /// checks the results for NaN/±∞ (no-op when numeric checks are off or
    /// the table has no float columns). `SUM` is the cheapest aggregate
    /// that poisons on any non-finite input: one ∞ row makes the whole sum
    /// non-finite.
    ///
    /// # Errors
    /// Engine errors from the probe query, or
    /// [`SqloopError::NumericDivergence`] naming `partition` and `round`.
    pub fn probe_table(
        &self,
        conn: &mut dyn Connection,
        table: &str,
        columns: &[String],
        types: &[DataType],
        partition: Option<usize>,
        round: u64,
    ) -> SqloopResult<()> {
        if !self.cfg.numeric_checks {
            return Ok(());
        }
        let float_cols: Vec<&String> = columns
            .iter()
            .zip(types)
            .filter(|(_, t)| matches!(t, DataType::Float))
            .map(|(c, _)| c)
            .collect();
        if float_cols.is_empty() {
            return Ok(());
        }
        let probes = float_cols
            .iter()
            .map(|c| format!("SUM({c})"))
            .collect::<Vec<_>>()
            .join(", ");
        obs::global()
            .counter("sqloop.watchdog.numeric_probes")
            .inc();
        let result = run_query(conn, &format!("SELECT {probes} FROM {table}"))?;
        if let Some(row) = result.rows.first() {
            for (col, value) in float_cols.iter().zip(row) {
                if let Some(v) = value.as_f64() {
                    self.check_aggregate(partition, round, &format!("SUM({col})"), v)?;
                }
            }
        }
        Ok(())
    }
}

/// Counts and returns a watchdog verdict.
fn verdict(e: SqloopError) -> SqloopError {
    obs::global().counter("sqloop.watchdog.verdicts").inc();
    e
}

/// Governance hooks threaded into an executor run.
#[derive(Default)]
pub struct Governance<'a> {
    /// Watchdog state for this run (`None` = no checks).
    pub watchdog: Option<Watchdog>,
    /// Lifts the engine memory limit before a governed abort writes its
    /// final checkpoint — snapshotting needs headroom the exhausted
    /// budget no longer provides. Resuming re-applies the (raised) limit.
    pub lift_mem: Option<&'a (dyn Fn() + Sync)>,
}

impl std::fmt::Debug for Governance<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Governance")
            .field("watchdog", &self.watchdog)
            .field("lift_mem", &self.lift_mem.map(|_| "..."))
            .finish()
    }
}

impl Governance<'_> {
    /// No governance: no watchdog, no memory limit to lift.
    pub fn none() -> Governance<'static> {
        Governance::default()
    }

    /// Lifts the engine memory limit, when a hook was provided.
    pub fn lift_memory_limit(&self) {
        if let Some(lift) = self.lift_mem {
            lift();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcp::{Driver, LocalDriver};
    use sqldb::{Database, EngineProfile};

    fn term_updates() -> Termination {
        Termination::Updates(0)
    }

    #[test]
    fn default_config_checks_nothing() {
        let mut w = Watchdog::new(WatchdogConfig::default(), &term_updates());
        assert!(!w.is_active());
        for round in 1..=10_000 {
            w.check_round(round, 42).unwrap();
        }
        w.check_aggregate(Some(1), 5, "SUM(rank)", f64::INFINITY)
            .unwrap();
    }

    #[test]
    fn max_rounds_trips_a_typed_budget_error() {
        let cfg = WatchdogConfig {
            max_rounds: Some(5),
            ..WatchdogConfig::default()
        };
        let mut w = Watchdog::new(cfg, &term_updates());
        for round in 1..5 {
            w.check_round(round, 10).unwrap();
        }
        let err = w.check_round(5, 10).unwrap_err();
        assert!(
            matches!(&err, SqloopError::BudgetExceeded { what, round: 5 } if what == "max_rounds"),
            "{err:?}"
        );
        assert!(!err.is_retryable());
    }

    #[test]
    fn non_finite_aggregate_names_partition_and_round() {
        let cfg = WatchdogConfig {
            numeric_checks: true,
            ..WatchdogConfig::default()
        };
        let w = Watchdog::new(cfg, &term_updates());
        w.check_aggregate(Some(3), 7, "SUM(rank)", 123.0).unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = w.check_aggregate(Some(3), 7, "SUM(rank)", bad).unwrap_err();
            match err {
                SqloopError::NumericDivergence {
                    partition: Some(3),
                    round: 7,
                    detail,
                } => assert!(detail.contains("SUM(rank)"), "{detail}"),
                other => panic!("expected divergence: {other:?}"),
            }
        }
    }

    #[test]
    fn flat_update_trend_is_flagged_after_the_window() {
        let cfg = WatchdogConfig {
            window: Some(4),
            ..WatchdogConfig::default()
        };
        let mut w = Watchdog::new(cfg, &term_updates());
        // shrinking updates: healthy convergence, stale counter resets
        for (round, updates) in [(1, 100), (2, 80), (3, 90), (4, 50)] {
            w.check_round(round, updates).unwrap();
        }
        // oscillation: never below 50 again
        for round in 5..8 {
            w.check_round(round, 60).unwrap();
        }
        let err = w.check_round(8, 60).unwrap_err();
        assert!(
            matches!(
                &err,
                SqloopError::NumericDivergence {
                    partition: None,
                    round: 8,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn trend_is_gated_off_for_iteration_termination() {
        let cfg = WatchdogConfig {
            window: Some(2),
            ..WatchdogConfig::default()
        };
        // fixed iteration counts update a constant row set per round by
        // design — not divergence
        let mut w = Watchdog::new(cfg, &Termination::Iterations(50));
        for round in 1..=40 {
            w.check_round(round, 100).unwrap();
        }
    }

    #[test]
    fn zero_update_rounds_never_count_as_stale() {
        let cfg = WatchdogConfig {
            window: Some(2),
            ..WatchdogConfig::default()
        };
        let mut w = Watchdog::new(cfg, &term_updates());
        for round in 1..=10 {
            w.check_round(round, 0).unwrap();
        }
    }

    #[test]
    fn probe_table_spots_an_infinite_row() {
        let db = Database::new(EngineProfile::Postgres);
        let mut conn = LocalDriver::new(db).connect().unwrap();
        conn.execute("CREATE TABLE part3 (id INT, rank FLOAT, delta FLOAT)")
            .unwrap();
        conn.execute("INSERT INTO part3 VALUES (1, 0.5, 0.1), (2, 1.5, 0.2)")
            .unwrap();
        let cfg = WatchdogConfig {
            numeric_checks: true,
            ..WatchdogConfig::default()
        };
        let w = Watchdog::new(cfg, &term_updates());
        let columns = vec!["id".to_owned(), "rank".to_owned(), "delta".to_owned()];
        let types = vec![DataType::Int, DataType::Float, DataType::Float];
        w.probe_table(conn.as_mut(), "part3", &columns, &types, Some(3), 2)
            .unwrap();
        conn.execute("INSERT INTO part3 VALUES (3, Infinity, 0.0)")
            .unwrap();
        let err = w
            .probe_table(conn.as_mut(), "part3", &columns, &types, Some(3), 2)
            .unwrap_err();
        assert!(
            matches!(
                &err,
                SqloopError::NumericDivergence {
                    partition: Some(3),
                    round: 2,
                    ..
                }
            ),
            "{err:?}"
        );
        // off = free: the same poisoned table passes
        let off = Watchdog::new(WatchdogConfig::default(), &term_updates());
        off.probe_table(conn.as_mut(), "part3", &columns, &types, Some(3), 2)
            .unwrap();
    }
}
