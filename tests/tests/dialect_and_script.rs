//! Cross-cutting tests: dialect enforcement through the full stack, the
//! SQL-script baseline's equivalence with the iterative CTE, and artifact
//! hygiene.

use dbcp::{Driver, LocalDriver};
use sqldb::{Database, DbError, EngineProfile};
use sqloop::{ExecutionMode, SQLoop, SqloopConfig, SqloopError};
use std::sync::Arc;
use workloads::{run_script, ScriptMode};

fn driver_with_graph(profile: EngineProfile, g: &graphgen::Graph) -> Arc<LocalDriver> {
    let db = Database::new(profile);
    let driver = Arc::new(LocalDriver::new(db));
    let mut conn = driver.connect().unwrap();
    workloads::load_edges(conn.as_mut(), g).unwrap();
    driver
}

#[test]
fn untranslated_sql_fails_on_mysql_but_sqloop_succeeds() {
    let g = graphgen::chain(10);
    let driver = driver_with_graph(EngineProfile::MySql, &g);
    // raw PostgreSQL-style join update is rejected by the engine…
    let mut conn = driver.connect().unwrap();
    conn.execute("CREATE TABLE r (id INT PRIMARY KEY, v FLOAT)")
        .unwrap();
    conn.execute("CREATE TABLE m (id INT PRIMARY KEY, v FLOAT)")
        .unwrap();
    let err = conn.execute("UPDATE r SET v = m.v FROM m WHERE r.id = m.id");
    assert!(matches!(err, Err(DbError::Unsupported(_))), "{err:?}");
    drop(conn);
    // …but through the middleware the translation module rewrites it
    let sq = SQLoop::new(driver as Arc<dyn Driver>);
    sq.execute("UPDATE r SET v = m.v FROM m WHERE r.id = m.id")
        .unwrap();
}

#[test]
fn infinity_workloads_run_on_engines_without_the_literal() {
    // SSSP seeds distances with Infinity; MySQL/MariaDB have no such literal
    let g = graphgen::chain(15);
    for profile in [EngineProfile::MySql, EngineProfile::MariaDb] {
        let driver = driver_with_graph(profile, &g);
        let sq = SQLoop::new(driver as Arc<dyn Driver>).with_config(SqloopConfig {
            mode: ExecutionMode::Single,
            ..SqloopConfig::default()
        });
        let out = sq.execute(&workloads::queries::sssp(0, 14)).unwrap();
        let d = out.rows[0][0].as_f64().unwrap();
        assert_eq!(d, 14.0, "{profile}");
    }
}

#[test]
fn script_baseline_matches_iterative_cte_results() {
    let g = graphgen::web_graph(60, 3, 4);
    for profile in EngineProfile::ALL {
        let driver = driver_with_graph(profile, &g);
        // script over a single connection
        let mut conn = driver.connect().unwrap();
        let script = workloads::pagerank_script();
        let script_out =
            run_script(conn.as_mut(), &script, ScriptMode::FixedIterations(6)).unwrap();
        drop(conn);
        // same computation through the middleware
        let sq = SQLoop::new(driver as Arc<dyn Driver>).with_config(SqloopConfig {
            mode: ExecutionMode::Sync,
            threads: 2,
            partitions: 8,
            ..SqloopConfig::default()
        });
        let cte_out = sq.execute(&workloads::queries::pagerank(6)).unwrap();
        assert_eq!(
            script_out.result.rows.len(),
            cte_out.rows.len(),
            "{profile}"
        );
        for (a, b) in script_out.result.rows.iter().zip(&cte_out.rows) {
            assert_eq!(a[0], b[0], "{profile}");
            let (x, y) = (a[1].as_f64().unwrap(), b[1].as_f64().unwrap());
            assert!((x - y).abs() < 1e-9, "{profile}: {x} vs {y}");
        }
        assert_eq!(script_out.iterations, 6);
    }
}

#[test]
fn descendant_script_agrees_with_cte() {
    let g = graphgen::two_domain_web(30, 3, 6);
    let (target, hops) = g.node_at_distance(0, 25).unwrap();
    let driver = driver_with_graph(EngineProfile::Postgres, &g);
    let mut conn = driver.connect().unwrap();
    let script = workloads::descendant_script(0, target);
    let out = run_script(
        conn.as_mut(),
        &script,
        ScriptMode::UntilNoUpdates {
            max_iterations: 500,
        },
    )
    .unwrap();
    drop(conn);
    assert_eq!(out.result.rows[0][0].as_f64().unwrap(), hops as f64);
    let sq = SQLoop::new(driver as Arc<dyn Driver>).with_config(SqloopConfig {
        mode: ExecutionMode::Async,
        threads: 2,
        partitions: 8,
        ..SqloopConfig::default()
    });
    let cte = sq
        .execute(&workloads::queries::descendant_clicks(0, target))
        .unwrap();
    assert_eq!(cte.rows[0][0].as_f64().unwrap(), hops as f64);
}

#[test]
fn no_scratch_tables_leak_across_a_full_workload_suite() {
    let g = graphgen::web_graph(40, 3, 8);
    let db = Database::new(EngineProfile::Postgres);
    let driver = Arc::new(LocalDriver::new(db.clone()));
    let mut conn = driver.connect().unwrap();
    workloads::load_edges(conn.as_mut(), &g).unwrap();
    drop(conn);
    let sq = SQLoop::new(driver as Arc<dyn Driver>).with_config(SqloopConfig {
        mode: ExecutionMode::Async,
        threads: 2,
        partitions: 8,
        ..SqloopConfig::default()
    });
    sq.execute(&workloads::queries::pagerank(4)).unwrap();
    sq.execute(&workloads::queries::sssp(0, 5)).unwrap();
    sq.execute(
        "WITH RECURSIVE reach(node) AS (SELECT 0 UNION \
         SELECT edges.dst FROM reach JOIN edges ON reach.node = edges.src) \
         SELECT COUNT(*) FROM reach",
    )
    .unwrap();
    let tables = db.table_names();
    assert_eq!(tables, vec!["edges".to_string()], "leftovers: {tables:?}");
}

#[test]
fn grammar_error_reported_not_panicked() {
    let driver = driver_with_graph(EngineProfile::Postgres, &graphgen::chain(3));
    let sq = SQLoop::new(driver as Arc<dyn Driver>);
    let err = sq.execute("WITH ITERATIVE broken AS (SELECT 1) SELECT 2");
    assert!(matches!(err, Err(SqloopError::Grammar(_))), "{err:?}");
}

#[test]
fn keep_artifacts_preserves_the_cte_view() {
    let g = graphgen::chain(8);
    let db = Database::new(EngineProfile::Postgres);
    let driver = Arc::new(LocalDriver::new(db.clone()));
    let mut conn = driver.connect().unwrap();
    workloads::load_edges(conn.as_mut(), &g).unwrap();
    drop(conn);
    let sq = SQLoop::new(driver.clone() as Arc<dyn Driver>).with_config(SqloopConfig {
        mode: ExecutionMode::Sync,
        threads: 1,
        partitions: 4,
        keep_artifacts: true,
        ..SqloopConfig::default()
    });
    sq.execute(&workloads::queries::pagerank(2)).unwrap();
    // the CTE view and its partitions remain queryable
    let mut conn = driver.connect().unwrap();
    let n = conn.query("SELECT COUNT(*) FROM pagerank").unwrap();
    assert_eq!(n.rows[0][0], sqldb::Value::Int(g.node_count() as i64));
}
