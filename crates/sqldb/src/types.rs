//! Column types and table schemas.

use crate::error::{DbError, DbResult};
use crate::value::Value;
use std::fmt;

/// Declared SQL column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit integer (`INT`, `INTEGER`, `BIGINT`).
    Int,
    /// 64-bit float (`FLOAT`, `DOUBLE`, `DOUBLE PRECISION`, `REAL`, `NUMERIC`).
    Float,
    /// UTF-8 text (`TEXT`, `VARCHAR(n)`, `CHAR(n)`).
    Text,
    /// Boolean (`BOOL`, `BOOLEAN`).
    Bool,
}

impl DataType {
    /// Checks whether `value` is storable in a column of this type,
    /// coercing ints to floats where needed.
    ///
    /// # Errors
    /// Returns [`DbError::Invalid`] when the value cannot be coerced.
    pub fn coerce(&self, value: Value) -> DbResult<Value> {
        match (self, &value) {
            (_, Value::Null) => Ok(Value::Null),
            (DataType::Int, Value::Int(_)) => Ok(value),
            (DataType::Float, Value::Float(_)) => Ok(value),
            (DataType::Float, Value::Int(i)) => Ok(Value::Float(*i as f64)),
            // PostgreSQL truncates float->int on explicit insert; we accept
            // exact integral floats only, to surface workload bugs early.
            (DataType::Int, Value::Float(f)) if f.fract() == 0.0 && f.is_finite() => {
                Ok(Value::Int(*f as i64))
            }
            (DataType::Text, Value::Text(_)) => Ok(value),
            (DataType::Bool, Value::Bool(_)) => Ok(value),
            (t, v) => Err(DbError::Invalid(format!(
                "cannot store {} value in {t} column",
                v.type_name()
            ))),
        }
    }

    /// Parses a SQL type name (case-insensitive).
    pub fn parse(name: &str) -> Option<DataType> {
        match name.to_ascii_lowercase().as_str() {
            "int" | "integer" | "bigint" | "smallint" | "int4" | "int8" => Some(DataType::Int),
            "float" | "double" | "real" | "numeric" | "decimal" | "float8" | "float4" => {
                Some(DataType::Float)
            }
            "text" | "varchar" | "char" | "string" => Some(DataType::Text),
            "bool" | "boolean" => Some(DataType::Bool),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Text => write!(f, "TEXT"),
            DataType::Bool => write!(f, "BOOL"),
        }
    }
}

/// A column definition inside a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Lower-cased column name.
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
}

impl Column {
    /// Creates a column definition; the name is lower-cased.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Column {
        Column {
            name: name.into().to_ascii_lowercase(),
            data_type,
        }
    }
}

/// A table schema: ordered columns plus an optional primary-key column index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
    primary_key: Option<usize>,
}

impl Schema {
    /// Creates a schema.
    ///
    /// # Errors
    /// Returns [`DbError::Invalid`] on duplicate column names or an
    /// out-of-range primary-key index.
    pub fn new(columns: Vec<Column>, primary_key: Option<usize>) -> DbResult<Schema> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(DbError::Invalid(format!("duplicate column {}", c.name)));
            }
        }
        if let Some(pk) = primary_key {
            if pk >= columns.len() {
                return Err(DbError::Invalid("primary key index out of range".into()));
            }
        }
        Ok(Schema {
            columns,
            primary_key,
        })
    }

    /// The ordered column definitions.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the primary-key column, if declared.
    pub fn primary_key(&self) -> Option<usize> {
        self.primary_key
    }

    /// Finds a column index by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Validates and coerces a row against this schema.
    ///
    /// # Errors
    /// Returns [`DbError::Invalid`] on arity or type mismatch.
    pub fn coerce_row(&self, row: Vec<Value>) -> DbResult<Vec<Value>> {
        if row.len() != self.columns.len() {
            return Err(DbError::Invalid(format!(
                "row arity {} does not match schema arity {}",
                row.len(),
                self.columns.len()
            )));
        }
        row.into_iter()
            .zip(&self.columns)
            .map(|(v, c)| c.data_type.coerce(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema2() -> Schema {
        Schema::new(
            vec![
                Column::new("id", DataType::Int),
                Column::new("Rank", DataType::Float),
            ],
            Some(0),
        )
        .unwrap()
    }

    #[test]
    fn column_names_are_case_insensitive() {
        let s = schema2();
        assert_eq!(s.column_index("RANK"), Some(1));
        assert_eq!(s.column_index("id"), Some(0));
        assert_eq!(s.column_index("missing"), None);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = Schema::new(
            vec![
                Column::new("a", DataType::Int),
                Column::new("A", DataType::Text),
            ],
            None,
        );
        assert!(r.is_err());
    }

    #[test]
    fn primary_key_bounds_checked() {
        let r = Schema::new(vec![Column::new("a", DataType::Int)], Some(3));
        assert!(r.is_err());
    }

    #[test]
    fn coerce_row_promotes_int_to_float() {
        let s = schema2();
        let row = s.coerce_row(vec![Value::Int(1), Value::Int(5)]).unwrap();
        assert_eq!(row[1], Value::Float(5.0));
    }

    #[test]
    fn coerce_row_rejects_bad_arity_and_type() {
        let s = schema2();
        assert!(s.coerce_row(vec![Value::Int(1)]).is_err());
        assert!(s
            .coerce_row(vec![Value::Text("x".into()), Value::Float(0.0)])
            .is_err());
    }

    #[test]
    fn type_parsing_aliases() {
        assert_eq!(DataType::parse("BIGINT"), Some(DataType::Int));
        assert_eq!(DataType::parse("double"), Some(DataType::Float));
        assert_eq!(DataType::parse("VARCHAR"), Some(DataType::Text));
        assert_eq!(DataType::parse("bogus"), None);
    }
}
