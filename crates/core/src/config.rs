//! Middleware configuration.

use crate::checkpoint::CheckpointConfig;
use crate::watchdog::WatchdogConfig;
use dbcp::CancelToken;
use std::path::PathBuf;
use std::time::Duration;

/// Trace recording configuration (see DESIGN.md §10).
///
/// When `enabled` is false the executors record nothing and pay only a
/// branch per would-be span/event. `json_path` additionally writes the full
/// machine-readable trace after each iterative run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record spans/events for each run.
    pub enabled: bool,
    /// Where to write the JSON trace document (`None` = keep in memory only).
    pub json_path: Option<PathBuf>,
}

impl TraceConfig {
    /// Tracing on, no JSON file.
    pub fn on() -> TraceConfig {
        TraceConfig {
            enabled: true,
            json_path: None,
        }
    }

    /// Tracing on, JSON trace written to `path` after each run.
    pub fn json(path: impl Into<PathBuf>) -> TraceConfig {
        TraceConfig {
            enabled: true,
            json_path: Some(path.into()),
        }
    }

    /// Reads the `SQLOOP_TRACE` environment variable:
    /// unset/empty/`0`/`off` → disabled; `1`/`on`/`text` → in-memory trace;
    /// `json` → trace written to `sqloop_trace.json`; `json:<path>` → trace
    /// written to `<path>`.
    pub fn from_env() -> TraceConfig {
        match std::env::var("SQLOOP_TRACE") {
            Ok(v) => TraceConfig::parse(&v),
            Err(_) => TraceConfig::default(),
        }
    }

    /// Parses an `SQLOOP_TRACE`-style value (see [`TraceConfig::from_env`]).
    pub fn parse(value: &str) -> TraceConfig {
        let v = value.trim();
        match v.to_ascii_lowercase().as_str() {
            "" | "0" | "off" | "false" => TraceConfig::default(),
            "1" | "on" | "true" | "text" => TraceConfig::on(),
            "json" => TraceConfig::json("sqloop_trace.json"),
            _ => match v.split_once(':') {
                Some(("json", path)) if !path.is_empty() => TraceConfig::json(path),
                _ => TraceConfig::on(),
            },
        }
    }
}

/// Which execution method runs a parallelizable iterative CTE (paper §V-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Force the single-threaded executor (the paper's fallback; also the
    /// only option for queries outside the parallelizable class).
    Single,
    /// Two-phase Compute/Gather with a barrier per iteration.
    Sync,
    /// Gather-then-Compute pairs, round-robin, no barrier — uses
    /// intermediate results of the current iteration (the default, as in
    /// the paper's headline results).
    #[default]
    Async,
    /// Async with priority scheduling over partitions (`AsyncP`).
    AsyncPrio,
}

impl ExecutionMode {
    /// Short label used in reports ("Sync", "Async", "AsyncP").
    pub fn label(&self) -> &'static str {
        match self {
            ExecutionMode::Single => "Single",
            ExecutionMode::Sync => "Sync",
            ExecutionMode::Async => "Async",
            ExecutionMode::AsyncPrio => "AsyncP",
        }
    }

    /// Parses a label (case-insensitive).
    pub fn parse(s: &str) -> Option<ExecutionMode> {
        match s.to_ascii_lowercase().as_str() {
            "single" => Some(ExecutionMode::Single),
            "sync" => Some(ExecutionMode::Sync),
            "async" => Some(ExecutionMode::Async),
            "asyncp" | "async-prio" | "asyncprio" => Some(ExecutionMode::AsyncPrio),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// User-supplied priority function for `AsyncP` (paper §V-E: "finding a
/// priority function can be difficult and thus, SQLoop uses the user's input
/// to define it").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrioritySpec {
    /// A scalar query template; `{}` is replaced by the partition table
    /// name. Example (PageRank): `SELECT SUM(delta) FROM {}`.
    pub query_template: String,
    /// When `true`, *larger* values are scheduled first (PageRank's
    /// sum-of-delta); when `false`, smaller values win (SSSP's
    /// least-distance).
    pub descending: bool,
}

impl PrioritySpec {
    /// Priority by largest scalar (e.g. PageRank pending rank).
    pub fn highest(query_template: impl Into<String>) -> PrioritySpec {
        PrioritySpec {
            query_template: query_template.into(),
            descending: true,
        }
    }

    /// Priority by smallest scalar (e.g. SSSP least tentative distance).
    pub fn lowest(query_template: impl Into<String>) -> PrioritySpec {
        PrioritySpec {
            query_template: query_template.into(),
            descending: false,
        }
    }

    /// Instantiates the template for one partition table.
    pub fn query_for(&self, partition_table: &str) -> String {
        self.query_template.replace("{}", partition_table)
    }
}

/// Full middleware configuration.
///
/// Defaults follow the paper: 256 partitions, half the available CPUs as
/// worker threads, asynchronous execution, constant-join materialization on.
#[derive(Debug, Clone)]
pub struct SqloopConfig {
    /// Parallel execution method.
    pub mode: ExecutionMode,
    /// Worker threads (= engine connections). Default: half the CPUs
    /// (paper §V-B: "SQLoop uses half of the available CPUs").
    pub threads: usize,
    /// Number of hash partitions of `R`. Default 256 (paper §V-B).
    pub partitions: usize,
    /// Priority function for [`ExecutionMode::AsyncPrio`].
    pub priority: Option<PrioritySpec>,
    /// Safety cap on iterations for non-`ITERATIONS` termination conditions.
    pub max_iterations: u64,
    /// Materialize the constant part of the join (`Rmjoin`, paper §V-B).
    /// Disable only for the ablation study.
    pub materialize_join: bool,
    /// Rows per batched `INSERT` while loading partitions.
    pub insert_batch_rows: usize,
    /// Keep scratch tables (partitions, message tables) after execution —
    /// useful for debugging; the final CTE view always remains queryable
    /// until the next run reuses the name.
    pub keep_artifacts: bool,
    /// Progress sampling interval for convergence reports (`None` = off).
    pub sample_interval: Option<Duration>,
    /// Scalar query over the CTE view for the progress sampler, e.g.
    /// `SELECT SUM(rank) FROM {}` (`{}` = CTE name).
    pub progress_query: Option<String>,
    /// Replays of a failed Compute/Gather task on a transient error
    /// (0 = fail on first error). Replay resumes at the failed statement,
    /// which is safe because faults surface before a statement takes
    /// effect; see DESIGN.md "Fault tolerance".
    pub task_retries: u32,
    /// Attempts a worker makes to (re)open its engine connection after a
    /// drop, before giving up on the task at hand.
    pub reconnect_attempts: u32,
    /// Base backoff between retry attempts (grows exponentially with
    /// seeded jitter).
    pub retry_backoff: Duration,
    /// When parallel execution fails on a transient fault even after
    /// retries, rerun the query on the single-threaded executor instead
    /// of surfacing the error.
    pub downgrade_on_failure: bool,
    /// Trace recording. The default honors the `SQLOOP_TRACE` environment
    /// variable (see [`TraceConfig::from_env`]).
    pub trace: TraceConfig,
    /// Durable checkpointing of iterative loop state (`None` = off). See
    /// DESIGN.md §11.
    pub checkpoint: Option<CheckpointConfig>,
    /// Resume an iterative run from a checkpoint directory, `MANIFEST.json`,
    /// or snapshot file instead of running the seed query.
    pub resume_from: Option<PathBuf>,
    /// Wall-clock budget for each execute call. When it expires the run is
    /// cancelled cooperatively: a final checkpoint is written (when
    /// checkpointing is on) and the report carries partial results with
    /// `cancelled = true`.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation token shared with the run. Cancel it from
    /// another thread (or a Ctrl-C handler) to stop at the next safe point.
    pub cancel: CancelToken,
    /// Runaway-loop watchdog: round budget, numeric-divergence probes,
    /// delta-trend tracking (all off by default). Verdicts abort governed:
    /// a final checkpoint is written first when checkpointing is on.
    pub watchdog: WatchdogConfig,
    /// Engine memory budget in bytes (`None` = unlimited), applied through
    /// the driver when it can govern the engine. A run that trips it
    /// aborts governed with [`crate::SqloopError::BudgetExceeded`].
    pub max_mem: Option<u64>,
    /// Per-statement execution deadline pushed onto every connection the
    /// run opens (`None` = off).
    pub statement_timeout: Option<Duration>,
    /// Heartbeat silence after which the supervisor abandons a busy
    /// worker, spawns a replacement, and replays its task (`None` = no
    /// stall remediation; barriers still poll for worker deaths).
    /// Distinct from the numeric watchdog: this is about *liveness* of a
    /// worker thread, not convergence of the iterating state. Set it
    /// comfortably above the worst-case duration of one partition round —
    /// abandoning a worker that is merely slow risks re-executing its
    /// in-flight statements. See DESIGN.md §16.
    pub stall_timeout: Option<Duration>,
    /// How long barrier waits block before checking worker liveness
    /// (heartbeats, dead threads). Bounds stall/panic detection latency.
    pub supervisor_poll: Duration,
}

impl Default for SqloopConfig {
    fn default() -> SqloopConfig {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        SqloopConfig {
            mode: ExecutionMode::default(),
            threads: (cpus / 2).max(1),
            partitions: 256,
            priority: None,
            max_iterations: 100_000,
            materialize_join: true,
            insert_batch_rows: 512,
            keep_artifacts: false,
            sample_interval: None,
            progress_query: None,
            task_retries: 3,
            reconnect_attempts: 3,
            retry_backoff: Duration::from_millis(5),
            downgrade_on_failure: true,
            trace: TraceConfig::from_env(),
            checkpoint: None,
            resume_from: None,
            deadline: None,
            cancel: CancelToken::new(),
            watchdog: WatchdogConfig::default(),
            max_mem: None,
            statement_timeout: None,
            stall_timeout: None,
            supervisor_poll: Duration::from_millis(20),
        }
    }
}

impl SqloopConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns a message for zero threads/partitions or an `AsyncP` mode
    /// without a priority spec.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 {
            return Err("threads must be at least 1".into());
        }
        if self.partitions == 0 {
            return Err("partitions must be at least 1".into());
        }
        if self.insert_batch_rows == 0 {
            return Err("insert_batch_rows must be at least 1".into());
        }
        if self.mode == ExecutionMode::AsyncPrio && self.priority.is_none() {
            return Err("AsyncP mode requires a priority specification".into());
        }
        if self.reconnect_attempts == 0 {
            return Err("reconnect_attempts must be at least 1".into());
        }
        if let Some(ck) = &self.checkpoint {
            if ck.interval == 0 {
                return Err("checkpoint interval must be at least 1 round".into());
            }
            if ck.keep_last == 0 {
                return Err("checkpoint keep_last must be at least 1".into());
            }
        }
        if self.watchdog.max_rounds == Some(0) {
            return Err("watchdog max_rounds must be at least 1".into());
        }
        if self.watchdog.window == Some(0) {
            return Err("watchdog window must be at least 1 round".into());
        }
        if self.max_mem == Some(0) {
            return Err("max_mem must be at least 1 byte".into());
        }
        if self.supervisor_poll.is_zero() {
            return Err("supervisor_poll must be non-zero".into());
        }
        if let Some(st) = self.stall_timeout {
            if st.is_zero() {
                return Err("stall_timeout must be non-zero".into());
            }
            if st < self.supervisor_poll {
                return Err("stall_timeout must be at least supervisor_poll".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = SqloopConfig::default();
        assert_eq!(c.partitions, 256);
        assert!(c.threads >= 1);
        assert_eq!(c.mode, ExecutionMode::Async);
        assert!(c.materialize_join);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn recovery_defaults_are_sane() {
        let c = SqloopConfig::default();
        assert!(c.task_retries >= 1, "tasks should replay by default");
        assert!(c.reconnect_attempts >= 1);
        assert!(c.downgrade_on_failure, "downgrade is the safe default");
        let c = SqloopConfig {
            reconnect_attempts: 0,
            ..SqloopConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = SqloopConfig {
            threads: 0,
            ..SqloopConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SqloopConfig {
            partitions: 0,
            ..SqloopConfig::default()
        };
        assert!(c.validate().is_err());
        let mut c = SqloopConfig {
            mode: ExecutionMode::AsyncPrio,
            ..SqloopConfig::default()
        };
        assert!(c.validate().is_err());
        c.priority = Some(PrioritySpec::highest("SELECT SUM(delta) FROM {}"));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn checkpoint_validation() {
        let mut c = SqloopConfig {
            checkpoint: Some(CheckpointConfig::new("/tmp/ck")),
            ..SqloopConfig::default()
        };
        assert!(c.validate().is_ok());
        c.checkpoint.as_mut().unwrap().interval = 0;
        assert!(c.validate().is_err());
        c.checkpoint.as_mut().unwrap().interval = 3;
        c.checkpoint.as_mut().unwrap().keep_last = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn governance_validation() {
        let c = SqloopConfig::default();
        assert!(!c.watchdog.is_active(), "watchdog is opt-in");
        assert!(c.max_mem.is_none());
        let c = SqloopConfig {
            watchdog: WatchdogConfig {
                max_rounds: Some(0),
                ..WatchdogConfig::default()
            },
            ..SqloopConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SqloopConfig {
            watchdog: WatchdogConfig {
                window: Some(0),
                ..WatchdogConfig::default()
            },
            ..SqloopConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SqloopConfig {
            max_mem: Some(0),
            ..SqloopConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SqloopConfig {
            watchdog: WatchdogConfig {
                max_rounds: Some(100),
                window: Some(8),
                numeric_checks: true,
            },
            max_mem: Some(64 << 20),
            statement_timeout: Some(Duration::from_secs(30)),
            ..SqloopConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn supervision_validation() {
        let c = SqloopConfig::default();
        assert!(c.stall_timeout.is_none(), "stall remediation is opt-in");
        assert!(!c.supervisor_poll.is_zero(), "barriers always poll");
        let c = SqloopConfig {
            stall_timeout: Some(Duration::ZERO),
            ..SqloopConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SqloopConfig {
            supervisor_poll: Duration::ZERO,
            ..SqloopConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SqloopConfig {
            stall_timeout: Some(Duration::from_millis(5)),
            supervisor_poll: Duration::from_millis(20),
            ..SqloopConfig::default()
        };
        assert!(c.validate().is_err(), "stall_timeout below the poll tick");
        let c = SqloopConfig {
            stall_timeout: Some(Duration::from_secs(30)),
            ..SqloopConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn priority_template_instantiation() {
        let p = PrioritySpec::lowest("SELECT MIN(delta) FROM {}");
        assert_eq!(p.query_for("sssp__pt3"), "SELECT MIN(delta) FROM sssp__pt3");
        assert!(!p.descending);
    }

    #[test]
    fn trace_config_parses_env_values() {
        assert_eq!(TraceConfig::parse(""), TraceConfig::default());
        assert_eq!(TraceConfig::parse("off"), TraceConfig::default());
        assert_eq!(TraceConfig::parse("0"), TraceConfig::default());
        assert_eq!(TraceConfig::parse("on"), TraceConfig::on());
        assert_eq!(TraceConfig::parse("1"), TraceConfig::on());
        assert_eq!(
            TraceConfig::parse("json"),
            TraceConfig::json("sqloop_trace.json")
        );
        assert_eq!(
            TraceConfig::parse("json:/tmp/t.json"),
            TraceConfig::json("/tmp/t.json")
        );
        // unknown non-empty values mean "the user wanted tracing"
        assert_eq!(TraceConfig::parse("verbose"), TraceConfig::on());
    }

    #[test]
    fn mode_labels_roundtrip() {
        for m in [
            ExecutionMode::Single,
            ExecutionMode::Sync,
            ExecutionMode::Async,
            ExecutionMode::AsyncPrio,
        ] {
            assert_eq!(ExecutionMode::parse(m.label()), Some(m));
        }
        assert_eq!(
            ExecutionMode::parse("AsyncP"),
            Some(ExecutionMode::AsyncPrio)
        );
        assert_eq!(ExecutionMode::parse("turbo"), None);
    }
}
