//! Per-profile statement validation.
//!
//! The engine rejects statements its emulated dialect would reject, so that
//! the SQLoop translation module (which rewrites statements per target
//! engine) is *necessary* rather than decorative — exactly the situation the
//! paper's middleware faces with real engines.

use crate::ast::*;
use crate::error::{DbError, DbResult};
use crate::profile::Dialect;
use crate::value::Value;

/// Validates `stmt` against `dialect`.
///
/// # Errors
/// Returns [`DbError::Unsupported`] naming the offending construct.
pub fn validate(stmt: &Statement, dialect: &Dialect) -> DbResult<()> {
    match stmt {
        Statement::Update(u) => {
            if u.join_on.is_some() && !dialect.supports_update_join {
                return Err(DbError::Unsupported(format!(
                    "{} does not accept UPDATE … JOIN … SET",
                    dialect.profile
                )));
            }
            if u.join_on.is_none() && !u.from.is_empty() && !dialect.supports_update_from {
                return Err(DbError::Unsupported(format!(
                    "{} does not accept UPDATE … SET … FROM",
                    dialect.profile
                )));
            }
        }
        Statement::CreateTable(ct) if ct.unlogged && !dialect.supports_unlogged => {
            return Err(DbError::Unsupported(format!(
                "{} does not accept UNLOGGED tables",
                dialect.profile
            )));
        }
        _ => {}
    }
    let mut err = None;
    for_each_expr(stmt, &mut |e| {
        if err.is_some() {
            return;
        }
        match e {
            Expr::Binary {
                op: BinaryOp::Concat,
                ..
            } if !dialect.supports_concat_operator => {
                err = Some(DbError::Unsupported(format!(
                    "{} does not accept the || operator (use CONCAT)",
                    dialect.profile
                )));
            }
            Expr::Literal(Value::Float(f))
                if f.is_infinite() && !dialect.supports_infinity_literal =>
            {
                err = Some(DbError::Unsupported(format!(
                    "{} does not accept Infinity literals",
                    dialect.profile
                )));
            }
            _ => {}
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Calls `f` on every expression node reachable from `stmt`, including inside
/// subqueries and join conditions.
pub fn for_each_expr(stmt: &Statement, f: &mut impl FnMut(&Expr)) {
    match stmt {
        Statement::Select(q) => visit_query(q, f),
        Statement::Insert(i) => {
            match &i.source {
                InsertSource::Values(rows) => {
                    for row in rows {
                        for e in row {
                            visit_expr(e, f);
                        }
                    }
                }
                InsertSource::Select(q) => visit_query(q, f),
            };
        }
        Statement::Update(u) => {
            for (_, e) in &u.assignments {
                visit_expr(e, f);
            }
            for tr in &u.from {
                visit_table_ref(tr, f);
            }
            if let Some(e) = &u.join_on {
                visit_expr(e, f);
            }
            if let Some(e) = &u.selection {
                visit_expr(e, f);
            }
        }
        Statement::Delete {
            selection: Some(e), ..
        } => {
            visit_expr(e, f);
        }
        Statement::CreateTable(ct) => {
            if let Some(q) = &ct.as_select {
                visit_query(q, f);
            }
        }
        Statement::CreateView(cv) => visit_query(&cv.query, f),
        Statement::Explain { stmt, .. } => for_each_expr(stmt, f),
        _ => {}
    }
}

fn visit_query(q: &SelectStmt, f: &mut impl FnMut(&Expr)) {
    visit_set_expr(&q.body, f);
    for o in &q.order_by {
        visit_expr(&o.expr, f);
    }
}

fn visit_set_expr(s: &SetExpr, f: &mut impl FnMut(&Expr)) {
    match s {
        SetExpr::Select(sel) => {
            for p in &sel.projections {
                if let SelectItem::Expr { expr, .. } = p {
                    visit_expr(expr, f);
                }
            }
            for tr in &sel.from {
                visit_table_ref(tr, f);
            }
            if let Some(e) = &sel.selection {
                visit_expr(e, f);
            }
            for e in &sel.group_by {
                visit_expr(e, f);
            }
            if let Some(e) = &sel.having {
                visit_expr(e, f);
            }
        }
        SetExpr::Values(rows) => {
            for row in rows {
                for e in row {
                    visit_expr(e, f);
                }
            }
        }
        SetExpr::SetOp { left, right, .. } => {
            visit_set_expr(left, f);
            visit_set_expr(right, f);
        }
    }
}

fn visit_table_ref(tr: &TableRef, f: &mut impl FnMut(&Expr)) {
    visit_factor(&tr.base, f);
    for j in &tr.joins {
        visit_factor(&j.factor, f);
        if let Some(on) = &j.on {
            visit_expr(on, f);
        }
    }
}

fn visit_factor(factor: &TableFactor, f: &mut impl FnMut(&Expr)) {
    if let TableFactor::Derived { subquery, .. } = factor {
        visit_query(subquery, f);
    }
}

fn visit_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    for c in e.children() {
        visit_expr(c, f);
    }
}

/// Mutable twin of [`for_each_expr`]: calls `f` on every expression node
/// reachable from `stmt`, allowing in-place rewrites. The prepared-statement
/// machinery uses this to substitute `?` placeholders with literals.
pub fn for_each_expr_mut(stmt: &mut Statement, f: &mut impl FnMut(&mut Expr)) {
    match stmt {
        Statement::Select(q) => mut_query(q, f),
        Statement::Insert(i) => {
            match &mut i.source {
                InsertSource::Values(rows) => {
                    for row in rows {
                        for e in row {
                            mut_expr(e, f);
                        }
                    }
                }
                InsertSource::Select(q) => mut_query(q, f),
            };
        }
        Statement::Update(u) => {
            for (_, e) in &mut u.assignments {
                mut_expr(e, f);
            }
            for tr in &mut u.from {
                mut_table_ref(tr, f);
            }
            if let Some(e) = &mut u.join_on {
                mut_expr(e, f);
            }
            if let Some(e) = &mut u.selection {
                mut_expr(e, f);
            }
        }
        Statement::Delete {
            selection: Some(e), ..
        } => {
            mut_expr(e, f);
        }
        Statement::CreateTable(ct) => {
            if let Some(q) = &mut ct.as_select {
                mut_query(q, f);
            }
        }
        Statement::CreateView(cv) => mut_query(&mut cv.query, f),
        Statement::Explain { stmt, .. } => for_each_expr_mut(stmt, f),
        _ => {}
    }
}

fn mut_query(q: &mut SelectStmt, f: &mut impl FnMut(&mut Expr)) {
    mut_set_expr(&mut q.body, f);
    for o in &mut q.order_by {
        mut_expr(&mut o.expr, f);
    }
}

fn mut_set_expr(s: &mut SetExpr, f: &mut impl FnMut(&mut Expr)) {
    match s {
        SetExpr::Select(sel) => {
            for p in &mut sel.projections {
                if let SelectItem::Expr { expr, .. } = p {
                    mut_expr(expr, f);
                }
            }
            for tr in &mut sel.from {
                mut_table_ref(tr, f);
            }
            if let Some(e) = &mut sel.selection {
                mut_expr(e, f);
            }
            for e in &mut sel.group_by {
                mut_expr(e, f);
            }
            if let Some(e) = &mut sel.having {
                mut_expr(e, f);
            }
        }
        SetExpr::Values(rows) => {
            for row in rows {
                for e in row {
                    mut_expr(e, f);
                }
            }
        }
        SetExpr::SetOp { left, right, .. } => {
            mut_set_expr(left, f);
            mut_set_expr(right, f);
        }
    }
}

fn mut_table_ref(tr: &mut TableRef, f: &mut impl FnMut(&mut Expr)) {
    mut_factor(&mut tr.base, f);
    for j in &mut tr.joins {
        mut_factor(&mut j.factor, f);
        if let Some(on) = &mut j.on {
            mut_expr(on, f);
        }
    }
}

fn mut_factor(factor: &mut TableFactor, f: &mut impl FnMut(&mut Expr)) {
    if let TableFactor::Derived { subquery, .. } = factor {
        mut_query(subquery, f);
    }
}

fn mut_expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    f(e);
    match e {
        Expr::Literal(_) | Expr::Column { .. } | Expr::Param(_) => {}
        Expr::Binary { left, right, .. } => {
            mut_expr(left, f);
            mut_expr(right, f);
        }
        Expr::Unary { expr, .. } => mut_expr(expr, f),
        Expr::Function { args, .. } => {
            for a in args {
                if let FunctionArg::Expr(e) = a {
                    mut_expr(e, f);
                }
            }
        }
        Expr::Case {
            branches,
            else_result,
        } => {
            for (c, r) in branches {
                mut_expr(c, f);
                mut_expr(r, f);
            }
            if let Some(e) = else_result {
                mut_expr(e, f);
            }
        }
        Expr::IsNull { expr, .. } => mut_expr(expr, f),
        Expr::InList { expr, list, .. } => {
            mut_expr(expr, f);
            for e in list {
                mut_expr(e, f);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            mut_expr(expr, f);
            mut_expr(low, f);
            mut_expr(high, f);
        }
        Expr::Cast { expr, .. } => mut_expr(expr, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use crate::profile::EngineProfile;

    fn check(sql: &str, profile: EngineProfile) -> DbResult<()> {
        validate(&parse_statement(sql).unwrap(), &profile.dialect())
    }

    #[test]
    fn update_from_rejected_on_mysql() {
        let sql = "UPDATE r SET d = m.v FROM m WHERE r.id = m.id";
        assert!(check(sql, EngineProfile::Postgres).is_ok());
        assert!(check(sql, EngineProfile::MySql).is_err());
        assert!(check(sql, EngineProfile::MariaDb).is_err());
    }

    #[test]
    fn update_join_rejected_on_postgres() {
        let sql = "UPDATE r JOIN m ON r.id = m.id SET d = m.v";
        assert!(check(sql, EngineProfile::Postgres).is_err());
        assert!(check(sql, EngineProfile::MySql).is_ok());
    }

    #[test]
    fn infinity_rejected_on_mysql_even_nested() {
        let sql = "SELECT CASE WHEN a = 1 THEN 0 ELSE Infinity END FROM t";
        assert!(check(sql, EngineProfile::Postgres).is_ok());
        assert!(check(sql, EngineProfile::MySql).is_err());
        // also inside derived tables
        let sql = "SELECT x FROM (SELECT Infinity AS x) AS d";
        assert!(check(sql, EngineProfile::MariaDb).is_err());
    }

    #[test]
    fn concat_operator_gated() {
        let sql = "SELECT 'a' || 'b'";
        assert!(check(sql, EngineProfile::Postgres).is_ok());
        assert!(check(sql, EngineProfile::MySql).is_err());
        assert!(check(sql, EngineProfile::MariaDb).is_ok());
    }

    #[test]
    fn unlogged_gated() {
        let sql = "CREATE UNLOGGED TABLE t (a INT)";
        assert!(check(sql, EngineProfile::Postgres).is_ok());
        assert!(check(sql, EngineProfile::MySql).is_err());
    }

    #[test]
    fn plain_statements_pass_everywhere() {
        for p in EngineProfile::ALL {
            assert!(check("SELECT a, SUM(b) FROM t GROUP BY a", p).is_ok());
            assert!(check("INSERT INTO t VALUES (1)", p).is_ok());
            assert!(check("DELETE FROM t WHERE a = 1", p).is_ok());
        }
    }
}
