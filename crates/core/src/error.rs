//! Middleware error type.

use sqldb::DbError;
use std::fmt;

/// Errors produced by the SQLoop middleware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqloopError {
    /// The extended CTE grammar could not be parsed.
    Grammar(String),
    /// The query is valid but violates a middleware assumption
    /// (e.g. the iterative part returns a different key set).
    Semantic(String),
    /// Configuration problem (zero partitions, bad priority query, …).
    Config(String),
    /// An underlying engine/driver error.
    Db(DbError),
}

impl fmt::Display for SqloopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqloopError::Grammar(m) => write!(f, "grammar error: {m}"),
            SqloopError::Semantic(m) => write!(f, "semantic error: {m}"),
            SqloopError::Config(m) => write!(f, "configuration error: {m}"),
            SqloopError::Db(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for SqloopError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqloopError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbError> for SqloopError {
    fn from(e: DbError) -> Self {
        SqloopError::Db(e)
    }
}

/// Result alias for middleware operations.
pub type SqloopResult<T> = Result<T, SqloopError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SqloopError::from(DbError::NotFound("table r".into()));
        assert!(e.to_string().contains("not found"));
        assert!(std::error::Error::source(&e).is_some());
        let g = SqloopError::Grammar("expected UNTIL".into());
        assert!(std::error::Error::source(&g).is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SqloopError>();
    }
}
